//! Quickstart: one inter-datacenter incast under all three schemes.
//!
//! Builds the paper's two-datacenter topology, runs a 100 MB degree-8
//! incast under Baseline, Proxy (Naive) and Proxy (Streamlined), and
//! prints the completion times — the paper's headline comparison in
//! one screen of code.
//!
//! Run with: `cargo run --release --example quickstart`

use incast_core::{run_incast, ExperimentConfig, Scheme};
use trace::table::fmt_secs;
use trace::Table;

fn main() {
    let mut table = Table::new(vec![
        "scheme",
        "completion",
        "vs baseline",
        "rtos",
        "retransmits",
    ]);
    let mut baseline_secs = None;

    for scheme in Scheme::ALL {
        let config = ExperimentConfig {
            scheme,
            degree: 8,
            total_bytes: 100_000_000,
            ..Default::default()
        };
        eprintln!("running {scheme} ...");
        let outcome = run_incast(&config, 1);
        let reduction = match baseline_secs {
            None => {
                baseline_secs = Some(outcome.completion_secs);
                "—".to_string()
            }
            Some(base) => format!("-{:.1}%", (base - outcome.completion_secs) / base * 100.0),
        };
        table.row(vec![
            scheme.label().to_string(),
            fmt_secs(outcome.completion_secs),
            reduction,
            outcome.rto_fires.to_string(),
            outcome.retransmits.to_string(),
        ]);
    }

    println!();
    println!("100 MB incast, 8 senders, two datacenters 1 ms apart (§4.1 topology):");
    println!();
    print!("{}", table.render());
    println!();
    println!("The extra proxy hop *shortens* completion time: congestion now");
    println!("builds at the proxy's down-ToR, microseconds from the senders,");
    println!("so their congestion control converges in microsecond rounds");
    println!("instead of millisecond rounds.");
}
