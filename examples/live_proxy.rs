//! Run the real (tokio) proxies on loopback and measure their per-packet
//! overhead — a miniature of the paper's §5 testbed study.
//!
//! Starts the Naive TCP split-connection proxy and the Streamlined UDP
//! trim/NACK proxy, drives both with the iperf-like load generator, and
//! prints their processing-latency distributions: the user-space relay
//! overhead (Fig. 4's measurand) next to the streamlined datapath's
//! through-stack cost (Fig. 5b) and its pure decision-logic cost
//! (Fig. 5a, measured here over a quick in-process loop).
//!
//! Run with: `cargo run --release --example live_proxy`

use netproxy::loadgen::{tcp_sink, TcpLoadGen, UdpLoadGen};
use netproxy::wire::WireHeader;
use netproxy::{decide, Action, NaiveProxy, StreamlinedUdpProxy};
use std::net::SocketAddr;
use std::time::Instant;
use tokio::net::UdpSocket;
use trace::Table;

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("addr")
}

#[tokio::main]
async fn main() {
    // --- Naive TCP proxy under load ---
    let (sink, sunk_bytes) = tcp_sink().await.expect("sink");
    let naive = NaiveProxy::start(loopback(), sink)
        .await
        .expect("naive proxy");
    let tcp_stats = TcpLoadGen::scaled_default()
        .run(naive.local_addr())
        .await
        .expect("tcp load");
    tokio::time::sleep(std::time::Duration::from_millis(200)).await;
    let naive_cdf = naive.recorder().cdf_micros().expect("naive samples");

    // --- Streamlined UDP proxy under load (with virtual trimming) ---
    let receiver = UdpSocket::bind(loopback()).await.expect("receiver");
    let recv_addr = receiver.local_addr().expect("addr");
    tokio::spawn(async move {
        let mut buf = [0u8; 2048];
        while receiver.recv_from(&mut buf).await.is_ok() {}
    });
    let streamlined = StreamlinedUdpProxy::start(loopback(), recv_addr)
        .await
        .expect("streamlined proxy");
    let sender_sock = UdpSocket::bind(loopback()).await.expect("sender");
    let udp_stats = UdpLoadGen::scaled_default(1)
        .run(&sender_sock, streamlined.local_addr())
        .await
        .expect("udp load");
    tokio::time::sleep(std::time::Duration::from_millis(200)).await;
    let stream_cdf = streamlined.recorder().cdf_micros().expect("samples");

    // --- Pure decision logic (the Fig. 5a lower bound analogue) ---
    let data = WireHeader::data(1, 1, 1000).encode(&vec![0u8; 1000]);
    let trimmed = WireHeader::trimmed(1, 2).encode(&[]);
    let iters = 2_000_000u64;
    // simlint: allow(wall-clock) — times the real proxy decision loop, not sim state
    let start = Instant::now();
    let mut keep = 0u64;
    for i in 0..iters {
        let wire = if i % 4 == 0 { &trimmed } else { &data };
        match decide(wire) {
            Action::ForwardToReceiver => keep += 1,
            Action::NackToSender { .. } => keep += 2,
            _ => {}
        }
    }
    let per_packet_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    assert!(keep > 0);

    println!();
    println!(
        "naive proxy relayed {} over TCP ({} connections); sink saw {}",
        trace::table::fmt_bytes(tcp_stats.sent_bytes),
        naive.connections(),
        // ordering: Relaxed — end-of-run snapshot of a monotone byte counter.
        trace::table::fmt_bytes(sunk_bytes.load(std::sync::atomic::Ordering::Relaxed)),
    );
    println!(
        "streamlined proxy: {} datagrams offered, {} trimmed -> {} NACKs generated",
        udp_stats.sent_packets,
        udp_stats.trimmed_packets,
        streamlined
            .stats()
            .nacks
            // ordering: Relaxed — end-of-run snapshot of a monotone counter.
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    println!();

    let mut table = Table::new(vec!["path", "p50", "p90", "p99", "samples"]);
    table.row(vec![
        "naive user-space relay (us)".to_string(),
        format!("{:.2}", naive_cdf.median()),
        format!("{:.2}", naive_cdf.quantile(0.9)),
        format!("{:.2}", naive_cdf.quantile(0.99)),
        naive_cdf.len().to_string(),
    ]);
    table.row(vec![
        "streamlined through-stack (us)".to_string(),
        format!("{:.2}", stream_cdf.median()),
        format!("{:.2}", stream_cdf.quantile(0.9)),
        format!("{:.2}", stream_cdf.quantile(0.99)),
        stream_cdf.len().to_string(),
    ]);
    table.row(vec![
        "streamlined decision only (us)".to_string(),
        format!("{:.3}", per_packet_ns / 1000.0),
        "—".to_string(),
        "—".to_string(),
        iters.to_string(),
    ]);
    print!("{}", table.render());
    println!();
    println!("The decision logic costs well under a microsecond — the rest is");
    println!("network-stack overhead, which is the paper's argument for");
    println!("hooking the proxy low in the stack (eBPF/XDP/NIC offload).");
}
