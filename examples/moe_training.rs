//! Mixture-of-Experts dispatch across datacenters (§2's motivating ML
//! workload) with pattern-aware rerouting (§6).
//!
//! An MoE training job shards experts across two datacenters. Every
//! synchronization step, the gating function dispatches token batches
//! from all local workers to each remote expert — many concurrent
//! inter-datacenter incasts, repeating with the step period.
//!
//! The cloud operator does not see the application; it sees per-
//! destination traffic counters. This example:
//!
//! 1. replays several training steps and feeds the observed byte counts
//!    into the periodicity detector,
//! 2. shows the detector recovering the step period and predicting the
//!    next dispatch,
//! 3. simulates one dispatch step with and without the pre-armed proxy
//!    reroute and reports the speedup.
//!
//! Run with: `cargo run --release --example moe_training`

use dcsim::prelude::*;
use incast_core::detect::{IncastSignatureDetector, PeriodicityDetector, SignatureConfig};
use incast_core::scheme::{install_incast, IncastSpec, Scheme};
use trace::table::fmt_secs;

/// One expert's dispatch: every local worker sends its token batch.
const WORKERS: usize = 16;
const BATCH_BYTES: u64 = 4_000_000; // 4 MB of routed tokens per worker
const STEP_PERIOD_BINS: usize = 12; // training step = 12 observation bins

fn simulate_dispatch(scheme: Scheme, seed: u64) -> f64 {
    let trim = scheme == Scheme::ProxyStreamlined;
    let params = TwoDcParams::default().with_trim(trim);
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    // Workers 0..WORKERS dispatch to expert host dc1[0]; the operator
    // repurposes an idle container on dc0's last host as the proxy.
    let mut spec = IncastSpec::new(
        dc0[..WORKERS].to_vec(),
        dc1[0],
        WORKERS as u64 * BATCH_BYTES,
    );
    if scheme.uses_proxy() {
        spec = spec.with_proxy(*dc0.last().expect("hosts"));
    }
    let handle = install_incast(&mut sim, &spec, scheme);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(120)));
    handle
        .completion(sim.metrics())
        .expect("dispatch completes")
        .as_secs_f64()
}

fn main() {
    println!("== Phase 1: the operator watches traffic ==\n");

    // Replay 6 training steps of per-bin byte counts toward the expert.
    let mut periodicity = PeriodicityDetector::new(STEP_PERIOD_BINS * 6);
    let mut signature = IncastSignatureDetector::new(SignatureConfig {
        min_degree: 8,
        min_bytes: 32_000_000,
    });
    let expert = HostId(64); // first host of DC 1 in the default topology
    for bin in 0..STEP_PERIOD_BINS * 6 {
        let dispatching = bin % STEP_PERIOD_BINS == 0;
        let mut bin_bytes = 0u64;
        if dispatching {
            for w in 0..WORKERS {
                signature.record(HostId(w as u32), expert, BATCH_BYTES);
                bin_bytes += BATCH_BYTES;
            }
        } else {
            bin_bytes += 50_000; // background chatter
        }
        let incasts = signature.end_bin();
        if dispatching {
            assert_eq!(incasts.len(), 1, "dispatch bins show the incast signature");
        }
        periodicity.push(bin_bytes);
    }

    let period = periodicity
        .dominant_period(0.5)
        .expect("training steps are periodic");
    println!(
        "detected incast signature: degree {WORKERS}, {} per step",
        trace::table::fmt_bytes(WORKERS as u64 * BATCH_BYTES)
    );
    println!(
        "detected period: {} bins (confidence {:.2})",
        period.period_bins, period.confidence
    );
    println!(
        "next dispatch predicted in {} bins -> pre-arm the proxy route\n",
        periodicity.next_burst_in(&period, 5)
    );

    println!("== Phase 2: one dispatch step, rerouted vs direct ==\n");
    let direct = simulate_dispatch(Scheme::Baseline, 7);
    let proxied = simulate_dispatch(Scheme::ProxyStreamlined, 7);
    println!("direct dispatch completion:   {}", fmt_secs(direct));
    println!("proxied dispatch completion:  {}", fmt_secs(proxied));
    println!(
        "speedup: {:.1}x ({:.1}% reduction)",
        direct / proxied,
        (direct - proxied) / direct * 100.0
    );
    assert!(proxied < direct, "the proxy must win at this scale");
}
