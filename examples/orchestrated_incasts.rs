//! Orchestrating proxy selection across concurrent incasts (§5, FW#3).
//!
//! Two tenant jobs fire 100 MB incasts at the same time from the same
//! datacenter. If both relay through the *same* proxy host, its down-ToR
//! becomes a shared bottleneck and both jobs suffer; an orchestrator
//! placing them on distinct proxies restores the full benefit. This
//! example quantifies that contention and shows both orchestration
//! designs (global and decentralized) avoiding it.
//!
//! Run with: `cargo run --release --example orchestrated_incasts`

use dcsim::prelude::*;
use incast_core::orchestrator::{
    DecentralizedSelector, GlobalOrchestrator, IncastRequest, ProxySelector,
};
use incast_core::scheme::{install_incast, IncastHandle, IncastSpec, Scheme};
use trace::table::fmt_secs;
use trace::Table;

const DEGREE: usize = 8;
const BYTES: u64 = 100_000_000;

/// Runs two concurrent incasts through the given proxies; returns both
/// completion times (seconds).
fn run_pair(proxy_a: HostId, proxy_b: HostId, seed: u64) -> (f64, f64) {
    let params = TwoDcParams::default().with_trim(true);
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);

    let spec_a = IncastSpec::new(dc0[..DEGREE].to_vec(), dc1[0], BYTES).with_proxy(proxy_a);
    let spec_b =
        IncastSpec::new(dc0[DEGREE..2 * DEGREE].to_vec(), dc1[1], BYTES).with_proxy(proxy_b);
    let a: IncastHandle = install_incast(&mut sim, &spec_a, Scheme::ProxyStreamlined);
    let b = install_incast(&mut sim, &spec_b, Scheme::ProxyStreamlined);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(300)));
    (
        a.completion(sim.metrics())
            .expect("incast A completes")
            .as_secs_f64(),
        b.completion(sim.metrics())
            .expect("incast B completes")
            .as_secs_f64(),
    )
}

fn main() {
    let topo = two_dc_leaf_spine(&TwoDcParams::default());
    let dc0 = topo.hosts_in_dc(0);
    let dc1 = topo.hosts_in_dc(1);
    // Hosts not sending are proxy candidates.
    let candidates: Vec<HostId> = dc0[2 * DEGREE..].to_vec();

    let request = |id: u64, lo: usize| IncastRequest {
        id,
        senders: dc0[lo..lo + DEGREE].to_vec(),
        receiver: dc1[id as usize],
        expected_bytes: BYTES,
    };

    // Global orchestrator: distinct proxies by construction.
    let mut global = GlobalOrchestrator::new(candidates.clone());
    let ga = global.select(&request(0, 0)).expect("assignment");
    let gb = global.select(&request(1, DEGREE)).expect("assignment");

    // Decentralized: power-of-two-choices with a lossy view.
    let mut dec =
        DecentralizedSelector::new(candidates.clone(), 2, 42).with_conflict_probability(0.3);
    let da = dec.select(&request(0, 0)).expect("assignment");
    let db = dec.select(&request(1, DEGREE)).expect("assignment");

    println!("candidate pool: {} idle hosts in DC 0", candidates.len());
    println!(
        "global orchestrator:      incast A -> {}, incast B -> {} (1 trial each)",
        ga.proxy, gb.proxy
    );
    println!(
        "decentralized (k=2):      incast A -> {} ({} trials), incast B -> {} ({} trials), {} conflicts",
        da.proxy, da.trials, db.proxy, db.trials, dec.conflicts
    );
    println!();

    eprintln!("simulating contended placement (both incasts on one proxy) ...");
    let shared = candidates[0];
    let (ca, cb) = run_pair(shared, shared, 9);
    eprintln!("simulating orchestrated placement (distinct proxies) ...");
    let (oa, ob) = run_pair(ga.proxy, gb.proxy, 9);

    let mut table = Table::new(vec!["placement", "incast A", "incast B", "max (job ICT)"]);
    table.row(vec![
        "one shared proxy".to_string(),
        fmt_secs(ca),
        fmt_secs(cb),
        fmt_secs(ca.max(cb)),
    ]);
    table.row(vec![
        "orchestrated (distinct)".to_string(),
        fmt_secs(oa),
        fmt_secs(ob),
        fmt_secs(oa.max(ob)),
    ]);
    print!("{}", table.render());
    println!();
    println!(
        "contention penalty avoided: {:.1}x",
        ca.max(cb) / oa.max(ob)
    );
    assert!(
        oa.max(ob) < ca.max(cb),
        "orchestration must beat the shared proxy"
    );
}
