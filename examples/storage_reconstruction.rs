//! Erasure-coded fragment reconstruction across datacenters (§2's storage
//! workload) using the declaration abstraction (§6).
//!
//! A storage cluster keeps erasure-coded fragments spread over servers in
//! DC 0; the reconstruction orchestrator lives in DC 1. When a fragment
//! is lost, the orchestrator reads the surviving k fragments — a classic
//! incast, now crossing the long-haul link.
//!
//! The storage team *declares* the exchange once with [`IncastDecl`];
//! at deployment time the planner decides — from the declared volume and
//! the placement — whether to reroute it through a proxy, and the
//! simulation shows the effect of that decision.
//!
//! Run with: `cargo run --release --example storage_reconstruction`

use dcsim::prelude::*;
use incast_core::declare::{compile, IncastDecl, Routing};
use incast_core::orchestrator::GlobalOrchestrator;
use incast_core::scheme::{install_incast, IncastSpec, Scheme};
use trace::table::{fmt_bytes, fmt_secs};

/// Reed-Solomon (k = 12, m = 4): 12 surviving fragments rebuild one lost
/// fragment of a 768 MB stripe -> 64 MB per fragment read.
const K: usize = 12;
const FRAGMENT_BYTES: u64 = 8_000_000; // scaled stripe: 8 MB per fragment

fn simulate(scheme: Scheme, proxy: Option<HostId>, seed: u64) -> f64 {
    let params = TwoDcParams::default().with_trim(scheme == Scheme::ProxyStreamlined);
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    let mut spec = IncastSpec::new(dc0[..K].to_vec(), dc1[0], K as u64 * FRAGMENT_BYTES);
    if let Some(p) = proxy {
        spec = spec.with_proxy(p);
    }
    let handle = install_incast(&mut sim, &spec, scheme);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(120)));
    handle
        .completion(sim.metrics())
        .expect("reconstruction completes")
        .as_secs_f64()
}

fn main() {
    // --- Declaration time (written by the storage team, once) ---
    let decl = IncastDecl::named("fragment-reconstruction")
        .sources((0..K).map(|i| format!("frag-server-{i}")))
        .sink("reconstructor")
        .expected_bytes(K as u64 * FRAGMENT_BYTES)
        .build()
        .expect("well-formed declaration");

    // --- Deployment time (resolved by the cloud provider) ---
    let topo = two_dc_leaf_spine(&TwoDcParams::default());
    let dc0 = topo.hosts_in_dc(0);
    let dc1 = topo.hosts_in_dc(1);
    let mut placement: DetMap<String, HostId> = (0..K)
        .map(|i| (format!("frag-server-{i}"), dc0[i]))
        .collect();
    placement.insert("reconstructor".into(), dc1[0]);
    // Idle capacity in the storage datacenter is the proxy candidate pool.
    let mut orchestrator = GlobalOrchestrator::new(dc0[K..].to_vec());

    let plans = compile(&[decl], &placement, &topo, &mut orchestrator).expect("plannable");
    let plan = &plans[0];
    println!(
        "declared: {} x {} -> reconstructor (total {})",
        K,
        fmt_bytes(FRAGMENT_BYTES),
        fmt_bytes(K as u64 * FRAGMENT_BYTES)
    );
    match &plan.routing {
        Routing::ViaProxy(proxy) => {
            println!(
                "planner: cross-DC, predicted reduction {:.0}% -> relay via proxy {proxy}",
                plan.estimated_reduction * 100.0
            );
            // --- Run time: compare what the planner chose against direct. ---
            let direct = simulate(Scheme::Baseline, None, 3);
            let naive = simulate(Scheme::ProxyNaive, Some(*proxy), 3);
            let streamlined = simulate(Scheme::ProxyStreamlined, Some(*proxy), 3);
            println!();
            println!(
                "reconstruction latency, direct:               {}",
                fmt_secs(direct)
            );
            println!(
                "reconstruction latency, proxy (naive):        {}",
                fmt_secs(naive)
            );
            println!(
                "reconstruction latency, proxy (streamlined):  {}",
                fmt_secs(streamlined)
            );
            println!(
                "degraded-read speedup: {:.1}x (naive) / {:.1}x (streamlined)",
                direct / naive,
                direct / streamlined
            );
            assert!(naive < direct && streamlined < direct);
        }
        Routing::Direct => {
            println!(
                "planner: no expected benefit -> direct (increase the stripe to see a reroute)"
            );
        }
    }
}
