//! The cloud operator's control loop (§6), end to end.
//!
//! A tenant's application fires periodic cross-datacenter incasts the
//! operator knows nothing about. Epoch by epoch, the operator:
//!
//! 1. watches per-destination traffic counters ([`OperatorRuntime::observe`]),
//! 2. detects the many-to-one signature and, when the benefit model says
//!    the incast qualifies, allocates a proxy and installs a reroute,
//! 3. learns the workload's period and keeps the reroute pre-armed
//!    between bursts,
//! 4. releases the proxy when the workload stops.
//!
//! The effect of each decision is validated in the simulator: bursts that
//! ran direct vs bursts that ran through the operator's chosen proxy.
//!
//! Run with: `cargo run --release --example operator_loop`

use dcsim::prelude::*;
use incast_core::detect::SignatureConfig;
use incast_core::orchestrator::GlobalOrchestrator;
use incast_core::runtime::{OperatorRuntime, RuntimeAction, RuntimeConfig};
use incast_core::scheme::{install_incast, IncastSpec, Scheme};
use trace::table::fmt_secs;

const DEGREE: usize = 8;
const BURST_BYTES: u64 = 100_000_000;
const PERIOD_EPOCHS: u64 = 5;

/// Hosts 0..63 are DC 0 in the default topology.
fn dc_of(h: HostId) -> u32 {
    u32::from(h.0 >= 64)
}

fn simulate_burst(proxy: Option<HostId>, seed: u64) -> f64 {
    let scheme = if proxy.is_some() {
        Scheme::ProxyStreamlined
    } else {
        Scheme::Baseline
    };
    let params = TwoDcParams::default().with_trim(proxy.is_some());
    let mut sim = Simulator::new(two_dc_leaf_spine(&params), seed);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    let mut spec = IncastSpec::new(dc0[..DEGREE].to_vec(), dc1[0], BURST_BYTES);
    if let Some(p) = proxy {
        spec = spec.with_proxy(p);
    }
    let handle = install_incast(&mut sim, &spec, scheme);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
    handle
        .completion(sim.metrics())
        .expect("burst completes")
        .as_secs_f64()
}

fn main() {
    let topo = two_dc_leaf_spine(&TwoDcParams::default());
    let dc0 = topo.hosts_in_dc(0);
    let dc1 = topo.hosts_in_dc(1);
    let expert = dc1[0];

    let mut operator = OperatorRuntime::new(
        RuntimeConfig::default(),
        SignatureConfig {
            min_degree: 4,
            min_bytes: 50_000_000,
        },
        dc_of,
        GlobalOrchestrator::new(dc0[DEGREE..].to_vec()),
    );

    println!("epoch | traffic        | operator action             | burst completion");
    println!("------+----------------+-----------------------------+-----------------");
    let mut burst_no = 0u64;
    for epoch in 0..26u64 {
        let bursting = epoch % PERIOD_EPOCHS == 0 && epoch < 20;
        if bursting {
            for &w in &dc0[..DEGREE] {
                operator.observe(w, expert, BURST_BYTES / DEGREE as u64);
            }
        }
        // What route does this burst take? Whatever the operator installed
        // so far (the reroute applies from the epoch after detection).
        let route = operator.reroute_of(expert);
        let completion = if bursting {
            burst_no += 1;
            Some(simulate_burst(route, burst_no))
        } else {
            None
        };
        let actions = operator.end_epoch();
        let action_str = match actions.first() {
            Some(RuntimeAction::Reroute {
                proxy,
                estimated_reduction,
                ..
            }) => {
                format!("reroute via {proxy} (-{:.0}%)", estimated_reduction * 100.0)
            }
            Some(RuntimeAction::PreArm { epochs, .. }) => {
                format!("pre-armed (next in {epochs})")
            }
            Some(RuntimeAction::Release { .. }) => "released proxy".to_string(),
            None => String::new(),
        };
        println!(
            "{epoch:5} | {:14} | {action_str:27} | {}",
            if bursting {
                format!(
                    "burst #{burst_no} ({})",
                    trace::table::fmt_bytes(BURST_BYTES)
                )
            } else {
                "quiet".to_string()
            },
            completion.map(fmt_secs).unwrap_or_default(),
        );
    }
    println!();
    println!("the first bursts ran direct: each reroute was installed after the");
    println!("burst that triggered it and torn down during the quiet epochs that");
    println!("followed. Once enough history accumulated for the periodicity");
    println!("detector, the pre-arm actions kept the reroute alive between");
    println!("bursts and burst #4 rode the proxy (~12x faster). After the");
    println!("workload stopped, the predicted burst never came and the proxy");
    println!("was released.");
}
