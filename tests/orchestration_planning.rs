//! Integration tests spanning the declaration abstraction, the benefit
//! predictor, the orchestrator, and the simulator: declare → plan →
//! simulate, end to end.

use dcsim::prelude::*;
use incast_core::declare::{compile, IncastDecl, Routing};
use incast_core::orchestrator::{GlobalOrchestrator, ProxySelector};
use incast_core::predict::{paper_profile, predict};
use incast_core::scheme::{install_incast, IncastSpec, Scheme};

fn full_topology() -> Topology {
    two_dc_leaf_spine(&TwoDcParams::default())
}

#[test]
fn declare_plan_simulate_roundtrip() {
    // Declaration.
    let decl = IncastDecl::named("pipeline")
        .sources(["w0", "w1", "w2", "w3"])
        .sink("agg")
        .expected_bytes(100_000_000)
        .build()
        .expect("valid declaration");

    // Placement + planning.
    let topo = full_topology();
    let dc0 = topo.hosts_in_dc(0);
    let dc1 = topo.hosts_in_dc(1);
    let mut placement: DetMap<String, HostId> = (0..4).map(|i| (format!("w{i}"), dc0[i])).collect();
    placement.insert("agg".into(), dc1[0]);
    let mut orch = GlobalOrchestrator::new(dc0[4..].to_vec());
    let plans = compile(&[decl], &placement, &topo, &mut orch).expect("plannable");
    let Routing::ViaProxy(proxy) = plans[0].routing else {
        panic!("100 MB cross-DC must be proxied");
    };

    // Simulation of the planned routing on a small topology (the proxy
    // host index carries over: use the small topo's own placement).
    let params = TwoDcParams::small_test().with_trim(true);
    let mut sim = Simulator::new(two_dc_leaf_spine(&params), 1);
    let s_dc0 = sim.topology().hosts_in_dc(0);
    let s_dc1 = sim.topology().hosts_in_dc(1);
    let spec = IncastSpec::new(s_dc0[..4].to_vec(), s_dc1[0], 20_000_000)
        .with_proxy(*s_dc0.last().unwrap());
    let handle = install_incast(&mut sim, &spec, Scheme::ProxyStreamlined);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(300)));
    assert!(handle.completion(sim.metrics()).is_some());
    // The planner's chosen proxy is a real DC-0 host.
    assert_eq!(topo.host_dc(proxy), Some(0));
}

#[test]
fn predictor_matches_simulated_benefit_boundary() {
    // Sim the boundary the predictor draws (degree 4, 1 ms links): the
    // predictor says 20 MB gains nothing and 100 MB gains a lot; check
    // both directions against actual small-topology runs scaled to the
    // same BDP ratio (30 MB ≈ overload, 1 MB ≈ no loss).
    let no_benefit = predict(&paper_profile(20_000_000, 4, SimDuration::from_millis(1)));
    let benefit = predict(&paper_profile(100_000_000, 4, SimDuration::from_millis(1)));
    assert!(!no_benefit.use_proxy);
    assert!(benefit.use_proxy);

    let run = |scheme: Scheme, bytes: u64| {
        let params = TwoDcParams::small_test().with_trim(scheme == Scheme::ProxyStreamlined);
        let mut sim = Simulator::new(two_dc_leaf_spine(&params), 5);
        let dc0 = sim.topology().hosts_in_dc(0);
        let dc1 = sim.topology().hosts_in_dc(1);
        let spec =
            IncastSpec::new(dc0[..4].to_vec(), dc1[0], bytes).with_proxy(*dc0.last().unwrap());
        let handle = install_incast(&mut sim, &spec, scheme);
        sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
        handle
            .completion(sim.metrics())
            .expect("completes")
            .as_secs_f64()
    };
    // Overloaded case: simulated benefit agrees with prediction.
    let base = run(Scheme::Baseline, 30_000_000);
    let prox = run(Scheme::ProxyStreamlined, 30_000_000);
    assert!(prox < base * 0.6, "predicted benefit must materialize");
    // Tiny case: no meaningful benefit.
    let base = run(Scheme::Baseline, 1_000_000);
    let prox = run(Scheme::ProxyStreamlined, 1_000_000);
    assert!(prox > base * 0.7, "no benefit expected below the boundary");
}

#[test]
fn orchestrated_concurrent_incasts_all_complete() {
    // Two jobs, distinct proxies from the orchestrator, one simulator.
    let params = TwoDcParams::small_test().with_trim(true);
    let mut sim = Simulator::new(two_dc_leaf_spine(&params), 7);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);

    let mut orch = GlobalOrchestrator::new(dc0[4..].to_vec());
    let mut handles = Vec::new();
    for i in 0..2u64 {
        let senders = dc0[(i as usize) * 2..(i as usize) * 2 + 2].to_vec();
        let receiver = dc1[i as usize];
        let assignment = orch
            .select(&incast_core::orchestrator::IncastRequest {
                id: i,
                senders: senders.clone(),
                receiver,
                expected_bytes: 8_000_000,
            })
            .expect("proxy available");
        let spec = IncastSpec::new(senders, receiver, 8_000_000).with_proxy(assignment.proxy);
        handles.push(install_incast(&mut sim, &spec, Scheme::ProxyStreamlined));
    }
    let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(300)));
    assert_eq!(report.stop, StopReason::Idle, "{report:?}");
    for h in &handles {
        assert!(h.completion(sim.metrics()).is_some());
    }
    assert_eq!(orch.active_incasts(), 2);
    orch.release(0);
    orch.release(1);
    assert_eq!(orch.active_incasts(), 0);
}

#[test]
fn plan_errors_are_reported_not_guessed() {
    let topo = full_topology();
    let dc0 = topo.hosts_in_dc(0);
    let decl = IncastDecl::named("broken")
        .sources(["a", "missing"])
        .sink("s")
        .expected_bytes(1_000_000)
        .build()
        .expect("declaration itself is fine");
    let placement: DetMap<String, HostId> =
        [("a".to_string(), dc0[0]), ("s".to_string(), dc0[1])].into();
    let mut orch = GlobalOrchestrator::new(vec![dc0[5]]);
    let err = compile(&[decl], &placement, &topo, &mut orch).unwrap_err();
    assert!(matches!(
        err,
        incast_core::declare::PlanError::Unplaced(ref c) if c == "missing"
    ));
}
