//! Integration tests for the research-agenda extensions: the FW#1
//! detector-based proxy, the rate-based transport, background traffic,
//! and the §6 operator runtime — all exercised end to end through the
//! simulator.

use dcsim::prelude::*;
use incast_core::experiment::TrimPolicy;
use incast_core::lossdetect::LossDetectorConfig;
use incast_core::orchestrator::GlobalOrchestrator;
use incast_core::runtime::{OperatorRuntime, RuntimeAction, RuntimeConfig};
use incast_core::scheme::{install_incast, IncastSpec, Scheme, Transport};

fn run(scheme: Scheme, bytes: u64, transport: Transport, seed: u64) -> (f64, u64 /* rtos */) {
    let trim = TrimPolicy::SchemeDefault.enabled_for(scheme);
    let params = TwoDcParams::small_test().with_trim(trim);
    let mut sim = Simulator::new(two_dc_leaf_spine(&params), seed);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    let mut spec =
        IncastSpec::new(dc0[..4].to_vec(), dc1[0], bytes).with_proxy(*dc0.last().unwrap());
    spec.transport = transport;
    spec.detector = LossDetectorConfig {
        reorder_threshold: 8,
        max_pending: 4096,
        ..Default::default()
    };
    let handle = install_incast(&mut sim, &spec, scheme);
    let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
    assert_eq!(report.stop, StopReason::Idle, "{scheme}: {report:?}");
    (
        handle
            .completion(sim.metrics())
            .expect("completes")
            .as_secs_f64(),
        sim.metrics().counter(Counter::RtoFires),
    )
}

#[test]
fn detecting_proxy_lands_between_streamlined_and_baseline() {
    let bytes = 30_000_000;
    let (baseline, _) = run(Scheme::Baseline, bytes, Transport::WindowedDctcp, 1);
    let (streamlined, _) = run(Scheme::ProxyStreamlined, bytes, Transport::WindowedDctcp, 1);
    let (detecting, _) = run(Scheme::ProxyDetecting, bytes, Transport::WindowedDctcp, 1);
    assert!(
        detecting < baseline * 0.8,
        "no-trim inference must still beat the baseline: {detecting} vs {baseline}"
    );
    assert!(
        detecting >= streamlined,
        "inference cannot beat exact trimming evidence: {detecting} vs {streamlined}"
    );
}

#[test]
fn detecting_proxy_generates_nacks_without_trimming() {
    let params = TwoDcParams::small_test().with_trim(false);
    let mut sim = Simulator::new(two_dc_leaf_spine(&params), 2);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    let spec =
        IncastSpec::new(dc0[..4].to_vec(), dc1[0], 30_000_000).with_proxy(*dc0.last().unwrap());
    let handle = install_incast(&mut sim, &spec, Scheme::ProxyDetecting);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
    assert!(handle.completion(sim.metrics()).is_some());
    assert!(
        sim.metrics().counter(Counter::ProxyNacks) > 0,
        "losses must be inferred and NACKed despite drop-tail switches"
    );
    assert_eq!(sim.metrics().counter(Counter::ReceiverNacks), 0);
}

#[test]
fn rate_based_transport_completes_under_every_scheme() {
    for scheme in Scheme::EXTENDED {
        let (ict, _) = run(scheme, 10_000_000, Transport::RateBased, 3);
        assert!(ict > 0.0 && ict < 10.0, "{scheme}: {ict}");
    }
}

#[test]
fn pacing_softens_the_baseline_collapse() {
    let bytes = 30_000_000;
    let (windowed, _) = run(Scheme::Baseline, bytes, Transport::WindowedDctcp, 4);
    let (paced, _) = run(Scheme::Baseline, bytes, Transport::RateBased, 4);
    assert!(
        paced < windowed,
        "paced start must avoid the first-RTT catastrophe: {paced} vs {windowed}"
    );
}

#[test]
fn proxy_still_wins_under_rate_based_transport() {
    let bytes = 30_000_000;
    let (baseline, _) = run(Scheme::Baseline, bytes, Transport::RateBased, 5);
    let (streamlined, _) = run(Scheme::ProxyStreamlined, bytes, Transport::RateBased, 5);
    assert!(
        streamlined < baseline,
        "the feedback-loop argument is transport-independent: {streamlined} vs {baseline}"
    );
}

#[test]
fn incast_completes_amid_background_traffic() {
    let params = TwoDcParams::small_test().with_trim(true);
    let mut sim = Simulator::new(two_dc_leaf_spine(&params), 6);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    // Background over hosts not in the incast.
    BackgroundTraffic {
        flows: 30,
        sizes: FlowSizeDist::WebSearch,
        start_window: SimDuration::from_millis(2),
        hosts: vec![dc0[4], dc0[5], dc0[6], dc1[1], dc1[2], dc1[3]],
        seed: 77,
    }
    .install(&mut sim);
    let spec =
        IncastSpec::new(dc0[..4].to_vec(), dc1[0], 10_000_000).with_proxy(*dc0.last().unwrap());
    let handle = install_incast(&mut sim, &spec, Scheme::ProxyStreamlined);
    let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
    assert_eq!(report.stop, StopReason::Idle);
    assert!(handle.completion(sim.metrics()).is_some());
    // All background flows also finish.
    assert_eq!(sim.metrics().completed_flows(), 30 + 4);
}

#[test]
fn operator_runtime_drives_a_simulated_reroute() {
    // The full §6 loop against the simulator: observe epoch traffic,
    // receive a Reroute action, install the incast through the allocated
    // proxy, and verify it beats the direct route.
    fn dc_of(h: HostId) -> u32 {
        u32::from(h.0 >= 8) // small_test: 8 hosts per DC
    }
    let topo = two_dc_leaf_spine(&TwoDcParams::small_test().with_trim(true));
    let dc0 = topo.hosts_in_dc(0);
    let dc1 = topo.hosts_in_dc(1);
    let mut rt = OperatorRuntime::new(
        RuntimeConfig {
            inter_rtt: topo.base_rtt(dc0[0], dc1[0], 1500, 64),
            bottleneck_buffer: 1_700_000, // small_test buffers
            ..Default::default()
        },
        incast_core::detect::SignatureConfig {
            min_degree: 3,
            min_bytes: 5_000_000,
        },
        dc_of,
        GlobalOrchestrator::new(dc0[4..].to_vec()),
    );
    // The operator sees one epoch of incast traffic toward dc1[0].
    for &s in &dc0[..4] {
        rt.observe(s, dc1[0], 7_500_000);
    }
    let actions = rt.end_epoch();
    let RuntimeAction::Reroute { proxy, .. } = actions[0] else {
        panic!("expected a reroute, got {actions:?}");
    };

    // Apply the action: the next occurrence runs through the proxy.
    let run_with = |proxy: Option<HostId>, scheme: Scheme| {
        let params = TwoDcParams::small_test().with_trim(scheme == Scheme::ProxyStreamlined);
        let mut sim = Simulator::new(two_dc_leaf_spine(&params), 9);
        let dc0 = sim.topology().hosts_in_dc(0);
        let dc1 = sim.topology().hosts_in_dc(1);
        let mut spec = IncastSpec::new(dc0[..4].to_vec(), dc1[0], 30_000_000);
        if let Some(p) = proxy {
            spec = spec.with_proxy(p);
        }
        let handle = install_incast(&mut sim, &spec, scheme);
        sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
        handle
            .completion(sim.metrics())
            .expect("completes")
            .as_secs_f64()
    };
    let direct = run_with(None, Scheme::Baseline);
    let rerouted = run_with(Some(proxy), Scheme::ProxyStreamlined);
    assert!(
        rerouted < direct,
        "the operator's reroute must pay off: {rerouted} vs {direct}"
    );
}
