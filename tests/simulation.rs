//! End-to-end simulation integration tests: flows and incasts across the
//! full stack (topology → switches → transport → schemes → metrics).
//!
//! Paper-scale runs live in the bench binaries; these tests use the
//! scaled-down topology so they stay fast in debug builds while still
//! exercising every code path (ECN, trimming, NACKs, RTO, proxy relays).

use dcsim::prelude::*;
use incast_core::scheme::{install_incast, IncastSpec, Scheme};

fn small_sim(seed: u64, trim: bool) -> Simulator {
    let params = TwoDcParams::small_test().with_trim(trim);
    Simulator::new(two_dc_leaf_spine(&params), seed)
}

/// Builds the standard small-scale incast spec: 3 senders in DC 0, the
/// receiver in DC 1, the last DC 0 host as proxy.
fn spec(sim: &Simulator, bytes: u64) -> IncastSpec {
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    IncastSpec::new(dc0[..3].to_vec(), dc1[0], bytes).with_proxy(*dc0.last().unwrap())
}

#[test]
fn single_flow_delivers_every_byte() {
    let mut sim = small_sim(1, true);
    let dst = sim.topology().hosts_in_dc(1)[0];
    let bytes = 3_333_333; // deliberately not a packet multiple
    let handle = dcsim::flows::install_flow(
        &mut sim,
        dcsim::flows::FlowSpec::new(HostId(0), dst, bytes),
        SimTime::ZERO,
    );
    let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
    assert_eq!(report.stop, StopReason::Idle);
    assert!(sim.metrics().completion(handle.flow).is_some());
    assert_eq!(handle.packets, bytes.div_ceil(MSS));
}

#[test]
fn incast_completes_under_every_scheme() {
    for scheme in Scheme::ALL {
        let mut sim = small_sim(2, scheme == Scheme::ProxyStreamlined);
        let spec = spec(&sim, 10_000_000);
        let handle = install_incast(&mut sim, &spec, scheme);
        let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(120)));
        assert_eq!(report.stop, StopReason::Idle, "{scheme}: {report:?}");
        let ict = handle.completion(sim.metrics()).expect("completes");
        assert!(ict > SimDuration::ZERO);
        assert!(ict < SimDuration::from_secs(120), "{scheme}: {ict}");
    }
}

#[test]
fn overloaded_incast_prefers_the_proxy() {
    // 30 MB over 3 senders with ~50 MB initial windows into a 17 MB
    // buffer: heavy first-RTT overload. Both proxies must beat baseline.
    let mut results = Vec::new();
    for scheme in Scheme::ALL {
        let mut sim = small_sim(3, scheme == Scheme::ProxyStreamlined);
        let spec = spec(&sim, 30_000_000);
        let handle = install_incast(&mut sim, &spec, scheme);
        sim.run(Some(SimTime::ZERO + SimDuration::from_secs(300)));
        results.push(
            handle
                .completion(sim.metrics())
                .expect("completes")
                .as_secs_f64(),
        );
    }
    let (baseline, naive, streamlined) = (results[0], results[1], results[2]);
    assert!(
        naive < baseline * 0.5,
        "naive {naive} vs baseline {baseline}"
    );
    assert!(
        streamlined < baseline * 0.5,
        "streamlined {streamlined} vs baseline {baseline}"
    );
}

#[test]
fn congestion_point_moves_to_the_proxy() {
    // Under Streamlined, trims happen in the sending DC (the proxy's
    // down-ToR); the receiver must see no trimmed packets at all.
    let mut sim = small_sim(4, true);
    let spec = spec(&sim, 30_000_000);
    let handle = install_incast(&mut sim, &spec, Scheme::ProxyStreamlined);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(300)));
    assert!(handle.completion(sim.metrics()).is_some());
    let m = sim.metrics();
    assert!(
        m.counter(Counter::ProxyNacks) > 0,
        "proxy must observe trims"
    );
    assert_eq!(
        m.counter(Counter::ReceiverNacks),
        0,
        "no loss evidence may reach the receiver"
    );
}

#[test]
fn baseline_congestion_stays_at_the_receiver() {
    let mut sim = small_sim(4, true); // trim on even for baseline here
    let spec = spec(&sim, 30_000_000);
    let handle = install_incast(&mut sim, &spec, Scheme::Baseline);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(300)));
    assert!(handle.completion(sim.metrics()).is_some());
    assert!(
        sim.metrics().counter(Counter::ReceiverNacks) > 0,
        "with trimming switches the receiver NACKs the trimmed packets"
    );
    assert_eq!(sim.metrics().counter(Counter::ProxyNacks), 0);
}

#[test]
fn naive_proxy_grants_pace_the_relay() {
    // The relay leg can never have received more than the ingress
    // delivered: completion order is ingress flow then relay flow.
    let mut sim = small_sim(5, false);
    let spec = spec(&sim, 5_000_000);
    let handle = install_incast(&mut sim, &spec, Scheme::ProxyNaive);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(120)));
    let m = sim.metrics();
    // all_flows alternates [legA, legB] per sender.
    for pair in handle.all_flows.chunks(2) {
        let (leg_a, leg_b) = (pair[0], pair[1]);
        let a_done = m.completion(leg_a).expect("ingress completes");
        let b_done = m.completion(leg_b).expect("relay completes");
        assert!(
            a_done <= b_done,
            "relay cannot finish before its ingress: {a_done} vs {b_done}"
        );
    }
}

#[test]
fn simultaneous_senders_share_fairly_under_streamlined() {
    // With identical flows and the fast local loop, per-flow completions
    // should cluster: max/min below 2x.
    let mut sim = small_sim(6, true);
    let spec = spec(&sim, 15_000_000);
    let handle = install_incast(&mut sim, &spec, Scheme::ProxyStreamlined);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(300)));
    let m = sim.metrics();
    let times: Vec<f64> = handle
        .watch_flows
        .iter()
        .map(|&f| m.completion(f).expect("completes").0 as f64)
        .collect();
    let max = times.iter().cloned().fold(0.0, f64::max);
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max / min < 2.0, "unfair completions: min={min} max={max}");
}

#[test]
fn run_respects_time_limit() {
    let mut sim = small_sim(7, false);
    let spec = spec(&sim, 50_000_000);
    install_incast(&mut sim, &spec, Scheme::Baseline);
    let limit = SimTime::ZERO + SimDuration::from_micros(100);
    let report = sim.run(Some(limit));
    assert_eq!(report.stop, StopReason::TimeLimit);
    assert!(sim.now() <= limit);
}

#[test]
fn event_cap_stops_runaway_runs() {
    let mut sim = small_sim(8, false);
    let spec = spec(&sim, 50_000_000);
    install_incast(&mut sim, &spec, Scheme::Baseline);
    sim.set_event_cap(10_000);
    let report = sim.run(None);
    assert_eq!(report.stop, StopReason::EventCap);
    assert_eq!(report.events, 10_000);
}
