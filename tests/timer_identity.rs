//! Regression tests for the cancelable-timer-slot rework.
//!
//! The conversion from epoch-invalidated timers to indexed cancel /
//! reschedule-in-place must be *semantically invisible*: only the latest
//! armed deadline ever fired before, so flow-completion times and queue
//! traces have to come out bit-identical — the only observable change is
//! fewer events processed (no stale pops) and a smaller heap. The golden
//! values below were captured from the epoch-based implementation
//! immediately before the conversion; any drift is a correctness bug, not
//! noise.

use dcsim::prelude::*;
use incast_core::scheme::Transport;
use incast_core::{install_incast, ExperimentConfig, Scheme};

/// Per-flow completion times, an FNV-1a hash of the receiver down-ToR
/// occupancy trace, and the events processed for one small-config run.
fn run_traced(config: &ExperimentConfig, seed: u64) -> (Vec<u64>, u64, u64) {
    let params = config
        .topo
        .with_trim(config.trim.enabled_for(config.scheme));
    let topo = two_dc_leaf_spine(&params);
    let mut sim = Simulator::new(topo, seed);
    let spec = config.placement(sim.topology());
    let port = sim.topology().down_tor_port(spec.receiver);
    sim.trace_port(port);
    let handle = install_incast(&mut sim, &spec, config.scheme);
    let limit = spec.start + config.time_limit;
    let report = sim.run(Some(limit));
    assert!(report.stop != StopReason::EventCap, "event cap");
    let churn = sim.metrics().timer_churn;
    assert_eq!(
        churn.discarded_stale, 0,
        "no timer event may pop dead after the rework"
    );
    assert!(churn.rescheduled > 0, "senders must move RTOs in place");
    assert!(
        churn.fired <= churn.armed,
        "every firing timer was once armed: {churn:?}"
    );
    assert_eq!(
        churn.armed,
        churn.fired + churn.canceled,
        "armed timers either fire or are canceled by idle: {churn:?}"
    );
    let fcts: Vec<u64> = handle
        .watch_flows
        .iter()
        .map(|f| sim.metrics().completion(*f).expect("flow completed").0)
        .collect();
    let mut h: u64 = 0xcbf29ce484222325;
    for &(t, b) in sim.port_trace(port) {
        for v in [t.0, b] {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    (fcts, h, sim.metrics().events_processed)
}

fn windowed_config(scheme: Scheme) -> ExperimentConfig {
    ExperimentConfig {
        topo: TwoDcParams::small_test(),
        scheme,
        degree: 3,
        total_bytes: 2_000_000,
        seed: 42,
        ..Default::default()
    }
}

fn rate_config(scheme: Scheme) -> ExperimentConfig {
    ExperimentConfig {
        transport: Transport::RateBased,
        ..windowed_config(scheme)
    }
}

/// One golden row: (config, expected FCTs, expected trace hash, events
/// processed by the *epoch-based* implementation). FCTs and hashes must
/// match exactly; the event count must come in strictly below the old one.
fn check(config: &ExperimentConfig, want_fcts: &[u64], want_hash: u64, old_events: u64) {
    let (fcts, hash, events) = run_traced(config, 42);
    assert_eq!(fcts, want_fcts, "FCT drift under {:?}", config.scheme);
    assert_eq!(
        hash, want_hash,
        "queue-trace drift under {:?}",
        config.scheme
    );
    assert!(
        events < old_events,
        "{:?}: {events} events, expected strictly fewer than the \
         epoch-based implementation's {old_events}",
        config.scheme
    );
}

#[test]
fn windowed_schemes_are_bit_identical_to_pre_rework_goldens() {
    check(
        &windowed_config(Scheme::Baseline),
        &[372_000_000, 371_880_000, 371_640_000],
        0x5366c312027f8b01,
        34_878,
    );
    check(
        &windowed_config(Scheme::ProxyNaive),
        &[383_622_400, 379_662_400, 383_262_400],
        0x0e452dd942163a81,
        59_988,
    );
    check(
        &windowed_config(Scheme::ProxyStreamlined),
        &[376_660_000, 376_780_000, 376_900_000],
        0x5b3b8dfb27605a01,
        59_988,
    );
    check(
        &windowed_config(Scheme::ProxyDetecting),
        &[377_831_200, 378_071_200, 378_191_200],
        0x6f81574b5c042fe5,
        67_017,
    );
}

#[test]
fn rate_based_schemes_are_bit_identical_to_pre_rework_goldens() {
    check(
        &rate_config(Scheme::Baseline),
        &[483_120_000, 483_360_000, 483_240_000],
        0xe4d396e545e6e901,
        39_054,
    );
    check(
        &rate_config(Scheme::ProxyStreamlined),
        &[488_020_000, 488_140_000, 488_260_000],
        0x11a2e4f818244e01,
        64_164,
    );
}

/// Two identical configs must produce identical runs — the timer-slot
/// machinery (slab reuse, generation tags) introduces no hidden state.
#[test]
fn timer_slots_preserve_determinism() {
    let a = run_traced(&windowed_config(Scheme::ProxyStreamlined), 42);
    let b = run_traced(&windowed_config(Scheme::ProxyStreamlined), 42);
    assert_eq!(a, b);
}
