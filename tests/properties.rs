//! Property-based tests (proptest) over the core data structures and
//! invariants: event ordering, queue conservation, sequence tracking,
//! loss detection, wire-format round-trips, statistics, and simulator
//! determinism.

use dcsim::events::{Event, EventQueue, TimerKind};
use dcsim::packet::{AgentId, FlowId, HostId, Packet};
use dcsim::protocol::SeqSet;
use dcsim::queues::{EnqueueOutcome, PortQueue, QueueConfig};
use dcsim::time::SimTime;
use incast_core::lossdetect::{LossDetector, LossDetectorConfig};
use netproxy::wire::{Flags, WireHeader};
use proptest::prelude::*;
use std::collections::BTreeSet;
use trace::{Cdf, LogHistogram, SplitMix64};

proptest! {
    /// Events pop in non-decreasing time order and same-time events keep
    /// insertion order, for any schedule.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), Event::Timer {
                agent: AgentId(i as u32),
                kind: TimerKind::Rto,
            });
        }
        let mut last: Option<(SimTime, u32)> = None;
        while let Some((at, Event::Timer { agent, .. })) = q.pop() {
            if let Some((lt, lagent)) = last {
                prop_assert!(at >= lt, "time went backwards");
                if at == lt {
                    prop_assert!(agent.0 > lagent, "tie broke out of insertion order");
                }
            }
            prop_assert_eq!(at.0, times[agent.0 as usize]);
            last = Some((at, agent.0));
        }
        prop_assert!(q.is_empty());
    }

    /// Conservation: every packet offered to a port queue is eventually
    /// dequeued (possibly trimmed) or dropped — never duplicated or lost.
    #[test]
    fn port_queue_conserves_packets(
        seed in any::<u64>(),
        ops in prop::collection::vec(prop::bool::ANY, 1..500),
        capacity_pkts in 1u64..16,
    ) {
        let cfg = QueueConfig {
            capacity_bytes: capacity_pkts * 1500,
            ctrl_capacity_bytes: 4 * 64,
            mark_low_bytes: 1500,
            mark_high_bytes: 3000,
            trim: true,
        };
        let mut q = PortQueue::new(cfg);
        let mut rng = SplitMix64::new(seed);
        let mut offered = 0u64;
        let mut dequeued = 0u64;
        let mut dropped = 0u64;
        for (i, &enq) in ops.iter().enumerate() {
            if enq {
                let pkt = Packet::data(FlowId(0), i as u64, HostId(0), HostId(1), 0);
                offered += 1;
                if q.enqueue(pkt, &mut rng) == EnqueueOutcome::Dropped {
                    dropped += 1;
                }
            } else if q.dequeue().is_some() {
                dequeued += 1;
            }
        }
        while q.dequeue().is_some() {
            dequeued += 1;
        }
        prop_assert_eq!(offered, dequeued + dropped);
        prop_assert_eq!(q.total_bytes(), 0);
    }

    /// ECN marking only upgrades Ect -> Ce; it never clears a mark, and
    /// trimmed packets keep their sequence number.
    #[test]
    fn queue_never_unmarks_or_renumbers(seed in any::<u64>(), n in 1usize..100) {
        let mut q = PortQueue::new(QueueConfig {
            capacity_bytes: 3 * 1500,
            ctrl_capacity_bytes: 1_000_000,
            mark_low_bytes: 0,
            mark_high_bytes: 1500,
            trim: true,
        });
        let mut rng = SplitMix64::new(seed);
        for i in 0..n {
            let pkt = Packet::data(FlowId(0), i as u64, HostId(0), HostId(1), 0);
            q.enqueue(pkt, &mut rng);
        }
        let mut seen = BTreeSet::new();
        while let Some(p) = q.dequeue() {
            prop_assert!(seen.insert(p.seq), "duplicate seq {}", p.seq);
            prop_assert!((p.seq as usize) < n);
        }
    }

    /// SeqSet behaves exactly like a BTreeSet under arbitrary operations.
    #[test]
    fn seqset_matches_model(ops in prop::collection::vec((0u64..256, prop::bool::ANY), 1..400)) {
        let mut real = SeqSet::new(256);
        let mut model = BTreeSet::new();
        for (seq, insert) in ops {
            if insert {
                prop_assert_eq!(real.insert(seq), model.insert(seq));
            } else {
                prop_assert_eq!(real.remove(seq), model.remove(&seq));
            }
            prop_assert_eq!(real.len(), model.len() as u64);
        }
        let drained: Vec<u64> = real.iter().collect();
        let expected: Vec<u64> = model.into_iter().collect();
        prop_assert_eq!(drained, expected);
    }

    /// Without reordering, the loss detector finds exactly the dropped
    /// sequences (no false positives, no false negatives) provided enough
    /// packets follow each gap.
    #[test]
    fn loss_detector_exact_in_order(
        drop_mask in prop::collection::vec(prop::bool::ANY, 32..300),
    ) {
        let n = drop_mask.len() as u64;
        let mut det = LossDetector::new(LossDetectorConfig {
            reorder_threshold: 3,
            max_pending: 4096,
            ..Default::default()
        });
        let mut declared = Vec::new();
        let mut dropped = Vec::new();
        for seq in 0..n {
            // Keep the last 8 packets so every gap gets enough successors.
            if drop_mask[seq as usize] && seq < n - 8 {
                dropped.push(seq);
            } else {
                declared.extend(det.observe(FlowId(0), seq).into_iter().map(|e| e.seq));
            }
        }
        declared.sort_unstable();
        prop_assert_eq!(declared, dropped);
    }

    /// Wire format round-trips arbitrary valid headers and payloads.
    #[test]
    fn wire_roundtrip(
        flow in any::<u64>(),
        seq in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..1400),
        kind in 0u8..4,
    ) {
        let header = match kind {
            0 => WireHeader::data(flow, seq, payload.len() as u16),
            1 => WireHeader::ack(flow, seq),
            2 => WireHeader::nack(flow, seq),
            _ => WireHeader::trimmed(flow, seq),
        };
        let body: &[u8] = if kind == 0 { &payload } else { &[] };
        let wire = header.encode(body);
        let (decoded, p) = WireHeader::decode(&wire).expect("roundtrip");
        prop_assert_eq!(decoded, header);
        prop_assert_eq!(p, body);
        prop_assert!(decoded.flags.is_valid());
    }

    /// Arbitrary byte blobs never panic the decoder and never round-trip
    /// into TRIMMED-without-DATA or multi-type flags.
    #[test]
    fn wire_decoder_is_total(blob in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok((h, _)) = WireHeader::decode(&blob) {
            prop_assert!(h.flags.is_valid());
            prop_assert!(!h.flags.contains(Flags::TRIMMED) || h.flags.contains(Flags::DATA));
        }
    }

    /// CDF quantiles are monotone and bounded by min/max for any sample set.
    #[test]
    fn cdf_quantiles_monotone(samples in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let cdf = Cdf::from_samples(samples.clone());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = cdf.quantile(i as f64 / 20.0);
            prop_assert!(q >= last);
            prop_assert!(q >= cdf.min() && q <= cdf.max());
            last = q;
        }
        prop_assert_eq!(cdf.quantile(0.0), cdf.min());
        prop_assert_eq!(cdf.quantile(1.0), cdf.max());
    }

    /// Histogram quantiles stay within the recorded min/max and respect
    /// the relative-error bound at the median.
    #[test]
    fn histogram_bounded_error(values in prop::collection::vec(1u64..1_000_000_000, 8..200)) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        prop_assert!(q50 >= h.min() && q50 <= h.max());
        // Compare against the same rank definition the histogram uses
        // (the ceil(q·n)-th smallest sample), within the bucketing error.
        let exact = {
            let mut s = values.clone();
            s.sort_unstable();
            s[(values.len().div_ceil(2)) - 1] as f64
        };
        prop_assert!((q50 as f64) <= exact * 1.02 + 2.0, "q50={q50} exact={exact}");
        prop_assert!((q50 as f64) >= exact * 0.98 - 2.0, "q50={q50} exact={exact}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (seed, degree, size) combination completes under every scheme
    /// on the small topology, and the same seed reproduces the same ICT.
    #[test]
    fn incasts_always_complete_and_replay(
        seed in 0u64..1000,
        degree in 1usize..5,
        mb in 1u64..12,
    ) {
        use dcsim::prelude::*;
        use incast_core::scheme::{install_incast, IncastSpec, Scheme};
        for scheme in Scheme::ALL {
            let run = || {
                let params = TwoDcParams::small_test()
                    .with_trim(scheme == Scheme::ProxyStreamlined);
                let mut sim = Simulator::new(two_dc_leaf_spine(&params), seed);
                let dc0 = sim.topology().hosts_in_dc(0);
                let dc1 = sim.topology().hosts_in_dc(1);
                let spec = IncastSpec::new(dc0[..degree].to_vec(), dc1[0], mb * 1_000_000)
                    .with_proxy(*dc0.last().unwrap());
                let handle = install_incast(&mut sim, &spec, scheme);
                let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
                prop_assert_eq!(report.stop, StopReason::Idle);
                Ok(handle.completion(sim.metrics()).expect("completes"))
            };
            let a = run()?;
            let b = run()?;
            prop_assert_eq!(a, b, "seed {} must replay identically", seed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The unstructured random topology always routes every cross-DC pair
    /// and is deterministic per seed.
    #[test]
    fn unstructured_topology_always_routes(seed in any::<u64>()) {
        use dcsim::topology::{two_dc_unstructured, UnstructuredParams};
        let params = UnstructuredParams {
            switches_per_dc: 5,
            extra_links_per_dc: 4,
            hosts_per_dc: 6,
            gateways: 2,
            seed,
            ..Default::default()
        };
        let t = two_dc_unstructured(&params);
        let src = t.hosts_in_dc(0)[0];
        for &dst in &t.hosts_in_dc(1) {
            prop_assert!(t.path_hops(src, dst) >= 3);
            prop_assert!(t.path_hops(src, dst) <= t.node_count());
        }
        // Determinism: rebuilding yields identical path lengths.
        let t2 = two_dc_unstructured(&params);
        for &dst in &t.hosts_in_dc(1) {
            prop_assert_eq!(t.path_hops(src, dst), t2.path_hops(src, dst));
        }
    }

    /// The rate-based sender's pacing rate stays within its configured
    /// bounds for any sequence of bandwidth samples.
    #[test]
    fn rate_sender_pacing_bounded(samples in prop::collection::vec(1u64..1_000_000_000_000, 0..64)) {
        use dcsim::packet::{FlowId as F, HostId as H};
        use dcsim::protocol::rate::{RateCcConfig, RateSender};
        use dcsim::time::{Bandwidth, SimDuration};
        let config = RateCcConfig::for_path(SimDuration::from_micros(100), Bandwidth::gbps(100));
        let mut s = RateSender::new(F(0), H(0), H(1), 10, config);
        let _ = &samples; // bandwidth estimates enter via acks in real runs;
        // here we check the static bound: gain ≤ startup_gain and the floor.
        let rate = s.pacing_rate().bps();
        prop_assert!(rate >= config.min_rate.bps());
        prop_assert!(rate <= (config.initial_rate.bps() as f64 * config.startup_gain) as u64 + 1);
        prop_assert!(s.btl_bw().bps() > 0);
        let _ = &mut s;
    }

    /// RTO backoff is monotone non-decreasing across consecutive timeouts
    /// and always clamped to `max_rto`, for any interleaving of RTT samples
    /// and expiries.
    #[test]
    fn rto_backoff_monotone_and_clamped(
        ops in prop::collection::vec((prop::bool::ANY, 1u64..10_000), 1..200),
    ) {
        use dcsim::protocol::rto::{RtoConfig, RttEstimator};
        use dcsim::time::SimDuration;
        let config = RtoConfig {
            min_rto: SimDuration::from_micros(100),
            max_rto: SimDuration::from_millis(10),
            initial_rto: SimDuration::from_micros(300),
        };
        let mut est = RttEstimator::new(config);
        let mut last_rto: Option<SimDuration> = None;
        // (true, us): an RTT sample arrives (resets backoff).
        // (false, _): a timeout expires.
        for (is_sample, us) in ops {
            if is_sample {
                est.sample(SimDuration::from_micros(us));
                last_rto = None;
            } else {
                est.on_timeout();
                let rto = est.rto();
                if let Some(prev) = last_rto {
                    prop_assert!(
                        rto >= prev,
                        "backoff went backwards: {prev:?} -> {rto:?}"
                    );
                }
                last_rto = Some(rto);
            }
            prop_assert!(est.rto() <= config.max_rto, "rto above max: {:?}", est.rto());
            prop_assert!(est.rto() > SimDuration::ZERO);
        }
    }

    /// The loss detector's sweep never reports a sequence that already
    /// arrived, for any loss/arrival interleaving.
    #[test]
    fn sweep_never_renacks_arrived_seqs(
        drop_mask in prop::collection::vec(prop::bool::ANY, 16..120),
    ) {
        use incast_core::lossdetect::{LossDetector, LossDetectorConfig};
        let mut det = LossDetector::new(LossDetectorConfig {
            reorder_threshold: 4,
            max_pending: 256,
            ..Default::default()
        });
        let mut arrived = Vec::new();
        for (seq, &dropped) in drop_mask.iter().enumerate() {
            if !dropped {
                det.observe(FlowId(0), seq as u64);
                arrived.push(seq as u64);
            }
        }
        for _ in 0..4 {
            for loss in det.sweep(FlowId(0)) {
                prop_assert!(
                    !arrived.contains(&loss.seq),
                    "sweep re-NACKed an arrived sequence {}",
                    loss.seq
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An incast survives a mid-run down/up window on the receiver's
    /// down-ToR link — the hop every flow crosses — for any flap timing:
    /// every flow completes, which the receiver only reports once its
    /// sequence set holds every range exactly once (duplicates are
    /// deduplicated, losses are retransmitted; neither can fake
    /// completion).
    #[test]
    fn incast_survives_receiver_link_flap(
        seed in 0u64..1000,
        down_us in 10u64..400,
        outage_us in 10u64..500,
    ) {
        use dcsim::prelude::*;
        use incast_core::experiment::{run_incast, ExperimentConfig, FaultScenario};
        use incast_core::Scheme;
        for scheme in [Scheme::Baseline, Scheme::ProxyStreamlined] {
            let config = ExperimentConfig {
                topo: TwoDcParams::small_test(),
                scheme,
                degree: 3,
                total_bytes: 2_000_000,
                seed,
                faults: FaultScenario::ReceiverLinkFlap {
                    after: SimDuration::from_micros(down_us),
                    up_after: SimDuration::from_micros(outage_us),
                },
                ..Default::default()
            };
            // run_incast panics if any flow stalls permanently.
            let out = run_incast(&config, seed);
            prop_assert!(out.completion_secs > 0.0, "{scheme}: {out:?}");
        }
    }
}
