//! Integration tests pinning the paper's qualitative claims at reduced
//! scale — the assertions EXPERIMENTS.md relies on, kept green by CI.
//!
//! Each test mirrors one sentence of §3/§4 and fails if the corresponding
//! mechanism stops producing the claimed direction.

use dcsim::prelude::*;
use incast_core::scheme::{install_incast, IncastSpec, Scheme};

/// Runs one small-topology incast, returns the ICT in seconds.
fn run(scheme: Scheme, bytes: u64, wan: SimDuration, early_nack: bool, seed: u64) -> f64 {
    let params = TwoDcParams::small_test()
        .with_wan_latency(wan)
        .with_trim(scheme == Scheme::ProxyStreamlined);
    let mut sim = Simulator::new(two_dc_leaf_spine(&params), seed);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    let mut spec =
        IncastSpec::new(dc0[..3].to_vec(), dc1[0], bytes).with_proxy(*dc0.last().unwrap());
    spec.early_nack = early_nack;
    let handle = install_incast(&mut sim, &spec, scheme);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
    handle
        .completion(sim.metrics())
        .expect("incast completes")
        .as_secs_f64()
}

const WAN_1MS: SimDuration = SimDuration(1_000_000_000);

#[test]
fn claim_adding_a_hop_reduces_completion_time() {
    // §1: "Surprisingly, adding this extra hop reduces incast latency!"
    let baseline = run(Scheme::Baseline, 30_000_000, WAN_1MS, true, 1);
    let naive = run(Scheme::ProxyNaive, 30_000_000, WAN_1MS, true, 1);
    let streamlined = run(Scheme::ProxyStreamlined, 30_000_000, WAN_1MS, true, 1);
    assert!(naive < baseline, "naive {naive} !< baseline {baseline}");
    assert!(
        streamlined < baseline,
        "streamlined {streamlined} !< baseline {baseline}"
    );
}

#[test]
fn claim_small_incasts_see_no_benefit() {
    // §4.2: the under-BDP incast "starts with a reasonable collective
    // sending rate, sees no packet loss ... all three schemes are on par".
    let bytes = 1_000_000;
    let baseline = run(Scheme::Baseline, bytes, WAN_1MS, true, 2);
    let naive = run(Scheme::ProxyNaive, bytes, WAN_1MS, true, 2);
    let streamlined = run(Scheme::ProxyStreamlined, bytes, WAN_1MS, true, 2);
    for (name, t) in [("naive", naive), ("streamlined", streamlined)] {
        let ratio = t / baseline;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "{name} should be on par with baseline: {t} vs {baseline}"
        );
    }
}

#[test]
fn claim_benefit_grows_with_latency_gap() {
    // §4.2 / Figure 3: "The incast latency savings are more pronounced
    // with larger link latencies."
    let mut reductions = Vec::new();
    for wan_us in [100u64, 1_000, 10_000] {
        let wan = SimDuration::from_micros(wan_us);
        let baseline = run(Scheme::Baseline, 30_000_000, wan, true, 3);
        let naive = run(Scheme::ProxyNaive, 30_000_000, wan, true, 3);
        reductions.push((baseline - naive) / baseline);
    }
    assert!(
        reductions[0] < reductions[2],
        "savings must grow with latency: {reductions:?}"
    );
}

#[test]
fn claim_no_benefit_when_datacenters_are_adjacent() {
    // Figure 3's left edge: with a 1 µs "long-haul" link there is no gap
    // to exploit; the proxy must not win meaningfully.
    let wan = SimDuration::from_micros(1);
    let baseline = run(Scheme::Baseline, 30_000_000, wan, true, 4);
    let naive = run(Scheme::ProxyNaive, 30_000_000, wan, true, 4);
    assert!(
        naive > baseline * 0.8,
        "no latency gap, no meaningful win: naive {naive} vs baseline {baseline}"
    );
}

#[test]
fn claim_relay_only_proxy_does_not_accelerate() {
    // §3 Insight #2: "a proxy that simply relays packets ... does not
    // accelerate convergence".
    let with_nacks = run(Scheme::ProxyStreamlined, 30_000_000, WAN_1MS, true, 5);
    let relay_only = run(Scheme::ProxyStreamlined, 30_000_000, WAN_1MS, false, 5);
    assert!(
        relay_only > with_nacks * 1.5,
        "early feedback is the mechanism: relay {relay_only} vs nacks {with_nacks}"
    );
}

#[test]
fn claim_feedback_delay_is_what_shrinks() {
    // §3 Insight #1: the proxy moves the congestion point microseconds
    // from the senders. Verify via the loss-signal path: under
    // Streamlined every loss signal is generated in the sending DC.
    let params = TwoDcParams::small_test().with_trim(true);
    let mut sim = Simulator::new(two_dc_leaf_spine(&params), 6);
    let dc0 = sim.topology().hosts_in_dc(0);
    let dc1 = sim.topology().hosts_in_dc(1);
    let spec =
        IncastSpec::new(dc0[..3].to_vec(), dc1[0], 30_000_000).with_proxy(*dc0.last().unwrap());
    let handle = install_incast(&mut sim, &spec, Scheme::ProxyStreamlined);
    sim.run(Some(SimTime::ZERO + SimDuration::from_secs(600)));
    assert!(handle.completion(sim.metrics()).is_some());
    let m = sim.metrics();
    assert!(m.counter(Counter::ProxyNacks) > 0);
    assert_eq!(m.counter(Counter::ReceiverNacks), 0);
}

#[test]
fn claim_determinism_across_runs() {
    // The §4.1 protocol (5 seeded runs, mean/min/max) requires exact
    // repeatability per seed.
    for scheme in Scheme::ALL {
        let a = run(scheme, 10_000_000, WAN_1MS, true, 42);
        let b = run(scheme, 10_000_000, WAN_1MS, true, 42);
        assert_eq!(a, b, "{scheme} must be deterministic");
    }
}

#[test]
fn claim_different_seeds_vary_but_agree_in_direction() {
    let mut baselines = Vec::new();
    let mut naives = Vec::new();
    for seed in 10..13 {
        baselines.push(run(Scheme::Baseline, 30_000_000, WAN_1MS, true, seed));
        naives.push(run(Scheme::ProxyNaive, 30_000_000, WAN_1MS, true, seed));
    }
    for (b, n) in baselines.iter().zip(&naives) {
        assert!(n < b, "proxy wins on every seed: {n} vs {b}");
    }
}
