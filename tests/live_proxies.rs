//! Integration tests for the real tokio proxies: byte transparency,
//! NACK loops, and load-generator interoperation over loopback.

use netproxy::loadgen::{tcp_sink, TcpLoadGen, UdpLoadGen};
use netproxy::wire::{Flags, WireHeader};
use netproxy::{NaiveProxy, StreamlinedUdpProxy};
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpStream, UdpSocket};

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("addr")
}

#[tokio::test]
async fn naive_proxy_is_byte_transparent_under_load() {
    let (sink, counter) = tcp_sink().await.expect("sink");
    let proxy = NaiveProxy::start(loopback(), sink).await.expect("proxy");
    let load = TcpLoadGen {
        rate_bps: 100_000_000,
        duration: Duration::from_millis(500),
        chunk: 8192,
    };
    let stats = load.run(proxy.local_addr()).await.expect("load");
    // Allow the relay to drain.
    tokio::time::sleep(Duration::from_millis(300)).await;
    assert_eq!(
        // ordering: Relaxed — test readback; the sleep above is the sync.
        counter.load(Ordering::Relaxed),
        stats.sent_bytes,
        "every byte must arrive exactly once"
    );
    assert!(proxy.recorder().count() > 0, "latency samples collected");
}

#[tokio::test]
async fn naive_proxy_preserves_content_not_just_counts() {
    // An echo upstream: payload integrity both directions.
    let listener = tokio::net::TcpListener::bind(loopback()).await.unwrap();
    let upstream = listener.local_addr().unwrap();
    tokio::spawn(async move {
        while let Ok((mut s, _)) = listener.accept().await {
            tokio::spawn(async move {
                let (mut r, mut w) = s.split();
                let _ = tokio::io::copy(&mut r, &mut w).await;
            });
        }
    });
    let proxy = NaiveProxy::start(loopback(), upstream)
        .await
        .expect("proxy");
    let client = TcpStream::connect(proxy.local_addr()).await.unwrap();
    let pattern: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let (mut r, mut w) = client.into_split();
    let to_send = pattern.clone();
    let sender = tokio::spawn(async move {
        w.write_all(&to_send).await.unwrap();
        w.shutdown().await.unwrap();
    });
    let mut received = Vec::new();
    r.read_to_end(&mut received).await.unwrap();
    sender.await.unwrap();
    assert_eq!(received, pattern, "payload corrupted in relay");
}

#[tokio::test]
async fn streamlined_nack_loop_closes_end_to_end() {
    // Sender -> (virtual trimming switch in the loadgen) -> proxy:
    // every trimmed datagram must come back to the sender as a NACK with
    // the right sequence number.
    let receiver = UdpSocket::bind(loopback()).await.unwrap();
    let recv_addr = receiver.local_addr().unwrap();
    tokio::spawn(async move {
        let mut buf = [0u8; 2048];
        while receiver.recv_from(&mut buf).await.is_ok() {}
    });
    let proxy = StreamlinedUdpProxy::start(loopback(), recv_addr)
        .await
        .expect("proxy");

    let sender = UdpSocket::bind(loopback()).await.unwrap();
    // Collect NACKs concurrently with the load.
    let nack_sock = std::sync::Arc::new(sender);
    let nack_reader = nack_sock.clone();
    let nacks = tokio::spawn(async move {
        let mut seqs = Vec::new();
        let mut buf = [0u8; 2048];
        while let Ok(Ok((n, _))) =
            tokio::time::timeout(Duration::from_millis(700), nack_reader.recv_from(&mut buf)).await
        {
            if let Ok((h, _)) = WireHeader::decode(&buf[..n]) {
                if h.flags.contains(Flags::NACK) {
                    seqs.push(h.seq);
                }
            }
        }
        seqs
    });

    let load = UdpLoadGen {
        flow: 9,
        rate_bps: 40_000_000,
        duration: Duration::from_millis(400),
        switch_rate_bps: 20_000_000,
        switch_buffer_bytes: 64 * 1024,
    };
    let stats = load
        .run(&nack_sock, proxy.local_addr())
        .await
        .expect("load");
    let nack_seqs = nacks.await.unwrap();

    assert!(stats.trimmed_packets > 0, "load must induce trims");
    assert!(
        nack_seqs.len() as u64 >= stats.trimmed_packets * 9 / 10,
        "nearly every trim must produce a NACK: {} trims, {} NACKs",
        stats.trimmed_packets,
        nack_seqs.len()
    );
    assert_eq!(
        // ordering: Relaxed — test readback after the NACKs were observed.
        proxy.stats().nacks.load(Ordering::Relaxed),
        stats.trimmed_packets,
        "proxy NACKs exactly the trimmed headers"
    );
}

#[tokio::test]
async fn streamlined_forwards_at_load_without_reordering_within_flow() {
    let receiver = UdpSocket::bind(loopback()).await.unwrap();
    let recv_addr = receiver.local_addr().unwrap();
    let seqs = tokio::spawn(async move {
        let mut got = Vec::new();
        let mut buf = [0u8; 2048];
        while let Ok(Ok((n, _))) =
            tokio::time::timeout(Duration::from_millis(700), receiver.recv_from(&mut buf)).await
        {
            if let Ok((h, _)) = WireHeader::decode(&buf[..n]) {
                got.push(h.seq);
            }
        }
        got
    });
    let proxy = StreamlinedUdpProxy::start(loopback(), recv_addr)
        .await
        .expect("proxy");
    let sender = UdpSocket::bind(loopback()).await.unwrap();
    let load = UdpLoadGen {
        flow: 2,
        rate_bps: 20_000_000,
        duration: Duration::from_millis(300),
        switch_rate_bps: 100_000_000, // no trimming
        switch_buffer_bytes: 1_000_000,
    };
    let stats = load.run(&sender, proxy.local_addr()).await.expect("load");
    let got = seqs.await.unwrap();
    assert_eq!(stats.trimmed_packets, 0);
    // A single-threaded UDP relay on loopback preserves order (kernel
    // drops are possible under pressure, so subsequence, not equality).
    assert!(got.windows(2).all(|w| w[0] < w[1]), "reordered: {got:?}");
    assert!(got.len() as u64 > stats.sent_packets / 2, "most arrive");
}
