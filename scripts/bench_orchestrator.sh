#!/usr/bin/env bash
# Control-plane performance snapshot: runs the orchestrator criterion
# suite (select/release churn, renewal sweeps, and clock ticks against a
# sharded plane holding 1024 concurrent leases, healthy and degraded by
# a shard crash) and writes the results — including decisions/sec — to
# BENCH_orchestrator.json so successive PRs can track the trajectory.
#
#   scripts/bench_orchestrator.sh            # full criterion run
#   scripts/bench_orchestrator.sh --offline  # for machines without
#                                            # registry access (offline
#                                            # criterion stub writes
#                                            # estimates.json like the
#                                            # real one)
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
for arg in "$@"; do
  case "$arg" in
    --offline) OFFLINE=(--offline) ;;
    *) echo "unknown argument: $arg (only --offline is supported)" >&2; exit 2 ;;
  esac
done

OUT=BENCH_orchestrator.json

echo "== cargo bench (orchestrator suite)"
cargo bench "${OFFLINE[@]}" -p bench --bench orchestrator

echo "== writing $OUT"
GIT_REV=$(git describe --always --dirty 2>/dev/null || echo unknown)
python3 - "$OUT" "$GIT_REV" <<'PY'
import json, os, sys

out, rev = sys.argv[1], sys.argv[2]
summary = {
    "suite": "orchestrator",
    "git_rev": rev,
    "concurrent_incasts": 1024,
    "criterion": {},
    "decisions_per_sec": {},
}
# Elements measured per iteration, matching the Throughput declarations
# in crates/bench/benches/orchestrator.rs.
ELEMENTS = {
    "orchestrator_decisions": 2,     # release + replacement select
    "orchestrator_renew": 1024,      # one full renewal sweep
    "orchestrator_advance": 1,       # one clock tick
}
# Real criterion resolves the workspace target dir; the offline stub
# writes relative to the bench binary's CWD (the package dir) — scan both.
roots = [r for r in ("target/criterion", "crates/bench/target/criterion")
         if os.path.isdir(r)]
walk = [(root, entry) for root in roots for entry in os.walk(root)]
for root, (dirpath, _dirs, files) in walk:
    if "estimates.json" not in files or not dirpath.endswith(os.sep + "new"):
        continue
    bench = os.path.relpath(os.path.dirname(dirpath), root).replace(os.sep, "/")
    group = bench.split("/")[0]
    if group not in ELEMENTS:
        continue  # another suite's results sharing target/criterion
    with open(os.path.join(dirpath, "estimates.json")) as f:
        est = json.load(f)
    mean_ns = est["mean"]["point_estimate"]
    summary["criterion"][bench] = {
        "mean_ns": mean_ns,
        "std_dev_ns": est["std_dev"]["point_estimate"],
    }
    if mean_ns > 0:
        summary["decisions_per_sec"][bench] = round(
            ELEMENTS[group] * 1e9 / mean_ns
        )
with open(out, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
for bench, rate in sorted(summary["decisions_per_sec"].items()):
    print(f"  {bench}: {rate:,} decisions/sec")
PY
