#!/usr/bin/env bash
# netproxy datapath snapshot: runs the netproxy criterion suite (zero-copy
# parse / in-place NACK rewrite / zero-alloc staging CPU paths), then the
# netproxy_load throughput harness — the single-datagram baseline at its
# zero-loss ceiling vs. the batched sharded relay at high load, a shard
# scaling curve, and the naive/streamlined/detecting comparison under
# trimming (the live-socket rerun of the paper's Figs 4–5 gap) — and
# writes everything to BENCH_netproxy.json. scripts/perfgate.sh holds
# fresh criterion medians against this file.
#
# The batched/single speedup is asserted >= NETPROXY_MIN_SPEEDUP
# (default 5, the repro target from the PR acceptance criteria); set
# NETPROXY_MIN_SPEEDUP=0 to record without gating on a loaded host.
#
#   scripts/bench_netproxy.sh            # criterion + loadgen sweep
#   scripts/bench_netproxy.sh --offline  # offline criterion stub, same sweep
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
for arg in "$@"; do
  case "$arg" in
    --offline) OFFLINE=(--offline) ;;
    *) echo "unknown argument: $arg (only --offline is supported)" >&2; exit 2 ;;
  esac
done

OUT=BENCH_netproxy.json
MIN_SPEEDUP="${NETPROXY_MIN_SPEEDUP:-5}"

echo "== cargo bench (netproxy suite)"
cargo bench "${OFFLINE[@]}" -q -p bench --bench netproxy

echo "== building netproxy_load"
cargo build --release "${OFFLINE[@]}" -q -p bench --bin netproxy_load
BIN=target/release/netproxy_load

# Offered rates: the single-datagram relay (one recvfrom/sendto per
# packet) holds zero loss up to ~18k pps on the reference box and
# saturates just past it; the batched relay holds zero loss at 130k.
# Driving each architecture at its own ceiling compares sustained
# zero-loss throughput rather than drop behavior.
SINGLE_RATE="${NETPROXY_SINGLE_RATE:-18000}"
BATCHED_RATE="${NETPROXY_BATCHED_RATE:-130000}"
DURATION_MS=800
RUNS=3

best_run() { # $* = netproxy_load args; prints the run with max relayed pps
  local best_line="" best_rate=0 line rate
  for _ in $(seq 1 "$RUNS"); do
    line=$("$BIN" "$@" --duration-ms "$DURATION_MS" --json)
    rate=$(printf '%s' "$line" | python3 -c '
import json, sys
r = json.load(sys.stdin)
print(int(r["relay_forwarded"] * r["achieved_pps"] / max(r["sent"], 1)))')
    if [ "$rate" -gt "$best_rate" ]; then best_rate=$rate; best_line=$line; fi
  done
  printf '%s' "$best_line"
}

echo "== single-datagram baseline at its zero-loss ceiling (${SINGLE_RATE} pps offered, best of $RUNS)"
SINGLE=$(best_run --variant single --threads 1 --rate "$SINGLE_RATE")
echo "$SINGLE"

echo "== batched sharded relay at high load (${BATCHED_RATE} pps offered, best of $RUNS)"
BATCHED=$(best_run --variant streamlined --layer auto --threads 1 --shards 1 --rate "$BATCHED_RATE")
echo "$BATCHED"

echo "== shard scaling curve (${BATCHED_RATE} pps offered)"
SCALING=$(mktemp)
CORES=$(nproc 2>/dev/null || echo 1)
SHARD_POINTS="1 2"
if [ "$CORES" -ge 4 ]; then SHARD_POINTS="1 2 4"; fi
for s in $SHARD_POINTS; do
  echo "-- shards=$s"
  best_run --variant streamlined --layer auto --threads 1 --shards "$s" \
    --rate "$BATCHED_RATE" | tee -a "$SCALING"
  echo >> "$SCALING"
done

echo "== proxy comparison under trimming (Figs 4–5 rerun: 60k pps offered, 20% trimmed)"
COMPARE=$(mktemp)
for v in naive streamlined detecting; do
  echo "-- variant=$v"
  best_run --variant "$v" --layer auto --threads 1 --shards 1 \
    --rate 60000 --trim 0.2 | tee -a "$COMPARE"
  echo >> "$COMPARE"
done

echo "== writing $OUT"
GIT_REV=$(git describe --always --dirty 2>/dev/null || echo unknown)
python3 - "$OUT" "$GIT_REV" "$CORES" "$SINGLE" "$BATCHED" "$SCALING" "$COMPARE" \
  "$MIN_SPEEDUP" <<'PY'
import json, os, sys

(out, rev, cores, single_line, batched_line, scaling_file, compare_file,
 min_speedup) = sys.argv[1:9]

def relayed_pps(r):
    return round(r["relay_forwarded"] * r["achieved_pps"] / max(r["sent"], 1))

def trim_run(r):
    keep = ("variant", "layer", "threads", "flows", "shards", "rate_pps",
            "trim", "payload", "sent", "delivered", "trimmed_sent",
            "nacks_received", "achieved_pps", "sink_received",
            "sink_trimmed", "p50_us", "p99_us", "p999_us",
            "relay_forwarded", "relay_nacks", "relay_dropped",
            "relay_send_errors", "relay_max_batch")
    slim = {k: r[k] for k in keep if k in r}
    slim["relayed_pps"] = relayed_pps(r)
    return slim

single = json.loads(single_line)
batched = json.loads(batched_line)
speedup = relayed_pps(batched) / max(relayed_pps(single), 1)

def load_lines(path):
    with open(path) as f:
        return [json.loads(line) for line in f if line.strip()]

summary = {
    "suite": "netproxy",
    "git_rev": rev,
    "cores": int(cores),
    "baseline_gap": {
        "single_datagram": trim_run(single),
        "batched_sharded": trim_run(batched),
        "speedup_relayed": round(speedup, 2),
        "note": "each architecture driven at its zero-loss ceiling; "
                "relayed_pps = relay_forwarded / elapsed",
    },
    "shard_scaling": [trim_run(r) for r in load_lines(scaling_file)],
    "proxy_comparison": {r["variant"]: trim_run(r)
                         for r in load_lines(compare_file)},
    "criterion": {},
}
roots = [r for r in ("target/criterion", "crates/bench/target/criterion")
         if os.path.isdir(r)]
for root in roots:
  for dirpath, _dirs, files in os.walk(root):
    if "estimates.json" in files and dirpath.endswith(os.sep + "new"):
        bench = os.path.relpath(os.path.dirname(dirpath), root).replace(os.sep, "/")
        if not bench.startswith("netproxy_"):
            continue
        with open(os.path.join(dirpath, "estimates.json")) as f:
            est = json.load(f)
        summary["criterion"][bench] = {
            "mean_ns": est["mean"]["point_estimate"],
            "std_dev_ns": est["std_dev"]["point_estimate"],
        }
with open(out, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}: single {relayed_pps(single)} pkts/sec, "
      f"batched {relayed_pps(batched)} pkts/sec ({speedup:.1f}x)")
if float(min_speedup) > 0 and speedup < float(min_speedup):
    print(f"bench_netproxy: speedup {speedup:.1f}x below the {min_speedup}x "
          "target (set NETPROXY_MIN_SPEEDUP=0 to record anyway)")
    sys.exit(1)
PY
rm -f "$SCALING" "$COMPARE"
