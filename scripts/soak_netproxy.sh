#!/usr/bin/env bash
# Chaos soak campaign for the netproxy datapath: loadgen x fault-injected
# sharded relay with a mid-run crash and wedge, on every available socket
# layer, judged by the netproxy_soak packet-accounting ledger (zero
# unexplained loss; see DESIGN.md §15).
#
#   scripts/soak_netproxy.sh                      # 60 s per layer
#   SOAK_DURATION_S=20 scripts/soak_netproxy.sh   # CI-sized
#
# JSON verdicts land in target/soak/ (one file per layer); the script
# exits nonzero if any layer's verdict is "fail".
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${SOAK_DURATION_S:-60}"
SEED="${SOAK_SEED:-1}"
OUTDIR="target/soak"
mkdir -p "$OUTDIR"

LAYERS=(fallback)
if [[ "$(uname -s)" == "Linux" ]]; then
  LAYERS=(mmsg fallback)
fi

cargo build --release -q -p bench --bin netproxy_soak

FAILED=0
for layer in "${LAYERS[@]}"; do
  out="$OUTDIR/netproxy_soak_${layer}.json"
  echo "== netproxy_soak: ${DURATION}s on ${layer} (faults + crash + wedge + overload)"
  if ./target/release/netproxy_soak \
      --duration-s "$DURATION" --seed "$SEED" --layer "$layer" \
      --wedge --overload-pps 15000 --json | tee "$out"; then
    echo "   verdict: pass (${out})"
  else
    echo "   verdict: FAIL (${out})" >&2
    FAILED=1
  fi
done

exit "$FAILED"
