#!/usr/bin/env bash
# Performance snapshot: runs the simulator criterion suite plus a
# reference sweep (fig2_left --quick, serial vs all cores) and writes the
# results to BENCH_simulator.json so successive PRs can track the perf
# trajectory.
#
#   scripts/bench.sh            # full criterion run + reference sweep
#   scripts/bench.sh --offline  # for machines without registry access
#                               # (offline criterion stub: measures medians
#                               # and writes estimates.json like the real one)
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
for arg in "$@"; do
  case "$arg" in
    --offline) OFFLINE=(--offline) ;;
    *) echo "unknown argument: $arg (only --offline is supported)" >&2; exit 2 ;;
  esac
done

OUT=BENCH_simulator.json

echo "== cargo bench (simulator suite)"
cargo bench "${OFFLINE[@]}" -p bench --bench simulator

echo "== reference sweep wall-clock (fig2_left --quick)"
cargo build --release "${OFFLINE[@]}" -q -p bench --bin fig2_left
BIN=target/release/fig2_left

time_run() { # $1 = jobs; prints fractional seconds (best of two runs)
  local best="" secs
  for _ in 1 2; do
    local start end
    start=$(date +%s%N)
    "$BIN" --quick --jobs "$1" >/dev/null
    end=$(date +%s%N)
    secs=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", (e - s) / 1e9 }')
    if [ -z "$best" ] || awk -v a="$secs" -v b="$best" 'BEGIN { exit !(a < b) }'; then
      best="$secs"
    fi
  done
  printf '%s' "$best"
}

CORES=$(nproc 2>/dev/null || echo 1)
SERIAL=$(time_run 1)
PARALLEL=$(time_run 0) # 0 = auto: all available cores
echo "serial ${SERIAL}s, parallel ${PARALLEL}s (${CORES} cores)"

echo "== writing $OUT"
GIT_REV=$(git describe --always --dirty 2>/dev/null || echo unknown)
python3 - "$OUT" "$SERIAL" "$PARALLEL" "$GIT_REV" "$CORES" <<'PY'
import json, os, sys

out, serial, parallel, rev, cores = (
    sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), sys.argv[4],
    int(sys.argv[5]),
)
# On a single-core machine the sweep runner takes its serial shortcut for
# jobs=0 too, so both timings exercise the identical code path and the
# "speedup" is definitionally 1.0 — report that instead of timing noise.
speedup = None
if parallel:
    speedup = 1.0 if cores == 1 else round(serial / parallel, 2)
summary = {
    "suite": "simulator",
    "git_rev": rev,
    "cores": cores,
    "reference_sweep": {
        "binary": "fig2_left --quick",
        "serial_secs": serial,
        "parallel_secs": parallel,
        "speedup": speedup,
    },
    "criterion": {},
}
# Harvest criterion point estimates; both real criterion and the offline
# stub write mean/std_dev point estimates under target/criterion.
root = "target/criterion"
walk = os.walk(root) if os.path.isdir(root) else []
for dirpath, _dirs, files in walk:
    if "estimates.json" in files and dirpath.endswith(os.sep + "new"):
        bench = os.path.relpath(os.path.dirname(dirpath), root).replace(os.sep, "/")
        with open(os.path.join(dirpath, "estimates.json")) as f:
            est = json.load(f)
        summary["criterion"][bench] = {
            "mean_ns": est["mean"]["point_estimate"],
            "std_dev_ns": est["std_dev"]["point_estimate"],
        }
with open(out, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
PY
