#!/usr/bin/env bash
# Performance snapshot: runs the simulator criterion suite plus a
# reference sweep (fig2_left --quick, serial vs all cores) and writes the
# results to BENCH_simulator.json so successive PRs can track the perf
# trajectory.
#
#   scripts/bench.sh            # full criterion run + reference sweep
#   scripts/bench.sh --offline  # for machines without registry access
#                               # (criterion stub: sweep timings only)
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
for arg in "$@"; do
  case "$arg" in
    --offline) OFFLINE=(--offline) ;;
    *) echo "unknown argument: $arg (only --offline is supported)" >&2; exit 2 ;;
  esac
done

OUT=BENCH_simulator.json

echo "== cargo bench (simulator suite)"
cargo bench "${OFFLINE[@]}" -p bench --bench simulator

echo "== reference sweep wall-clock (fig2_left --quick)"
cargo build --release "${OFFLINE[@]}" -q -p bench --bin fig2_left
BIN=target/release/fig2_left

time_run() { # $1 = jobs; prints fractional seconds
  local start end
  start=$(date +%s%N)
  "$BIN" --quick --jobs "$1" >/dev/null
  end=$(date +%s%N)
  awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", (e - s) / 1e9 }'
}

SERIAL=$(time_run 1)
PARALLEL=$(time_run 0) # 0 = auto: all available cores
echo "serial ${SERIAL}s, parallel ${PARALLEL}s"

echo "== writing $OUT"
GIT_REV=$(git describe --always --dirty 2>/dev/null || echo unknown)
python3 - "$OUT" "$SERIAL" "$PARALLEL" "$GIT_REV" <<'PY'
import json, os, sys

out, serial, parallel, rev = (
    sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), sys.argv[4],
)
summary = {
    "suite": "simulator",
    "git_rev": rev,
    "reference_sweep": {
        "binary": "fig2_left --quick",
        "serial_secs": serial,
        "parallel_secs": parallel,
        "speedup": round(serial / parallel, 2) if parallel else None,
    },
    "criterion": {},
}
# Harvest criterion point estimates when a real (non-stub) criterion run
# produced them; the offline stub doesn't measure anything.
root = "target/criterion"
walk = os.walk(root) if os.path.isdir(root) else []
for dirpath, _dirs, files in walk:
    if "estimates.json" in files and dirpath.endswith(os.sep + "new"):
        bench = os.path.relpath(os.path.dirname(dirpath), root).replace(os.sep, "/")
        with open(os.path.join(dirpath, "estimates.json")) as f:
            est = json.load(f)
        summary["criterion"][bench] = {
            "mean_ns": est["mean"]["point_estimate"],
            "std_dev_ns": est["std_dev"]["point_estimate"],
        }
with open(out, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
PY
