#!/usr/bin/env bash
# Performance snapshot: runs the simulator criterion suite plus a
# reference sweep (fig2_left --quick, serial vs all cores) and writes the
# results to BENCH_simulator.json, then runs the fleet criterion suite
# plus a per-core-count sweep of the fleet binary and writes
# BENCH_fleet.json, so successive PRs can track the perf trajectory.
# scripts/perfgate.sh holds fresh criterion medians against these files.
#
#   scripts/bench.sh            # full criterion run + reference sweep
#   scripts/bench.sh --offline  # for machines without registry access
#                               # (offline criterion stub: measures medians
#                               # and writes estimates.json like the real one)
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
for arg in "$@"; do
  case "$arg" in
    --offline) OFFLINE=(--offline) ;;
    *) echo "unknown argument: $arg (only --offline is supported)" >&2; exit 2 ;;
  esac
done

OUT=BENCH_simulator.json

echo "== cargo bench (simulator suite)"
cargo bench "${OFFLINE[@]}" -p bench --bench simulator

echo "== reference sweep wall-clock (fig2_left --quick)"
cargo build --release "${OFFLINE[@]}" -q -p bench --bin fig2_left
BIN=target/release/fig2_left

time_run() { # $1 = jobs; prints fractional seconds (best of two runs)
  local best="" secs
  for _ in 1 2; do
    local start end
    start=$(date +%s%N)
    "$BIN" --quick --jobs "$1" >/dev/null
    end=$(date +%s%N)
    secs=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", (e - s) / 1e9 }')
    if [ -z "$best" ] || awk -v a="$secs" -v b="$best" 'BEGIN { exit !(a < b) }'; then
      best="$secs"
    fi
  done
  printf '%s' "$best"
}

CORES=$(nproc 2>/dev/null || echo 1)
SERIAL=$(time_run 1)
PARALLEL=$(time_run 0) # 0 = auto: all available cores
echo "serial ${SERIAL}s, parallel ${PARALLEL}s (${CORES} cores)"

echo "== writing $OUT"
GIT_REV=$(git describe --always --dirty 2>/dev/null || echo unknown)
python3 - "$OUT" "$SERIAL" "$PARALLEL" "$GIT_REV" "$CORES" <<'PY'
import json, os, sys

out, serial, parallel, rev, cores = (
    sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), sys.argv[4],
    int(sys.argv[5]),
)
# On a single-core machine the sweep runner takes its serial shortcut for
# jobs=0 too, so both timings exercise the identical code path and the
# "speedup" is definitionally 1.0 — report that instead of timing noise.
speedup = None
if parallel:
    speedup = 1.0 if cores == 1 else round(serial / parallel, 2)
summary = {
    "suite": "simulator",
    "git_rev": rev,
    "cores": cores,
    "reference_sweep": {
        "binary": "fig2_left --quick",
        "serial_secs": serial,
        "parallel_secs": parallel,
        "speedup": speedup,
    },
    "criterion": {},
}
# Harvest criterion point estimates; both real criterion and the offline
# stub write mean/std_dev point estimates under <root>/criterion (the
# stub resolves the path against the bench process cwd — the package
# root — so look in both places).
roots = [r for r in ("target/criterion", "crates/bench/target/criterion")
         if os.path.isdir(r)]
for root in roots:
  for dirpath, _dirs, files in os.walk(root):
    if "estimates.json" in files and dirpath.endswith(os.sep + "new"):
        bench = os.path.relpath(os.path.dirname(dirpath), root).replace(os.sep, "/")
        # target/criterion accumulates every suite ever run; entries
        # belonging to suites with their own baseline file would be
        # double-gated (and go stale) here.
        if bench.startswith(("fleet/", "netproxy_", "orchestrator")):
            continue
        with open(os.path.join(dirpath, "estimates.json")) as f:
            est = json.load(f)
        summary["criterion"][bench] = {
            "mean_ns": est["mean"]["point_estimate"],
            "std_dev_ns": est["std_dev"]["point_estimate"],
        }
with open(out, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
PY

FLEET_OUT=BENCH_fleet.json

echo "== cargo bench (fleet suite)"
cargo bench "${OFFLINE[@]}" -p bench --bench fleet

echo "== fleet per-core-count sweep"
cargo build --release "${OFFLINE[@]}" -q -p bench --bin fleet
FLEET_BIN=target/release/fleet
SWEEP=$(mktemp)
# Sweep worker threads 1..=cores; on a single-core machine also take a
# 2-thread point so the windowed multi-thread path gets exercised (and
# its oversubscription cost recorded) even here.
THREADS=$(seq 1 "$CORES")
if [ "$CORES" -eq 1 ]; then THREADS="1 2"; fi
for t in $THREADS; do
  echo "-- threads=$t (best of 3)"
  BEST_LINE=""
  BEST_RATE=0
  for _ in 1 2 3; do
    LINE=$("$FLEET_BIN" --threads "$t" --json)
    RATE=$(printf '%s' "$LINE" | python3 -c 'import json,sys; print(int(json.load(sys.stdin)["effective_events_per_sec"]))')
    if [ "$RATE" -gt "$BEST_RATE" ]; then BEST_RATE=$RATE; BEST_LINE=$LINE; fi
  done
  echo "$BEST_LINE" | tee -a "$SWEEP"
done

echo "== writing $FLEET_OUT"
python3 - "$FLEET_OUT" "$GIT_REV" "$CORES" "$SWEEP" <<'PY'
import json, os, sys

out, rev, cores, sweep_file = sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4]
with open(sweep_file) as f:
    runs = [json.loads(line) for line in f if line.strip()]
# Scenario parameters are identical across the sweep; lift them out once.
scenario_keys = (
    "pods", "shards", "degree", "background_per_dc", "mb_per_sender",
    "fidelity", "seed", "flows", "effective_events",
)
summary = {
    "suite": "fleet",
    "git_rev": rev,
    "cores": cores,
    "scenario": {k: runs[0][k] for k in scenario_keys},
    "sweep": [
        {
            "threads": r["threads"],
            "wall_secs": r["wall_secs"],
            "events_per_sec": r["events_per_sec"],
            "effective_events_per_sec": r["effective_events_per_sec"],
        }
        for r in runs
    ],
    "criterion": {},
}
roots = [r for r in ("target/criterion/fleet", "crates/bench/target/criterion/fleet")
         if os.path.isdir(r)]
for root in roots:
  for dirpath, _dirs, files in os.walk(root):
    if "estimates.json" in files and dirpath.endswith(os.sep + "new"):
        bench = "fleet/" + os.path.relpath(os.path.dirname(dirpath), root).replace(os.sep, "/")
        with open(os.path.join(dirpath, "estimates.json")) as f:
            est = json.load(f)
        summary["criterion"][bench] = {
            "mean_ns": est["mean"]["point_estimate"],
            "std_dev_ns": est["std_dev"]["point_estimate"],
        }
best = max(r["effective_events_per_sec"] for r in runs)
summary["scenario"]["best_effective_events_per_sec"] = best
with open(out, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out} (best {best/1e6:.2f}M effective events/sec)")
PY
rm -f "$SWEEP"
