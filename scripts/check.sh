#!/usr/bin/env bash
# Everything CI runs, in the order it runs it. Fails fast.
#
#   scripts/check.sh            # format check + clippy + tests
#   scripts/check.sh --offline  # same, for machines without registry access
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
for arg in "$@"; do
  case "$arg" in
    --offline) OFFLINE=(--offline) ;;
    *) echo "unknown argument: $arg (only --offline is supported)" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --all-targets -D warnings"
cargo clippy --workspace --all-targets "${OFFLINE[@]}" -- -D warnings

echo "== simlint (determinism + unsafety/ordering/FFI audit rules, machine-readable)"
SIMLINT_JSON="$(cargo run "${OFFLINE[@]}" -q -p simlint -- --json)"
if ! grep -q '"violation_count": 0' <<<"$SIMLINT_JSON"; then
  echo "$SIMLINT_JSON"
  echo "simlint: violations found (human-readable rerun follows)" >&2
  cargo run "${OFFLINE[@]}" -q -p simlint || true
  exit 1
fi
# The allow inventory stays visible in CI logs even on success.
cargo run "${OFFLINE[@]}" -q -p simlint

echo "== cargo bench --no-run (bench code compiles)"
cargo bench --workspace "${OFFLINE[@]}" --no-run

echo "== determinism regression (parallel sweep == serial sweep)"
cargo test -p bench "${OFFLINE[@]}" --test sweep_determinism -q

echo "== timer-slot regression (bit-identical goldens, zero stale timer pops)"
cargo test "${OFFLINE[@]}" --test timer_identity -q

echo "== cargo test"
cargo test --workspace "${OFFLINE[@]}" -q

echo "== loom (bounded-exhaustive interleaving models of the lock-free shard datapath)"
RUSTFLAGS="--cfg loom" cargo test "${OFFLINE[@]}" -p netproxy --test loom -q

echo "== netproxy loadgen smoke (every variant x every socket layer, zero unexplained loss)"
cargo run --release "${OFFLINE[@]}" -q -p bench --bin netproxy_load -- --smoke

echo "== netproxy chaos soak (bounded: 5 s, faults + mid-run crash + overload ladder, ledger-verified)"
cargo run --release "${OFFLINE[@]}" -q -p bench --bin netproxy_soak -- \
  --duration-s 5 --rate 30000 --overload-pps 9000 --json

echo "== perfgate (criterion medians vs committed BENCH baselines, >10% fails; PERFGATE_SKIP=1 to skip)"
scripts/perfgate.sh "${OFFLINE[@]}"

echo "== chaos fuzz (bounded campaign, fixed seed range; repros land in target/fuzz-repros)"
cargo run --release "${OFFLINE[@]}" -q -p bench --bin fuzz -- --count 500 --start-seed 1

echo "== control-plane fuzz (shard crashes, stale placements, gossip slower than lease expiry)"
cargo run --release "${OFFLINE[@]}" -q -p bench --bin fuzz -- --control-plane --count 500 --start-seed 0

echo "== chaos repro replay (committed shrunk repros, both families, determinism + expectation)"
for repro in crates/bench/tests/repros/*.json; do
  cargo run --release "${OFFLINE[@]}" -q -p bench --bin fuzz -- --replay "$repro"
done

echo "All checks passed."
