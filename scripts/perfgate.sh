#!/usr/bin/env bash
# Performance gate: re-measures the criterion suites and holds each
# benchmark's fresh median against the committed BENCH_*.json baseline.
# A benchmark more than 10% slower than its baseline fails the gate; new
# benchmarks (no baseline entry) and missing baseline files are noted
# but never fail. Refresh baselines with scripts/bench.sh after an
# intentional perf change.
#
#   scripts/perfgate.sh            # run gate (simulator + fleet + netproxy)
#   scripts/perfgate.sh --offline  # offline criterion stub, same gate
#   PERFGATE_SKIP=1 scripts/perfgate.sh   # skip (e.g. loaded CI hosts)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${PERFGATE_SKIP:-0}" = "1" ]; then
  echo "perfgate: skipped (PERFGATE_SKIP=1)"
  exit 0
fi

OFFLINE=()
for arg in "$@"; do
  case "$arg" in
    --offline) OFFLINE=(--offline) ;;
    *) echo "unknown argument: $arg (only --offline is supported)" >&2; exit 2 ;;
  esac
done

# Shared-runner timings are noisy; the gate compares point estimates, so
# keep the threshold generous enough to survive scheduler jitter while
# still catching real regressions.
THRESHOLD="${PERFGATE_THRESHOLD:-0.10}"

declare -A BASELINES=(
  [simulator]=BENCH_simulator.json
  [fleet]=BENCH_fleet.json
  [orchestrator]=BENCH_orchestrator.json
  [netproxy]=BENCH_netproxy.json
)

FAIL=0
for suite in simulator fleet orchestrator netproxy; do
  baseline="${BASELINES[$suite]}"
  if [ ! -f "$baseline" ]; then
    echo "perfgate: no baseline $baseline — skipping $suite suite"
    continue
  fi
  echo "== perfgate: measuring $suite suite (best of 2)"
  # Two measurement passes; the comparison takes the per-benchmark
  # minimum, so a thermal-throttle window during one pass can't fail
  # the gate on its own.
  cargo bench "${OFFLINE[@]}" -q -p bench --bench "$suite"
  SNAP=$(mktemp -d)
  for d in target/criterion crates/bench/target/criterion; do
    [ -d "$d" ] && cp -r "$d" "$SNAP/$(echo "$d" | tr / _)"
  done
  cargo bench "${OFFLINE[@]}" -q -p bench --bench "$suite"
  python3 - "$suite" "$baseline" "$THRESHOLD" "$SNAP" <<'PY' || FAIL=1
import json, os, sys

suite, baseline_path, threshold, snap = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4])
with open(baseline_path) as f:
    baseline = json.load(f).get("criterion", {})
if not baseline:
    print(f"perfgate: {baseline_path} has no criterion entries — nothing to gate")
    sys.exit(0)

fresh = {}
# Real criterion writes under target/criterion; the offline stub resolves
# the same relative path against the bench process cwd (the package root).
# The snapshot dir holds the first measurement pass; keep the per-bench
# minimum of the two passes.
roots = [r for r in ("target/criterion", "crates/bench/target/criterion")
         if os.path.isdir(r)]
roots += [os.path.join(snap, d) for d in (os.listdir(snap) if os.path.isdir(snap) else [])]
for root in roots:
  for dirpath, _dirs, files in os.walk(root):
    if "estimates.json" in files and dirpath.endswith(os.sep + "new"):
        bench = os.path.relpath(os.path.dirname(dirpath), root).replace(os.sep, "/")
        with open(os.path.join(dirpath, "estimates.json")) as f:
            mean = json.load(f)["mean"]["point_estimate"]
        fresh[bench] = min(fresh.get(bench, mean), mean)

failures = []
for name, base in sorted(baseline.items()):
    if name not in fresh:
        print(f"  {name}: baseline present but not measured this run — skipped")
        continue
    base_ns, new_ns = base["mean_ns"], fresh[name]
    ratio = new_ns / base_ns if base_ns else float("inf")
    verdict = "ok"
    if ratio > 1.0 + threshold:
        verdict = "REGRESSION"
        failures.append(name)
    print(f"  {name}: {base_ns:.0f} ns -> {new_ns:.0f} ns ({ratio - 1.0:+.1%} vs baseline) {verdict}")
# Only report unbaselined benchmarks belonging to this suite's criterion
# groups — target/criterion accumulates every suite ever run.
groups = {name.split("/", 1)[0] for name in baseline}
for name in sorted(set(fresh) - set(baseline)):
    if name.split("/", 1)[0] in groups:
        print(f"  {name}: new benchmark, no baseline — run scripts/bench.sh to record one")

if failures:
    print(f"perfgate: {len(failures)} regression(s) past {threshold:.0%} in the {suite} suite")
    sys.exit(1)
print(f"perfgate: {suite} suite within {threshold:.0%} of {baseline_path}")
PY
  rm -rf "$SNAP"
done

if [ "$FAIL" -ne 0 ]; then
  echo "perfgate: FAILED — see regressions above (refresh baselines with scripts/bench.sh if intentional)"
  exit 1
fi
echo "perfgate: all suites within threshold."
