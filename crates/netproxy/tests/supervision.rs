//! Integration tests for shard supervision, recovery, and the overload
//! shed ladder — socket-driven, so skipped under Miri (no socket
//! shims). These exercise the real `SO_REUSEPORT` restart path on
//! Linux and the portable single-shard rebind path elsewhere.

#![cfg(not(miri))]

use netproxy::shard::{OverloadConfig, RelayConfig, ShardedRelay};
use netproxy::supervisor::SupervisorConfig;
use netproxy::wire::WireHeader;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("addr")
}

/// A relay with fast supervision, suitable for short tests.
fn supervised_config(receiver: SocketAddr) -> RelayConfig {
    RelayConfig {
        shards: 2,
        supervisor: SupervisorConfig {
            poll: Duration::from_millis(5),
            wedge_timeout: Duration::from_millis(150),
            ..SupervisorConfig::default()
        },
        ..RelayConfig::streamlined(receiver)
    }
}

/// Polls `cond` for up to `secs` seconds.
fn wait_for(secs: u64, what: &str, cond: impl Fn() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(secs),
            "not reached in time: {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Sends data datagrams for `flow` at the relay until the receiver sees
/// one (restart windows can eat a few), then returns.
fn push_until_forwarded(
    sender: &UdpSocket,
    receiver: &UdpSocket,
    relay_addr: SocketAddr,
    flow: u64,
) {
    receiver
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut buf = [0u8; 2048];
    let start = Instant::now();
    let mut seq = 0u64;
    loop {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "flow {flow} never forwarded"
        );
        sender
            .send_to(&WireHeader::data(flow, seq, 4).encode(&[7; 4]), relay_addr)
            .unwrap();
        seq += 1;
        if receiver.recv_from(&mut buf).is_ok() {
            return;
        }
    }
}

#[test]
fn crashed_shard_is_restarted_and_stats_never_regress() {
    let receiver = UdpSocket::bind(loopback()).unwrap();
    let relay = ShardedRelay::start(
        loopback(),
        supervised_config(receiver.local_addr().unwrap()),
    )
    .expect("relay starts");
    let sender = UdpSocket::bind(loopback()).unwrap();

    push_until_forwarded(&sender, &receiver, relay.local_addr(), 1);
    let before = relay.stats();
    assert!(before.forwarded >= 1);

    // Kill every shard: whichever one the kernel steers our flow to is
    // certainly among them.
    for shard in 0..relay.shards() {
        relay.inject_crash(shard);
    }
    wait_for(5, "all shards restarted", || {
        (0..relay.shards()).all(|s| relay.shard_generation(s) >= 1)
    });
    let sup = relay.supervisor_stats();
    assert!(
        sup.restarts >= relay.shards() as u64,
        "every crash restarted"
    );
    assert!(sup.crashes_detected >= relay.shards() as u64);
    assert_eq!(sup.gave_up, 0);

    // The satellite claim: counters from a crashed-then-restarted shard
    // are monotone — the replacement adopts the same atomics, so the
    // merged snapshot never regresses.
    let after_restart = relay.stats();
    assert!(
        after_restart.forwarded >= before.forwarded,
        "no counter regression"
    );
    assert!(after_restart.received >= before.received);

    // And the relay still relays: same flow, post-restart.
    push_until_forwarded(&sender, &receiver, relay.local_addr(), 1);
    let after_traffic = relay.stats();
    assert!(after_traffic.forwarded > after_restart.forwarded);

    // Heartbeats advance on the replacement workers.
    let hb: Vec<u64> = (0..relay.shards())
        .map(|s| relay.shard_heartbeat(s))
        .collect();
    wait_for(2, "replacement heartbeats advance", || {
        (0..relay.shards()).any(|s| relay.shard_heartbeat(s) > hb[s])
    });
}

#[test]
fn wedged_shard_is_detected_and_replaced() {
    let receiver = UdpSocket::bind(loopback()).unwrap();
    let relay = ShardedRelay::start(
        loopback(),
        supervised_config(receiver.local_addr().unwrap()),
    )
    .expect("relay starts");

    relay.inject_wedge(0);
    // The wedge only trips once the worker consumes the chaos flag, then
    // the supervisor needs wedge_timeout of heartbeat silence.
    wait_for(5, "wedge detected and superseded", || {
        relay.shard_generation(0) >= 1
    });
    let sup = relay.supervisor_stats();
    assert!(sup.wedges_detected >= 1, "wedge classified as wedge");
    assert_eq!(sup.gave_up, 0);

    // The replacement serves traffic again (on Linux the wedged orphan's
    // socket may still soak up part of the steering until it exits; the
    // push helper retries through that window).
    let sender = UdpSocket::bind(loopback()).unwrap();
    push_until_forwarded(&sender, &receiver, relay.local_addr(), 3);
}

#[test]
fn directory_routed_feedback_survives_restart() {
    let receiver = UdpSocket::bind(loopback()).unwrap();
    let relay = ShardedRelay::start(
        loopback(),
        supervised_config(receiver.local_addr().unwrap()),
    )
    .expect("relay starts");
    let sender = UdpSocket::bind(loopback()).unwrap();

    // Teach the relay flow 9's sender, then crash every shard: the
    // private tables die with the workers, the shared directory does not.
    push_until_forwarded(&sender, &receiver, relay.local_addr(), 9);
    wait_for(2, "flow published to directory", || {
        relay.directory().lookup(9).is_some()
    });
    for shard in 0..relay.shards() {
        relay.inject_crash(shard);
    }
    wait_for(5, "all shards restarted", || {
        (0..relay.shards()).all(|s| relay.shard_generation(s) >= 1)
    });

    // Feedback for the pre-crash flow must still route to its sender —
    // via the directory, since no replacement has seen flow 9's data.
    sender
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut buf = [0u8; 2048];
    let start = Instant::now();
    loop {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "feedback never reversed after restart"
        );
        receiver
            .send_to(&WireHeader::ack(9, 0).encode(&[]), relay.local_addr())
            .unwrap();
        if let Ok((n, from)) = sender.recv_from(&mut buf) {
            assert_eq!(from, relay.local_addr());
            let (h, _) = WireHeader::decode(&buf[..n]).expect("wire");
            assert_eq!(h.flow, 9);
            return;
        }
    }
}

#[test]
fn overload_ladder_sheds_and_coalesces_under_burst() {
    let receiver = UdpSocket::bind(loopback()).unwrap();
    let recv_addr = receiver.local_addr().unwrap();
    // Keep the receiver drained so the burst pressure lands on the relay.
    std::thread::spawn(move || {
        let mut buf = [0u8; 2048];
        while receiver.recv_from(&mut buf).is_ok() {}
    });
    let relay = ShardedRelay::start(
        loopback(),
        RelayConfig {
            shards: 1,
            // Tiny budgets: a burst of hundreds exhausts forward and
            // NACK buckets within one batch window.
            overload: Some(OverloadConfig {
                forward_pps: 50.0,
                forward_burst: 8.0,
                nack_pps: 25.0,
                nack_burst: 4.0,
                coalesce_nacks: true,
            }),
            ..RelayConfig::streamlined(recv_addr)
        },
    )
    .expect("relay starts");
    let sender = UdpSocket::bind(loopback()).unwrap();

    // One flow, a hot burst: rung 1 exhausts (shed→NACK), the NACK
    // bucket exhausts (shed→drop), and duplicates coalesce.
    for seq in 0..800u64 {
        sender
            .send_to(
                &WireHeader::data(5, seq, 16).encode(&[1; 16]),
                relay.local_addr(),
            )
            .unwrap();
        if seq % 64 == 0 {
            // Pace just enough that the kernel socket buffer doesn't
            // swallow the whole burst before the relay reads any of it.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    wait_for(5, "ladder engaged on all rungs", || {
        let s = relay.stats();
        s.shed_nacked > 0 && s.shed_dropped > 0 && s.nacks_coalesced > 0
    });
    let s = relay.stats();
    // Ladder accounting: every received datagram lands in exactly one
    // bucket (streamlined relays are datagram-conserving).
    assert_eq!(
        s.received,
        s.forwarded + s.reversed + s.dropped + s.nacks + s.nacks_coalesced + s.shed_dropped,
        "shed ladder conserves datagrams: {s:?}"
    );
    assert!(s.shed_nacked <= s.nacks, "shed-NACKs are a subset of NACKs");
}

#[test]
fn disabled_supervisor_leaves_crashed_shard_dead() {
    let receiver = UdpSocket::bind(loopback()).unwrap();
    let relay = ShardedRelay::start(
        loopback(),
        RelayConfig {
            shards: 1,
            supervisor: SupervisorConfig {
                enabled: false,
                poll: Duration::from_millis(5),
                ..SupervisorConfig::default()
            },
            ..RelayConfig::streamlined(receiver.local_addr().unwrap())
        },
    )
    .expect("relay starts");
    relay.inject_crash(0);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        relay.shard_generation(0),
        0,
        "no supersession when disabled"
    );
    assert_eq!(relay.supervisor_stats().restarts, 0);
}
