//! Loom models of the lock-free datapath (run with
//! `RUSTFLAGS="--cfg loom" cargo test -p netproxy --test loom`).
//!
//! These drive the *real* `FlowDirectory` and `ShardStats` code — via
//! the `crate::sync` atomic shim — through every interleaving of their
//! atomic operations under the vendored bounded-exhaustive checker
//! (`crates/loom`). Exploration is SeqCst-only; ordering *strength* is
//! audited statically (simlint `unjustified-atomic-ordering`) and
//! dynamically by the TSAN CI job. See DESIGN.md §14.

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use netproxy::shard::{FlowDirectory, RelayStats, ShardStats};
use std::net::SocketAddr;
use std::sync::atomic::Ordering;

fn addr(last_octet: u8, port: u16) -> SocketAddr {
    SocketAddr::from(([10, 0, 0, last_octet], port))
}

/// Two shards race to publish the *same* flow with different senders
/// (the real cross-shard case: retransmits of one flow steered to two
/// sockets). First writer wins the key slot; both values are valid, so
/// any lookup after both publishes must see one of the two — never a
/// torn or foreign value, and never a permanently empty slot.
#[test]
fn directory_first_writer_wins_same_flow() {
    loom::model(|| {
        let dir = Arc::new(FlowDirectory::new(8));
        let a = addr(1, 1111);
        let b = addr(2, 2222);
        let d1 = Arc::clone(&dir);
        let t1 = thread::spawn(move || d1.publish(7, a));
        let d2 = Arc::clone(&dir);
        let t2 = thread::spawn(move || d2.publish(7, b));
        t1.join().expect("publisher 1");
        t2.join().expect("publisher 2");
        let got = dir.lookup(7).expect("published flow resolvable");
        assert!(got == a || got == b, "foreign value {got}");
    });
}

/// Publish racing a lookup: the reader sees `None` (insert in flight —
/// the claimed-key/empty-value window) or the exact published sender,
/// never garbage. After join, the flow must be resolvable.
#[test]
fn directory_lookup_races_publish() {
    loom::model(|| {
        let dir = Arc::new(FlowDirectory::new(8));
        let a = addr(3, 3333);
        let d1 = Arc::clone(&dir);
        let t = thread::spawn(move || d1.publish(5, a));
        match dir.lookup(5) {
            None => {} // not yet visible, or insert in flight
            Some(got) => assert_eq!(got, a, "torn or foreign value"),
        }
        t.join().expect("publisher");
        assert_eq!(dir.lookup(5), Some(a), "publish durable after join");
    });
}

/// Two *different* flows that probe the same slot chain: the loser of
/// the CAS must probe on and land in the next slot, so both flows
/// resolve to their own sender afterwards (no lost publication, no
/// cross-flow value bleed).
#[test]
fn directory_colliding_flows_both_resolve() {
    // Brute-forced outside the model (the closure must be
    // deterministic and cheap): two flows with the same home slot in
    // an 8-slot table.
    let mask = 7usize;
    let slot = |flow: u64| (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & mask;
    let f1 = 0u64;
    let f2 = (1..).find(|&f| slot(f) == slot(f1)).expect("collision");
    let a = addr(4, 4444);
    let b = addr(5, 5555);
    loom::model(move || {
        let dir = Arc::new(FlowDirectory::new(8));
        let d1 = Arc::clone(&dir);
        let t1 = thread::spawn(move || d1.publish(f1, a));
        let d2 = Arc::clone(&dir);
        let t2 = thread::spawn(move || d2.publish(f2, b));
        t1.join().expect("publisher 1");
        t2.join().expect("publisher 2");
        assert_eq!(dir.lookup(f1), Some(a), "flow 1 kept its own sender");
        assert_eq!(dir.lookup(f2), Some(b), "flow 2 kept its own sender");
    });
}

/// The per-batch counter flush racing a `RelayStats::merge` snapshot:
/// a concurrent snapshot may mix counters from different batches but
/// each counter is monotone and bounded by its final value; after the
/// worker joins, a snapshot must be exact.
#[test]
fn shard_stats_flush_vs_snapshot() {
    loom::model(|| {
        let stats = Arc::new(ShardStats::default());
        let s = Arc::clone(&stats);
        let worker = thread::spawn(move || {
            // Two batches of the worker's per-batch flush, reduced to
            // the three counter kinds (add, add, max) to keep the
            // interleaving space small.
            for (got, fwd) in [(4u64, 3u64), (2, 2)] {
                // ordering: Relaxed — mirrors the shard worker's flush exactly;
                // the model explores every interleaving regardless.
                s.forwarded.fetch_add(fwd, Ordering::Relaxed);
                s.batches.fetch_add(1, Ordering::Relaxed);
                s.max_batch.fetch_max(got, Ordering::Relaxed);
            }
        });
        let mut mid = RelayStats::default();
        mid.merge(&stats);
        assert!(mid.forwarded <= 5, "snapshot overshot: {}", mid.forwarded);
        assert!(mid.batches <= 2, "snapshot overshot: {}", mid.batches);
        assert!(mid.max_batch <= 4, "snapshot overshot: {}", mid.max_batch);
        worker.join().expect("worker");
        let mut fin = RelayStats::default();
        fin.merge(&stats);
        assert_eq!((fin.forwarded, fin.batches, fin.max_batch), (5, 2, 4));
    });
}
