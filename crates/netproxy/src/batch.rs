//! Batched UDP socket layer: many datagrams per syscall.
//!
//! The single-datagram relay pays two syscalls and a buffer copy per
//! packet — the dominant cost of the Figure 5b upper bound. This module
//! drains up to [`BATCH`] datagrams per `recvmmsg` into a preallocated
//! ring of buffers and coalesces every outbound forward/NACK of a batch
//! into one `sendmmsg` flush, cutting the syscall count per packet from
//! two to ~2/[`BATCH`].
//!
//! Two implementations sit behind the same [`BatchIo`] trait:
//!
//! * [`MmsgIo`] (Linux): `recvmmsg`/`sendmmsg` via hand-rolled FFI —
//!   deliberately no `libc` crate dependency; the five syscalls and two
//!   sockaddr layouts we need are declared locally.
//! * [`FallbackIo`] (portable): the same ring/flush interface over
//!   single-datagram `recv_from`/`send_to`, so every relay variant runs
//!   unchanged on non-Linux hosts (and the fallback path stays testable
//!   on Linux).
//!
//! Receive buffers are only recycled after the batch's sends are
//! flushed, which is what lets the relay forward straight out of the
//! receive ring (zero-copy, see [`crate::wire::DatagramView`]).

use crate::wire::{write_nack_into, MAX_DATAGRAM, WIRE_HEADER_LEN};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Datagrams drained per `recvmmsg` / flushed per `sendmmsg`.
pub const BATCH: usize = 64;

/// How long a `recv_batch` blocks waiting for the first datagram before
/// returning an empty batch (keeps shutdown + sweep timers responsive).
pub const RECV_POLL: Duration = Duration::from_millis(2);

/// Which socket layer a relay / load generator runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketLayer {
    /// `recvmmsg`/`sendmmsg` on Linux, fallback elsewhere.
    Auto,
    /// Force the Linux mmsg path (errors off-Linux).
    Mmsg,
    /// Force the portable single-datagram path.
    Fallback,
}

impl SocketLayer {
    /// The layer `Auto` resolves to on this platform.
    pub fn resolved(self) -> SocketLayer {
        match self {
            SocketLayer::Auto => {
                if cfg!(target_os = "linux") {
                    SocketLayer::Mmsg
                } else {
                    SocketLayer::Fallback
                }
            }
            other => other,
        }
    }

    /// Short name for logs and JSON.
    pub fn name(self) -> &'static str {
        match self.resolved() {
            SocketLayer::Mmsg => "mmsg",
            SocketLayer::Fallback => "fallback",
            SocketLayer::Auto => unreachable!("resolved"),
        }
    }
}

/// A preallocated ring of receive buffers, filled by
/// [`BatchIo::recv_batch`] and consumed in place by the relay loop.
pub struct RecvRing {
    bufs: Box<[[u8; MAX_DATAGRAM]]>,
    lens: [usize; BATCH],
    addrs: [SocketAddr; BATCH],
    count: usize,
}

impl Default for RecvRing {
    fn default() -> Self {
        Self::new()
    }
}

impl RecvRing {
    /// A ring of [`BATCH`] MTU-sized buffers.
    pub fn new() -> Self {
        let placeholder: SocketAddr = SocketAddr::from(([0, 0, 0, 0], 0));
        RecvRing {
            bufs: vec![[0u8; MAX_DATAGRAM]; BATCH].into_boxed_slice(),
            lens: [0; BATCH],
            addrs: [placeholder; BATCH],
            count: 0,
        }
    }

    /// Datagrams held by the last `recv_batch`.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the last `recv_batch` returned nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th received datagram (immutable).
    #[inline]
    pub fn datagram(&self, i: usize) -> &[u8] {
        &self.bufs[i][..self.lens[i]]
    }

    /// The `i`-th received datagram (mutable, for in-place rewrites).
    #[inline]
    pub fn datagram_mut(&mut self, i: usize) -> &mut [u8] {
        &mut self.bufs[i][..self.lens[i]]
    }

    /// Source address of the `i`-th datagram.
    #[inline]
    pub fn source(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// Stages an outbound datagram in the next free slot: `write` fills
    /// the buffer and returns the wire length. Returns the slot index
    /// (push it into a [`SendQueue`] and flush), or `None` when the
    /// ring is full. This runs the batched path in reverse — senders
    /// (loadgen) coalesce into the same `sendmmsg` flush the relay uses.
    #[inline]
    pub fn stage(
        &mut self,
        write: impl FnOnce(&mut [u8; MAX_DATAGRAM]) -> usize,
    ) -> Option<(usize, usize)> {
        if self.count == BATCH {
            return None;
        }
        let i = self.count;
        let len = write(&mut self.bufs[i]);
        debug_assert!(len <= MAX_DATAGRAM);
        self.lens[i] = len;
        self.count += 1;
        Some((i, len))
    }

    /// Empties the ring (between staged send batches).
    #[inline]
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Removes datagram `i` by swapping it with the last slot (datagram
    /// order within a batch carries no meaning — each is routed
    /// independently). Used by the fault shim to drop/steal inbound
    /// datagrams before the relay sees them. Must not be called while a
    /// [`SendQueue`] holds slot references into this ring.
    #[inline]
    pub(crate) fn swap_remove(&mut self, i: usize) {
        debug_assert!(i < self.count);
        let last = self.count - 1;
        if i != last {
            self.bufs.swap(i, last);
            self.lens.swap(i, last);
            self.addrs.swap(i, last);
        }
        self.count = last;
    }

    /// Appends a received datagram (bytes + source address) into the next
    /// free slot — the fault shim's delay-release path, which re-injects
    /// previously stolen datagrams as if they had just arrived. Returns
    /// false when the ring is full.
    #[inline]
    pub(crate) fn push_received(&mut self, bytes: &[u8], from: SocketAddr) -> bool {
        if self.count == BATCH || bytes.len() > MAX_DATAGRAM {
            return false;
        }
        let i = self.count;
        self.bufs[i][..bytes.len()].copy_from_slice(bytes);
        self.lens[i] = bytes.len();
        self.addrs[i] = from;
        self.count += 1;
        true
    }
}

/// Where a queued outbound datagram's bytes live.
#[derive(Debug, Clone, Copy)]
enum SendSrc {
    /// A slice of a receive-ring slot (zero-copy forward / in-place NACK).
    Slot { slot: u32, len: u32 },
    /// A freshly built header in the scratch ring (generated NACKs).
    Scratch(u32),
}

/// Outbound datagrams coalesced for one `sendmmsg` flush.
///
/// Entries reference the receive ring by slot index (no copies) or a
/// scratch ring of generated headers; both stay valid until
/// [`SendQueue::clear`], which the relay calls only after the flush.
pub struct SendQueue {
    entries: Vec<(SendSrc, SocketAddr)>,
    scratch: Vec<[u8; WIRE_HEADER_LEN]>,
}

impl Default for SendQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl SendQueue {
    /// An empty queue with capacity for a full batch plus NACKs.
    pub fn new() -> Self {
        SendQueue {
            entries: Vec::with_capacity(2 * BATCH),
            scratch: Vec::with_capacity(BATCH),
        }
    }

    /// Discards all queued datagrams (after a flush).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.scratch.clear();
    }

    /// Queued datagram count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queues the first `len` bytes of receive-ring slot `slot` for
    /// `dest` — the zero-copy forward path.
    #[inline]
    pub fn push_slot(&mut self, slot: usize, len: usize, dest: SocketAddr) {
        self.entries.push((
            SendSrc::Slot {
                slot: slot as u32,
                len: len as u32,
            },
            dest,
        ));
    }

    /// Builds a NACK header in the scratch ring and queues it for `dest`
    /// (no allocation in steady state).
    #[inline]
    pub fn push_nack(&mut self, flow: u64, seq: u64, dest: SocketAddr) {
        let mut buf = [0u8; WIRE_HEADER_LEN];
        write_nack_into(&mut buf, flow, seq);
        self.scratch.push(buf);
        self.entries
            .push((SendSrc::Scratch(self.scratch.len() as u32 - 1), dest));
    }

    /// Resolves entry `i` to its bytes and destination. `pub(crate)` so
    /// the fault shim can inspect/copy queued datagrams before deciding
    /// their fate.
    #[inline]
    pub(crate) fn resolve<'a>(&'a self, ring: &'a RecvRing, i: usize) -> (&'a [u8], SocketAddr) {
        let (src, dest) = self.entries[i];
        let bytes = match src {
            SendSrc::Slot { slot, len } => &ring.bufs[slot as usize][..len as usize],
            SendSrc::Scratch(idx) => &self.scratch[idx as usize][..],
        };
        (bytes, dest)
    }
}

/// Result of a batch flush: datagrams handed to the kernel and hard
/// send errors (counted, never silently dropped — see `RelayStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendOutcome {
    /// Datagrams accepted by the kernel.
    pub sent: u64,
    /// Datagrams the kernel refused (per-datagram errors).
    pub errors: u64,
}

/// A batched datagram socket: drain many per receive call, flush many
/// per send call. Implementations are used from exactly one shard
/// thread at a time (`&mut self`).
pub trait BatchIo: Send {
    /// Blocks up to [`RECV_POLL`] for the first datagram, then drains
    /// whatever else is ready, up to [`BATCH`]. Returns the number of
    /// datagrams now in `ring` (0 on timeout).
    fn recv_batch(&mut self, ring: &mut RecvRing) -> io::Result<usize>;

    /// Flushes every queued datagram. Per-datagram failures are counted
    /// in the outcome; only unrecoverable socket errors return `Err`.
    fn send_batch(&mut self, ring: &RecvRing, queue: &SendQueue) -> io::Result<SendOutcome>;

    /// The bound address.
    fn local_addr(&self) -> io::Result<SocketAddr>;

    /// Which layer this is (for stats/logs).
    fn layer(&self) -> SocketLayer;
}

/// Opens the batched layer over `socket` according to `layer`.
///
/// # Errors
/// `Unsupported` when `Mmsg` is forced on a non-Linux platform.
pub fn open(socket: UdpSocket, layer: SocketLayer) -> io::Result<Box<dyn BatchIo>> {
    match layer.resolved() {
        SocketLayer::Mmsg => {
            #[cfg(target_os = "linux")]
            {
                Ok(Box::new(MmsgIo::new(socket)?))
            }
            #[cfg(not(target_os = "linux"))]
            {
                Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "mmsg layer requires Linux",
                ))
            }
        }
        SocketLayer::Fallback => Ok(Box::new(FallbackIo::new(socket)?)),
        SocketLayer::Auto => unreachable!("resolved"),
    }
}

/// True when `recv`'s error just means "nothing ready before the poll
/// timeout" rather than a broken socket.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// The portable single-datagram implementation: same ring/flush
/// interface, one syscall per datagram underneath.
pub struct FallbackIo {
    socket: UdpSocket,
}

impl FallbackIo {
    /// Wraps `socket`, configuring the receive-poll timeout.
    pub fn new(socket: UdpSocket) -> io::Result<Self> {
        socket.set_read_timeout(Some(RECV_POLL))?;
        Ok(FallbackIo { socket })
    }
}

impl BatchIo for FallbackIo {
    fn recv_batch(&mut self, ring: &mut RecvRing) -> io::Result<usize> {
        ring.count = 0;
        // First datagram: block up to the poll timeout.
        match self.socket.recv_from(&mut ring.bufs[0]) {
            Ok((n, from)) => {
                ring.lens[0] = n;
                ring.addrs[0] = from;
                ring.count = 1;
            }
            Err(e) if is_timeout(&e) => return Ok(0),
            Err(e) => return Err(e),
        }
        // Drain whatever else is already queued without blocking again.
        self.socket.set_nonblocking(true)?;
        while ring.count < BATCH {
            let i = ring.count;
            match self.socket.recv_from(&mut ring.bufs[i]) {
                Ok((n, from)) => {
                    ring.lens[i] = n;
                    ring.addrs[i] = from;
                    ring.count += 1;
                }
                Err(e) if is_timeout(&e) => break,
                Err(e) => {
                    self.socket.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        self.socket.set_nonblocking(false)?;
        Ok(ring.count)
    }

    fn send_batch(&mut self, ring: &RecvRing, queue: &SendQueue) -> io::Result<SendOutcome> {
        let mut outcome = SendOutcome::default();
        for i in 0..queue.len() {
            let (bytes, dest) = queue.resolve(ring, i);
            match self.socket.send_to(bytes, dest) {
                Ok(_) => outcome.sent += 1,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => outcome.errors += 1,
                Err(_) => outcome.errors += 1,
            }
        }
        Ok(outcome)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    fn layer(&self) -> SocketLayer {
        SocketLayer::Fallback
    }
}

/// Binds a UDP socket with `SO_REUSEPORT` (Linux), so N shard sockets
/// can share one port and the kernel steers each 4-tuple consistently
/// to one of them. Off Linux this is a plain bind — callers clamp their
/// shard count to 1 there (see `shard.rs`).
pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
    #[cfg(target_os = "linux")]
    {
        linux::bind_reuseport(addr)
    }
    #[cfg(not(target_os = "linux"))]
    {
        UdpSocket::bind(addr)
    }
}

/// Whether multi-shard port sharing is available on this platform.
pub fn reuseport_available() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
pub use linux::MmsgIo;

/// Linux `recvmmsg`/`sendmmsg` implementation with local FFI
/// declarations (no external crate; these link against the system libc).
#[cfg(target_os = "linux")]
mod linux {
    use super::{
        is_timeout, BatchIo, RecvRing, SendOutcome, SendQueue, SocketLayer, BATCH, RECV_POLL,
    };
    use std::io;
    use std::mem;
    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV4, SocketAddrV6, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};

    use std::ffi::{c_int, c_uint, c_void};

    // ---- minimal libc surface ------------------------------------------

    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_DGRAM: c_int = 2;
    const SOCK_CLOEXEC: c_int = 0x80000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEPORT: c_int = 15;
    const SO_RCVBUF: c_int = 8;
    const SO_SNDBUF: c_int = 7;
    const MSG_WAITFORONE: c_int = 0x10000;
    const MSG_DONTWAIT: c_int = 0x40;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        iov_base: *mut c_void,
        iov_len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        msg_name: *mut c_void,
        msg_namelen: c_uint,
        msg_iov: *mut IoVec,
        msg_iovlen: usize,
        msg_control: *mut c_void,
        msg_controllen: usize,
        msg_flags: c_int,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        msg_hdr: MsgHdr,
        msg_len: c_uint,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16, // network order
        sin_addr: u32, // network order
        sin_zero: [u8; 8],
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn6 {
        sin6_family: u16,
        sin6_port: u16, // network order
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    /// Generic storage big enough for either family, like sockaddr_storage.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    struct SockAddrStorage {
        bytes: [u8; 128],
    }

    impl SockAddrStorage {
        fn zeroed() -> Self {
            SockAddrStorage { bytes: [0; 128] }
        }
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn bind(fd: c_int, addr: *const c_void, addrlen: c_uint) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: c_uint,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn recvmmsg(
            fd: c_int,
            msgvec: *mut MMsgHdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void,
        ) -> c_int;
        fn sendmmsg(fd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
    }

    fn encode_addr(addr: SocketAddr, storage: &mut SockAddrStorage) -> c_uint {
        match addr {
            SocketAddr::V4(v4) => {
                let raw = SockAddrIn {
                    sin_family: AF_INET as u16,
                    sin_port: v4.port().to_be(),
                    sin_addr: u32::from(*v4.ip()).to_be(),
                    sin_zero: [0; 8],
                };
                // SAFETY: SockAddrIn is plain-old-data smaller than storage.
                unsafe {
                    std::ptr::write(storage.bytes.as_mut_ptr() as *mut SockAddrIn, raw);
                }
                mem::size_of::<SockAddrIn>() as c_uint
            }
            SocketAddr::V6(v6) => {
                let raw = SockAddrIn6 {
                    sin6_family: AF_INET6 as u16,
                    sin6_port: v6.port().to_be(),
                    sin6_flowinfo: v6.flowinfo().to_be(),
                    sin6_addr: v6.ip().octets(),
                    sin6_scope_id: v6.scope_id(),
                };
                // SAFETY: SockAddrIn6 is plain-old-data smaller than storage.
                unsafe {
                    std::ptr::write(storage.bytes.as_mut_ptr() as *mut SockAddrIn6, raw);
                }
                mem::size_of::<SockAddrIn6>() as c_uint
            }
        }
    }

    fn decode_addr(storage: &SockAddrStorage) -> Option<SocketAddr> {
        let family = u16::from_ne_bytes([storage.bytes[0], storage.bytes[1]]);
        if family == AF_INET as u16 {
            // SAFETY: kernel wrote a sockaddr_in for AF_INET.
            let raw = unsafe { std::ptr::read(storage.bytes.as_ptr() as *const SockAddrIn) };
            Some(SocketAddr::V4(SocketAddrV4::new(
                Ipv4Addr::from(u32::from_be(raw.sin_addr)),
                u16::from_be(raw.sin_port),
            )))
        } else if family == AF_INET6 as u16 {
            // SAFETY: kernel wrote a sockaddr_in6 for AF_INET6.
            let raw = unsafe { std::ptr::read(storage.bytes.as_ptr() as *const SockAddrIn6) };
            Some(SocketAddr::V6(SocketAddrV6::new(
                Ipv6Addr::from(raw.sin6_addr),
                u16::from_be(raw.sin6_port),
                u32::from_be(raw.sin6_flowinfo),
                raw.sin6_scope_id,
            )))
        } else {
            None
        }
    }

    fn set_opt_i32(fd: RawFd, level: c_int, opt: c_int, value: c_int) -> io::Result<()> {
        // SAFETY: passes a valid pointer/size pair for a c_int option.
        let rc = unsafe {
            setsockopt(
                fd,
                level,
                opt,
                &value as *const c_int as *const c_void,
                mem::size_of::<c_int>() as c_uint,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// `socket() + SO_REUSEPORT + large buffers + bind()`, returned as a
    /// std socket (who owns the fd from here on).
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
        let family = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: plain socket(2) call.
        let fd = unsafe { socket(family, SOCK_DGRAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let guard_close = |e: io::Error| {
            // SAFETY: fd came from socket(2) above and is not yet owned.
            // simlint: allow(ffi-unchecked-return) — error-path drop guard; a failed close of a never-used fd has no recovery
            unsafe { close(fd) };
            e
        };
        set_opt_i32(fd, SOL_SOCKET, SO_REUSEPORT, 1).map_err(guard_close)?;
        // Loopback line-rate bursts overflow the default buffers long
        // before the datapath is the bottleneck; ask for more (the kernel
        // clamps to net.core.*mem_max on its own).
        let _ = set_opt_i32(fd, SOL_SOCKET, SO_RCVBUF, 4 << 20);
        let _ = set_opt_i32(fd, SOL_SOCKET, SO_SNDBUF, 4 << 20);
        let mut storage = SockAddrStorage::zeroed();
        let len = encode_addr(addr, &mut storage);
        // SAFETY: storage holds a valid sockaddr of length `len`.
        let rc = unsafe { bind(fd, storage.bytes.as_ptr() as *const c_void, len) };
        if rc < 0 {
            return Err(guard_close(io::Error::last_os_error()));
        }
        // SAFETY: fd is a freshly bound, unowned UDP socket.
        Ok(unsafe { UdpSocket::from_raw_fd(fd) })
    }

    /// The `recvmmsg`/`sendmmsg` implementation of [`BatchIo`].
    pub struct MmsgIo {
        socket: UdpSocket,
        // Preallocated syscall scaffolding, rebuilt (cheaply) per call.
        recv_addrs: Box<[SockAddrStorage; BATCH]>,
        recv_iovs: Box<[IoVec; BATCH]>,
        recv_hdrs: Box<[MMsgHdr; BATCH]>,
        send_addrs: Vec<SockAddrStorage>,
        send_iovs: Vec<IoVec>,
        send_hdrs: Vec<MMsgHdr>,
    }

    // SAFETY: the raw pointers inside the preallocated scaffolding only
    // ever point into the same struct (or into borrows passed to the
    // current call); the type is used from one thread at a time.
    unsafe impl Send for MmsgIo {}

    fn zero_msghdr() -> MsgHdr {
        MsgHdr {
            msg_name: std::ptr::null_mut(),
            msg_namelen: 0,
            msg_iov: std::ptr::null_mut(),
            msg_iovlen: 0,
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        }
    }

    impl MmsgIo {
        /// Wraps `socket`, configuring the receive-poll timeout.
        pub fn new(socket: UdpSocket) -> io::Result<Self> {
            socket.set_read_timeout(Some(RECV_POLL))?;
            let zero_mmsg = MMsgHdr {
                msg_hdr: zero_msghdr(),
                msg_len: 0,
            };
            Ok(MmsgIo {
                socket,
                recv_addrs: Box::new([SockAddrStorage::zeroed(); BATCH]),
                recv_iovs: Box::new(
                    [IoVec {
                        iov_base: std::ptr::null_mut(),
                        iov_len: 0,
                    }; BATCH],
                ),
                recv_hdrs: Box::new([zero_mmsg; BATCH]),
                send_addrs: Vec::new(),
                send_iovs: Vec::new(),
                send_hdrs: Vec::new(),
            })
        }
    }

    impl BatchIo for MmsgIo {
        fn recv_batch(&mut self, ring: &mut RecvRing) -> io::Result<usize> {
            ring.count = 0;
            for i in 0..BATCH {
                self.recv_iovs[i] = IoVec {
                    iov_base: ring.bufs[i].as_mut_ptr() as *mut c_void,
                    iov_len: ring.bufs[i].len(),
                };
                self.recv_hdrs[i] = MMsgHdr {
                    msg_hdr: MsgHdr {
                        msg_name: self.recv_addrs[i].bytes.as_mut_ptr() as *mut c_void,
                        msg_namelen: std::mem::size_of::<SockAddrStorage>() as c_uint,
                        msg_iov: &mut self.recv_iovs[i],
                        msg_iovlen: 1,
                        ..zero_msghdr()
                    },
                    msg_len: 0,
                };
            }
            // MSG_WAITFORONE: block (≤ SO_RCVTIMEO) for the first datagram,
            // then drain whatever is already queued — one syscall total.
            // SAFETY: hdrs/iovs/addrs all outlive the call and point into
            // live buffers of the advertised sizes.
            let got = unsafe {
                recvmmsg(
                    self.socket.as_raw_fd(),
                    self.recv_hdrs.as_mut_ptr(),
                    BATCH as c_uint,
                    MSG_WAITFORONE,
                    std::ptr::null_mut(),
                )
            };
            if got < 0 {
                let e = io::Error::last_os_error();
                if is_timeout(&e) {
                    return Ok(0);
                }
                return Err(e);
            }
            let got = got as usize;
            for i in 0..got {
                ring.lens[i] = self.recv_hdrs[i].msg_len as usize;
                // An unparsable family is not our protocol; keep the slot
                // but give it an unroutable source so the relay drops it.
                ring.addrs[i] = decode_addr(&self.recv_addrs[i])
                    .unwrap_or_else(|| SocketAddr::from(([0, 0, 0, 0], 0)));
            }
            ring.count = got;
            Ok(got)
        }

        fn send_batch(&mut self, ring: &RecvRing, queue: &SendQueue) -> io::Result<SendOutcome> {
            let total = queue.len();
            let mut outcome = SendOutcome::default();
            if total == 0 {
                return Ok(outcome);
            }
            self.send_addrs.clear();
            self.send_iovs.clear();
            self.send_hdrs.clear();
            self.send_addrs.resize(total, SockAddrStorage::zeroed());
            self.send_iovs.resize(
                total,
                IoVec {
                    iov_base: std::ptr::null_mut(),
                    iov_len: 0,
                },
            );
            for i in 0..total {
                let (bytes, dest) = queue.resolve(ring, i);
                let addr_len = encode_addr(dest, &mut self.send_addrs[i]);
                self.send_iovs[i] = IoVec {
                    iov_base: bytes.as_ptr() as *mut c_void,
                    iov_len: bytes.len(),
                };
                self.send_hdrs.push(MMsgHdr {
                    msg_hdr: MsgHdr {
                        msg_name: self.send_addrs[i].bytes.as_mut_ptr() as *mut c_void,
                        msg_namelen: addr_len,
                        msg_iov: &mut self.send_iovs[i],
                        msg_iovlen: 1,
                        ..zero_msghdr()
                    },
                    msg_len: 0,
                });
            }
            let mut done = 0usize;
            while done < total {
                // SAFETY: the scaffolding vectors are sized `total` and
                // stay alive (and unmoved) across the call.
                let rc = unsafe {
                    sendmmsg(
                        self.socket.as_raw_fd(),
                        self.send_hdrs.as_mut_ptr().add(done),
                        (total - done) as c_uint,
                        MSG_DONTWAIT,
                    )
                };
                if rc < 0 {
                    let e = io::Error::last_os_error();
                    if is_timeout(&e) {
                        // Kernel send queue full: brief blocking retry of
                        // the remainder via the same syscall without
                        // DONTWAIT would stall the shard; count and move on.
                        outcome.errors += (total - done) as u64;
                        return Ok(outcome);
                    }
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    // Per-datagram refusal (e.g. unroutable dest): skip it,
                    // count it, keep flushing the rest.
                    outcome.errors += 1;
                    done += 1;
                    continue;
                }
                outcome.sent += rc as u64;
                done += rc as usize;
            }
            Ok(outcome)
        }

        fn local_addr(&self) -> io::Result<SocketAddr> {
            self.socket.local_addr()
        }

        fn layer(&self) -> SocketLayer {
            SocketLayer::Mmsg
        }
    }
}

// Socket tests are skipped under Miri (real sockets need real syscalls).
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::wire::WireHeader;
    use std::net::UdpSocket;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("addr")
    }

    fn layers() -> Vec<SocketLayer> {
        if cfg!(target_os = "linux") {
            vec![SocketLayer::Mmsg, SocketLayer::Fallback]
        } else {
            vec![SocketLayer::Fallback]
        }
    }

    #[test]
    fn roundtrip_single_datagram_both_layers() {
        for layer in layers() {
            let mut io = open(UdpSocket::bind(loopback()).unwrap(), layer).unwrap();
            let addr = io.local_addr().unwrap();
            let sender = UdpSocket::bind(loopback()).unwrap();
            let wire = WireHeader::data(1, 2, 3).encode(&[7, 8, 9]);
            sender.send_to(&wire, addr).unwrap();
            let mut ring = RecvRing::new();
            let mut got = 0;
            for _ in 0..500 {
                got = io.recv_batch(&mut ring).unwrap();
                if got > 0 {
                    break;
                }
            }
            assert_eq!(got, 1, "layer {:?}", layer);
            assert_eq!(ring.datagram(0), &wire[..]);
            assert_eq!(ring.source(0), sender.local_addr().unwrap());
        }
    }

    #[test]
    fn drains_many_datagrams_per_batch() {
        for layer in layers() {
            let mut io = open(UdpSocket::bind(loopback()).unwrap(), layer).unwrap();
            let addr = io.local_addr().unwrap();
            let sender = UdpSocket::bind(loopback()).unwrap();
            for seq in 0..40u64 {
                let wire = WireHeader::data(5, seq, 2).encode(&[1, 2]);
                sender.send_to(&wire, addr).unwrap();
            }
            let mut ring = RecvRing::new();
            let mut total = 0;
            let mut max_batch = 0;
            for _ in 0..1000 {
                let got = io.recv_batch(&mut ring).unwrap();
                max_batch = max_batch.max(got);
                total += got;
                if total >= 40 {
                    break;
                }
            }
            assert_eq!(total, 40, "layer {:?}", layer);
            assert!(
                max_batch > 1,
                "{:?}: batching never drained more than one ({max_batch})",
                layer
            );
        }
    }

    #[test]
    fn send_batch_flushes_ring_slots_and_nacks() {
        for layer in layers() {
            let mut io = open(UdpSocket::bind(loopback()).unwrap(), layer).unwrap();
            let addr = io.local_addr().unwrap();
            let peer = UdpSocket::bind(loopback()).unwrap();
            peer.set_read_timeout(Some(std::time::Duration::from_secs(2)))
                .unwrap();
            let peer_addr = peer.local_addr().unwrap();

            // Load one datagram into the ring via a real receive so the
            // slot path is exercised end to end.
            let probe = UdpSocket::bind(loopback()).unwrap();
            let wire = WireHeader::data(9, 1, 4).encode(&[1, 2, 3, 4]);
            probe.send_to(&wire, addr).unwrap();
            let mut ring = RecvRing::new();
            while io.recv_batch(&mut ring).unwrap() == 0 {}

            let mut queue = SendQueue::new();
            queue.push_slot(0, ring.datagram(0).len(), peer_addr);
            queue.push_nack(9, 42, peer_addr);
            let outcome = io.send_batch(&ring, &queue).unwrap();
            assert_eq!(outcome, SendOutcome { sent: 2, errors: 0 }, "{:?}", layer);
            queue.clear();

            let mut buf = [0u8; 2048];
            let (n, _) = peer.recv_from(&mut buf).unwrap();
            let (h, p) = WireHeader::decode(&buf[..n]).unwrap();
            assert_eq!((h.flow, h.seq), (9, 1));
            assert_eq!(p, &[1, 2, 3, 4]);
            let (n, _) = peer.recv_from(&mut buf).unwrap();
            let (h, _) = WireHeader::decode(&buf[..n]).unwrap();
            assert_eq!(h, WireHeader::nack(9, 42));
        }
    }

    #[test]
    fn send_errors_are_counted_not_dropped() {
        for layer in layers() {
            let mut io = open(UdpSocket::bind(loopback()).unwrap(), layer).unwrap();
            let mut queue = SendQueue::new();
            // Port 0 is never a valid destination: the kernel refuses it.
            queue.push_nack(1, 2, "127.0.0.1:0".parse().unwrap());
            let ring = RecvRing::new();
            let outcome = io.send_batch(&ring, &queue).unwrap();
            assert_eq!(outcome.sent, 0, "{:?}", layer);
            assert_eq!(outcome.errors, 1, "{:?}", layer);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_shares_a_port() {
        let a = bind_reuseport(loopback()).unwrap();
        let addr = a.local_addr().unwrap();
        let b = bind_reuseport(addr).unwrap();
        assert_eq!(b.local_addr().unwrap(), addr);
    }

    #[test]
    fn empty_recv_times_out_quickly() {
        for layer in layers() {
            let mut io = open(UdpSocket::bind(loopback()).unwrap(), layer).unwrap();
            let mut ring = RecvRing::new();
            let start = std::time::Instant::now();
            let got = io.recv_batch(&mut ring).unwrap();
            assert_eq!(got, 0);
            assert!(
                start.elapsed() < std::time::Duration::from_secs(1),
                "poll timeout not honored for {:?}",
                layer
            );
        }
    }
}
