//! A minimal reliable transport over the wire format, for closed-loop
//! demonstrations through the live Streamlined proxy.
//!
//! This is deliberately a *small* NACK-driven ARQ, not a congestion-
//! controlled stack: a fixed window, per-packet ACKs, retransmission on
//! NACK (the proxy's early loss signal) and a retransmission timer as the
//! last resort — just enough machinery to show a real transfer surviving
//! virtual-switch trimming end to end over sockets.

use crate::wire::{Flags, WireHeader, MAX_PAYLOAD};
use std::collections::BTreeSet;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use tokio::net::UdpSocket;

/// Transfer statistics returned by [`ReliableSender::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TransferStats {
    /// Distinct packets in the flow.
    pub total_packets: u64,
    /// Transmissions (first sends + retransmissions).
    pub transmissions: u64,
    /// Retransmissions triggered by NACKs.
    pub nack_retransmits: u64,
    /// Retransmissions triggered by the timer.
    pub timeout_retransmits: u64,
    /// Wall-clock completion time.
    pub elapsed: Duration,
}

/// Configuration of the reliable sender.
#[derive(Debug, Clone, Copy)]
pub struct ReliableSender {
    /// Flow id stamped on every packet.
    pub flow: u64,
    /// Packets to transfer.
    pub total_packets: u64,
    /// Maximum unacknowledged packets in flight.
    pub window: usize,
    /// Retransmission timeout (last resort; NACKs normally arrive first).
    pub rto: Duration,
    /// Give up after this long.
    pub deadline: Duration,
}

impl ReliableSender {
    /// Runs the transfer through `proxy` (which forwards to the receiver
    /// and reflects NACKs), driven by `socket`.
    ///
    /// # Errors
    /// I/O errors, or `TimedOut` if the deadline expires.
    pub async fn run(&self, socket: &UdpSocket, proxy: SocketAddr) -> io::Result<TransferStats> {
        assert!(self.total_packets > 0 && self.window > 0, "invalid transfer");
        let payload = vec![0x3Cu8; MAX_PAYLOAD];
        let start = Instant::now();
        let mut stats = TransferStats {
            total_packets: self.total_packets,
            ..Default::default()
        };
        let mut next_new: u64 = 0;
        let mut acked: BTreeSet<u64> = BTreeSet::new();
        // (seq, last transmission time) of in-flight packets.
        let mut inflight: Vec<(u64, Instant)> = Vec::new();
        let mut rtx: BTreeSet<u64> = BTreeSet::new();
        let mut buf = [0u8; 2048];

        while (acked.len() as u64) < self.total_packets {
            if start.elapsed() > self.deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "transfer incomplete: {}/{} acked",
                        acked.len(),
                        self.total_packets
                    ),
                ));
            }
            // Fill the window: retransmissions first.
            while inflight.len() < self.window {
                let seq = if let Some(&seq) = rtx.iter().next() {
                    rtx.remove(&seq);
                    seq
                } else if next_new < self.total_packets {
                    next_new += 1;
                    next_new - 1
                } else {
                    break;
                };
                if acked.contains(&seq) {
                    continue;
                }
                let wire = WireHeader::data(self.flow, seq, MAX_PAYLOAD as u16).encode(&payload);
                socket.send_to(&wire, proxy).await?;
                stats.transmissions += 1;
                inflight.push((seq, Instant::now()));
            }
            // Reap feedback (bounded wait so timers stay responsive).
            match tokio::time::timeout(Duration::from_millis(5), socket.recv_from(&mut buf)).await
            {
                Ok(Ok((n, _from))) => {
                    if let Ok((header, _)) = WireHeader::decode(&buf[..n]) {
                        if header.flow != self.flow {
                            continue;
                        }
                        if header.flags.contains(Flags::ACK) {
                            acked.insert(header.seq);
                            inflight.retain(|&(s, _)| s != header.seq);
                        } else if header.flags.contains(Flags::NACK)
                            && !acked.contains(&header.seq)
                        {
                            inflight.retain(|&(s, _)| s != header.seq);
                            stats.nack_retransmits += 1;
                            rtx.insert(header.seq);
                        }
                    }
                }
                Ok(Err(e)) => return Err(e),
                Err(_elapsed) => {}
            }
            // Timer-based recovery for anything silent past the RTO.
            let now = Instant::now();
            let rto = self.rto;
            inflight.retain(|&(seq, sent)| {
                if now.duration_since(sent) > rto && !acked.contains(&seq) {
                    stats.timeout_retransmits += 1;
                    rtx.insert(seq);
                    false
                } else {
                    true
                }
            });
        }
        stats.elapsed = start.elapsed();
        Ok(stats)
    }
}

/// The matching receiver: acks every data packet back through the proxy
/// and completes once it holds every sequence.
pub struct ReliableReceiver {
    /// Flow id to serve.
    pub flow: u64,
    /// Packets expected.
    pub total_packets: u64,
}

impl ReliableReceiver {
    /// Serves the flow on `socket` until complete (acks are addressed to
    /// the datagram source, i.e. the proxy, which relays them back).
    /// Returns the number of duplicate data packets seen.
    pub async fn run(&self, socket: &UdpSocket, deadline: Duration) -> io::Result<u64> {
        let start = Instant::now();
        let mut received: BTreeSet<u64> = BTreeSet::new();
        let mut duplicates = 0u64;
        let mut buf = [0u8; 2048];
        while (received.len() as u64) < self.total_packets {
            if start.elapsed() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("receive incomplete: {}/{}", received.len(), self.total_packets),
                ));
            }
            let Ok(recv) =
                tokio::time::timeout(Duration::from_millis(100), socket.recv_from(&mut buf)).await
            else {
                continue;
            };
            let (n, from) = recv?;
            let Ok((header, _payload)) = WireHeader::decode(&buf[..n]) else {
                continue;
            };
            if header.flow != self.flow || !header.flags.contains(Flags::DATA) {
                continue;
            }
            if !received.insert(header.seq) {
                duplicates += 1;
            }
            let ack = WireHeader::ack(self.flow, header.seq).encode(&[]);
            socket.send_to(&ack, from).await?;
        }
        Ok(duplicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamlined::StreamlinedUdpProxy;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("addr")
    }

    /// Full closed loop: sender -> proxy -> receiver, acks back through
    /// the proxy, no loss.
    #[tokio::test]
    async fn lossless_transfer_completes() {
        let recv_sock = UdpSocket::bind(loopback()).await.unwrap();
        let recv_addr = recv_sock.local_addr().unwrap();
        let proxy = StreamlinedUdpProxy::start(loopback(), recv_addr).await.unwrap();
        let receiver = tokio::spawn(async move {
            ReliableReceiver {
                flow: 1,
                total_packets: 200,
            }
            .run(&recv_sock, Duration::from_secs(10))
            .await
        });
        let send_sock = UdpSocket::bind(loopback()).await.unwrap();
        let stats = ReliableSender {
            flow: 1,
            total_packets: 200,
            window: 32,
            rto: Duration::from_millis(200),
            deadline: Duration::from_secs(10),
        }
        .run(&send_sock, proxy.local_addr())
        .await
        .unwrap();
        let dups = receiver.await.unwrap().unwrap();
        assert_eq!(stats.total_packets, 200);
        assert!(stats.transmissions >= 200);
        let _ = dups; // duplicates possible under kernel-buffer pressure
    }

    /// Datagrams trimmed before the proxy must be recovered via the
    /// proxy's NACKs, not the RTO.
    #[tokio::test]
    async fn trimmed_packets_recovered_by_nacks() {
        let recv_sock = UdpSocket::bind(loopback()).await.unwrap();
        let recv_addr = recv_sock.local_addr().unwrap();
        let proxy = StreamlinedUdpProxy::start(loopback(), recv_addr).await.unwrap();
        let proxy_addr = proxy.local_addr();
        let receiver = tokio::spawn(async move {
            ReliableReceiver {
                flow: 2,
                total_packets: 100,
            }
            .run(&recv_sock, Duration::from_secs(15))
            .await
        });
        // A lossy "switch" in front of the proxy: trims every 5th packet's
        // first transmission.
        let send_sock = UdpSocket::bind(loopback()).await.unwrap();
        let lossy = LossySender {
            inner: ReliableSender {
                flow: 2,
                total_packets: 100,
                window: 16,
                rto: Duration::from_secs(5), // long: force NACK recovery
                deadline: Duration::from_secs(15),
            },
        };
        let stats = lossy.run(&send_sock, proxy_addr).await.unwrap();
        receiver.await.unwrap().unwrap();
        assert!(stats.nack_retransmits >= 15, "{stats:?}");
        assert_eq!(stats.timeout_retransmits, 0, "NACKs must beat the RTO: {stats:?}");
    }

    /// Wraps ReliableSender but replaces every 5th first transmission with
    /// a trimmed header (the virtual switch).
    struct LossySender {
        inner: ReliableSender,
    }

    impl LossySender {
        async fn run(&self, socket: &UdpSocket, proxy: SocketAddr) -> io::Result<TransferStats> {
            // Reimplementation of the send loop with trimming injected;
            // small enough to duplicate for the test's clarity.
            let s = &self.inner;
            let payload = vec![0u8; MAX_PAYLOAD];
            let start = Instant::now();
            let mut stats = TransferStats {
                total_packets: s.total_packets,
                ..Default::default()
            };
            let mut next_new = 0u64;
            let mut acked = BTreeSet::new();
            let mut inflight: Vec<(u64, Instant)> = Vec::new();
            let mut rtx: BTreeSet<u64> = BTreeSet::new();
            let mut first_tx_done: BTreeSet<u64> = BTreeSet::new();
            let mut buf = [0u8; 2048];
            while (acked.len() as u64) < s.total_packets {
                if start.elapsed() > s.deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "incomplete"));
                }
                while inflight.len() < s.window {
                    let seq = if let Some(&q) = rtx.iter().next() {
                        rtx.remove(&q);
                        q
                    } else if next_new < s.total_packets {
                        next_new += 1;
                        next_new - 1
                    } else {
                        break;
                    };
                    if acked.contains(&seq) {
                        continue;
                    }
                    let trim_this = seq % 5 == 0 && first_tx_done.insert(seq);
                    let wire = if trim_this {
                        WireHeader::trimmed(s.flow, seq).encode(&[])
                    } else {
                        first_tx_done.insert(seq);
                        WireHeader::data(s.flow, seq, MAX_PAYLOAD as u16).encode(&payload)
                    };
                    socket.send_to(&wire, proxy).await?;
                    stats.transmissions += 1;
                    inflight.push((seq, Instant::now()));
                }
                match tokio::time::timeout(Duration::from_millis(5), socket.recv_from(&mut buf))
                    .await
                {
                    Ok(Ok((n, _))) => {
                        if let Ok((h, _)) = WireHeader::decode(&buf[..n]) {
                            if h.flow != s.flow {
                                continue;
                            }
                            if h.flags.contains(Flags::ACK) {
                                acked.insert(h.seq);
                                inflight.retain(|&(q, _)| q != h.seq);
                            } else if h.flags.contains(Flags::NACK) && !acked.contains(&h.seq) {
                                inflight.retain(|&(q, _)| q != h.seq);
                                stats.nack_retransmits += 1;
                                rtx.insert(h.seq);
                            }
                        }
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(_) => {}
                }
                let now = Instant::now();
                inflight.retain(|&(seq, sent)| {
                    if now.duration_since(sent) > s.rto && !acked.contains(&seq) {
                        stats.timeout_retransmits += 1;
                        rtx.insert(seq);
                        false
                    } else {
                        true
                    }
                });
            }
            stats.elapsed = start.elapsed();
            Ok(stats)
        }
    }
}
