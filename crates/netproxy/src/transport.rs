//! A minimal reliable transport over the wire format, for closed-loop
//! demonstrations through the live Streamlined proxy.
//!
//! This is deliberately a *small* NACK-driven ARQ, not a congestion-
//! controlled stack: a fixed window, per-packet ACKs, retransmission on
//! NACK (the proxy's early loss signal) and a retransmission timer as the
//! last resort — just enough machinery to show a real transfer surviving
//! virtual-switch trimming end to end over sockets.

use crate::wire::{Flags, WireHeader, MAX_PAYLOAD};
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use tokio::net::UdpSocket;

/// Why a transfer failed — typed so callers can distinguish "the network
/// never delivered" from "the socket broke" without parsing error strings.
#[derive(Debug)]
pub enum TransportError {
    /// The deadline expired with the transfer incomplete.
    Deadline {
        /// Packets finished (acked on the sender, received on the receiver).
        done: u64,
        /// Packets in the flow.
        total: u64,
    },
    /// A socket operation failed.
    Io(io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Deadline { done, total } => {
                write!(f, "deadline expired with {done}/{total} packets done")
            }
            TransportError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Deadline { .. } => None,
        }
    }
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Degradation policy for [`ReliableSender::run_with_fallback`]: when the
/// proxy path stays silent too long, abandon it for the direct path and
/// re-probe the proxy with exponential backoff — the real-socket mirror of
/// the simulator's sender-side failover.
#[derive(Debug, Clone, Copy)]
pub struct FallbackConfig {
    /// Consecutive RTO-lengths of feedback silence before failing over.
    pub rto_threshold: u32,
    /// Cap on the exponential probe backoff while degraded.
    pub probe_backoff_max: Duration,
}

impl Default for FallbackConfig {
    fn default() -> Self {
        FallbackConfig {
            rto_threshold: 3,
            probe_backoff_max: Duration::from_secs(1),
        }
    }
}

/// Transfer statistics returned by [`ReliableSender::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TransferStats {
    /// Distinct packets in the flow.
    pub total_packets: u64,
    /// Transmissions (first sends + retransmissions).
    pub transmissions: u64,
    /// Retransmissions triggered by NACKs.
    pub nack_retransmits: u64,
    /// Retransmissions triggered by the timer.
    pub timeout_retransmits: u64,
    /// Failovers from the proxy path to the direct path.
    pub failovers: u64,
    /// Probe packets sent through the proxy while degraded.
    pub proxy_probes: u64,
    /// Failbacks onto a recovered proxy.
    pub failbacks: u64,
    /// Wall-clock completion time.
    pub elapsed: Duration,
}

/// Configuration of the reliable sender.
#[derive(Debug, Clone, Copy)]
pub struct ReliableSender {
    /// Flow id stamped on every packet.
    pub flow: u64,
    /// Packets to transfer.
    pub total_packets: u64,
    /// Maximum unacknowledged packets in flight.
    pub window: usize,
    /// Retransmission timeout (last resort; NACKs normally arrive first).
    pub rto: Duration,
    /// Give up after this long.
    pub deadline: Duration,
}

impl ReliableSender {
    /// Runs the transfer through `proxy` (which forwards to the receiver
    /// and reflects NACKs), driven by `socket`.
    ///
    /// # Errors
    /// [`TransportError::Io`] on socket failure, [`TransportError::Deadline`]
    /// if the deadline expires.
    pub async fn run(
        &self,
        socket: &UdpSocket,
        proxy: SocketAddr,
    ) -> Result<TransferStats, TransportError> {
        self.run_inner(socket, proxy, None, FallbackConfig::default())
            .await
    }

    /// Like [`ReliableSender::run`], but degrades gracefully when the proxy
    /// dies: after `fallback.rto_threshold` RTO-lengths of feedback silence
    /// the sender retransmits everything outstanding straight to `direct`
    /// (the receiver), keeps probing the proxy with exponential backoff, and
    /// fails back the moment feedback arrives from the proxy again.
    ///
    /// # Errors
    /// [`TransportError::Io`] on socket failure, [`TransportError::Deadline`]
    /// if the deadline expires even on the direct path.
    pub async fn run_with_fallback(
        &self,
        socket: &UdpSocket,
        proxy: SocketAddr,
        direct: SocketAddr,
        fallback: FallbackConfig,
    ) -> Result<TransferStats, TransportError> {
        assert!(
            fallback.rto_threshold > 0,
            "threshold 0 would never use the proxy"
        );
        self.run_inner(socket, proxy, Some(direct), fallback).await
    }

    async fn run_inner(
        &self,
        socket: &UdpSocket,
        proxy: SocketAddr,
        direct: Option<SocketAddr>,
        fallback: FallbackConfig,
    ) -> Result<TransferStats, TransportError> {
        assert!(
            self.total_packets > 0 && self.window > 0,
            "invalid transfer"
        );
        let payload = vec![0x3Cu8; MAX_PAYLOAD];
        let start = Instant::now();
        let mut stats = TransferStats {
            total_packets: self.total_packets,
            ..Default::default()
        };
        let mut next_new: u64 = 0;
        let mut acked: BTreeSet<u64> = BTreeSet::new();
        // (seq, last transmission time) of in-flight packets.
        let mut inflight: Vec<(u64, Instant)> = Vec::new();
        let mut rtx: BTreeSet<u64> = BTreeSet::new();
        let mut buf = [0u8; 2048];
        // Degradation state (active only when a direct path is given).
        let mut degraded = false;
        let mut last_feedback = Instant::now();
        let mut probe_backoff = self.rto.min(fallback.probe_backoff_max);
        let mut next_probe = Instant::now();

        while (acked.len() as u64) < self.total_packets {
            if start.elapsed() > self.deadline {
                return Err(TransportError::Deadline {
                    done: acked.len() as u64,
                    total: self.total_packets,
                });
            }
            let dest = if degraded {
                direct.expect("degraded implies direct")
            } else {
                proxy
            };
            // Fill the window: retransmissions first.
            while inflight.len() < self.window {
                let seq = if let Some(&seq) = rtx.iter().next() {
                    rtx.remove(&seq);
                    seq
                } else if next_new < self.total_packets {
                    next_new += 1;
                    next_new - 1
                } else {
                    break;
                };
                if acked.contains(&seq) {
                    continue;
                }
                let wire = WireHeader::data(self.flow, seq, MAX_PAYLOAD as u16).encode(&payload);
                socket.send_to(&wire, dest).await?;
                stats.transmissions += 1;
                inflight.push((seq, Instant::now()));
            }
            // While degraded, keep asking the proxy whether it is back: one
            // duplicate data packet per backoff interval. The receiver acks
            // duplicates, so a live proxy relays proof of life.
            if degraded && Instant::now() >= next_probe {
                let probe_seq = (0..self.total_packets)
                    .find(|s| !acked.contains(s))
                    .unwrap_or(0);
                let wire =
                    WireHeader::data(self.flow, probe_seq, MAX_PAYLOAD as u16).encode(&payload);
                socket.send_to(&wire, proxy).await?;
                stats.proxy_probes += 1;
                probe_backoff = (probe_backoff * 2).min(fallback.probe_backoff_max);
                next_probe = Instant::now() + probe_backoff;
            }
            // Reap feedback (bounded wait so timers stay responsive).
            match tokio::time::timeout(Duration::from_millis(5), socket.recv_from(&mut buf)).await {
                Ok(Ok((n, from))) => {
                    if let Ok((header, _)) = WireHeader::decode(&buf[..n]) {
                        if header.flow != self.flow {
                            continue;
                        }
                        let feedback =
                            header.flags.contains(Flags::ACK) || header.flags.contains(Flags::NACK);
                        if feedback {
                            last_feedback = Instant::now();
                            if degraded && from == proxy {
                                // The proxy relayed feedback: it is alive
                                // again. Fail back onto the shared path.
                                degraded = false;
                                stats.failbacks += 1;
                                probe_backoff = self.rto.min(fallback.probe_backoff_max);
                            }
                        }
                        if header.flags.contains(Flags::ACK) {
                            acked.insert(header.seq);
                            inflight.retain(|&(s, _)| s != header.seq);
                        } else if header.flags.contains(Flags::NACK) && !acked.contains(&header.seq)
                        {
                            inflight.retain(|&(s, _)| s != header.seq);
                            stats.nack_retransmits += 1;
                            rtx.insert(header.seq);
                        }
                    }
                }
                Ok(Err(e)) => return Err(e.into()),
                Err(_elapsed) => {}
            }
            // Timer-based recovery for anything silent past the RTO.
            let now = Instant::now();
            let rto = self.rto;
            inflight.retain(|&(seq, sent)| {
                if now.duration_since(sent) > rto && !acked.contains(&seq) {
                    stats.timeout_retransmits += 1;
                    rtx.insert(seq);
                    false
                } else {
                    true
                }
            });
            // Sustained silence on the proxy path: give up on it and move
            // everything outstanding to the direct path.
            if !degraded
                && direct.is_some()
                && last_feedback.elapsed() >= self.rto * fallback.rto_threshold
            {
                degraded = true;
                stats.failovers += 1;
                for &(seq, _) in &inflight {
                    rtx.insert(seq);
                }
                inflight.clear();
                probe_backoff = self.rto.min(fallback.probe_backoff_max);
                next_probe = Instant::now() + probe_backoff;
                last_feedback = Instant::now();
            }
        }
        stats.elapsed = start.elapsed();
        Ok(stats)
    }
}

/// The matching receiver: acks every data packet back through the proxy
/// and completes once it holds every sequence.
pub struct ReliableReceiver {
    /// Flow id to serve.
    pub flow: u64,
    /// Packets expected.
    pub total_packets: u64,
}

impl ReliableReceiver {
    /// Serves the flow on `socket` until complete (acks are addressed to
    /// the datagram source — the proxy when relayed, the sender itself when
    /// it has failed over to the direct path).
    /// Returns the number of duplicate data packets seen.
    pub async fn run(&self, socket: &UdpSocket, deadline: Duration) -> Result<u64, TransportError> {
        let start = Instant::now();
        let mut received: BTreeSet<u64> = BTreeSet::new();
        let mut duplicates = 0u64;
        let mut buf = [0u8; 2048];
        while (received.len() as u64) < self.total_packets {
            if start.elapsed() > deadline {
                return Err(TransportError::Deadline {
                    done: received.len() as u64,
                    total: self.total_packets,
                });
            }
            let Ok(recv) =
                tokio::time::timeout(Duration::from_millis(100), socket.recv_from(&mut buf)).await
            else {
                continue;
            };
            let (n, from) = recv?;
            let Ok((header, _payload)) = WireHeader::decode(&buf[..n]) else {
                continue;
            };
            if header.flow != self.flow || !header.flags.contains(Flags::DATA) {
                continue;
            }
            if !received.insert(header.seq) {
                duplicates += 1;
            }
            let ack = WireHeader::ack(self.flow, header.seq).encode(&[]);
            socket.send_to(&ack, from).await?;
        }
        Ok(duplicates)
    }
}

// Socket tests are skipped under Miri (real sockets need real syscalls).
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::streamlined::StreamlinedUdpProxy;
    use crate::testutil::loopback;

    /// Full closed loop: sender -> proxy -> receiver, acks back through
    /// the proxy, no loss.
    #[tokio::test]
    async fn lossless_transfer_completes() {
        let recv_sock = UdpSocket::bind(loopback()).await.unwrap();
        let recv_addr = recv_sock.local_addr().unwrap();
        let proxy = StreamlinedUdpProxy::start(loopback(), recv_addr)
            .await
            .unwrap();
        let receiver = tokio::spawn(async move {
            ReliableReceiver {
                flow: 1,
                total_packets: 200,
            }
            .run(&recv_sock, Duration::from_secs(10))
            .await
        });
        let send_sock = UdpSocket::bind(loopback()).await.unwrap();
        let stats = ReliableSender {
            flow: 1,
            total_packets: 200,
            window: 32,
            rto: Duration::from_millis(200),
            deadline: Duration::from_secs(10),
        }
        .run(&send_sock, proxy.local_addr())
        .await
        .unwrap();
        let dups = receiver.await.unwrap().unwrap();
        assert_eq!(stats.total_packets, 200);
        assert!(stats.transmissions >= 200);
        let _ = dups; // duplicates possible under kernel-buffer pressure
    }

    /// Datagrams trimmed before the proxy must be recovered via the
    /// proxy's NACKs, not the RTO.
    #[tokio::test]
    async fn trimmed_packets_recovered_by_nacks() {
        let recv_sock = UdpSocket::bind(loopback()).await.unwrap();
        let recv_addr = recv_sock.local_addr().unwrap();
        let proxy = StreamlinedUdpProxy::start(loopback(), recv_addr)
            .await
            .unwrap();
        let proxy_addr = proxy.local_addr();
        let receiver = tokio::spawn(async move {
            ReliableReceiver {
                flow: 2,
                total_packets: 100,
            }
            .run(&recv_sock, Duration::from_secs(15))
            .await
        });
        // A lossy "switch" in front of the proxy: trims every 5th packet's
        // first transmission.
        let send_sock = UdpSocket::bind(loopback()).await.unwrap();
        let lossy = LossySender {
            inner: ReliableSender {
                flow: 2,
                total_packets: 100,
                window: 16,
                rto: Duration::from_secs(5), // long: force NACK recovery
                deadline: Duration::from_secs(15),
            },
        };
        let stats = lossy.run(&send_sock, proxy_addr).await.unwrap();
        receiver.await.unwrap().unwrap();
        assert!(stats.nack_retransmits >= 15, "{stats:?}");
        assert_eq!(
            stats.timeout_retransmits, 0,
            "NACKs must beat the RTO: {stats:?}"
        );
    }

    /// A dead proxy (bound socket that never answers) must not stall the
    /// transfer: the sender fails over to the direct path and completes.
    #[tokio::test]
    async fn dead_proxy_fails_over_to_direct() {
        let recv_sock = UdpSocket::bind(loopback()).await.unwrap();
        let recv_addr = recv_sock.local_addr().unwrap();
        // Bound but never read: every datagram to it disappears.
        let dead_proxy = UdpSocket::bind(loopback()).await.unwrap();
        let dead_addr = dead_proxy.local_addr().unwrap();
        let receiver = tokio::spawn(async move {
            ReliableReceiver {
                flow: 3,
                total_packets: 50,
            }
            .run(&recv_sock, Duration::from_secs(15))
            .await
        });
        let send_sock = UdpSocket::bind(loopback()).await.unwrap();
        let stats = ReliableSender {
            flow: 3,
            total_packets: 50,
            window: 16,
            rto: Duration::from_millis(50),
            deadline: Duration::from_secs(15),
        }
        .run_with_fallback(
            &send_sock,
            dead_addr,
            recv_addr,
            FallbackConfig {
                rto_threshold: 2,
                probe_backoff_max: Duration::from_secs(1),
            },
        )
        .await
        .unwrap();
        receiver.await.unwrap().unwrap();
        assert!(stats.failovers >= 1, "{stats:?}");
        assert_eq!(stats.failbacks, 0, "dead proxy cannot recover: {stats:?}");
    }

    /// With a healthy proxy the fallback machinery must stay dormant.
    #[tokio::test]
    async fn healthy_proxy_never_fails_over() {
        let recv_sock = UdpSocket::bind(loopback()).await.unwrap();
        let recv_addr = recv_sock.local_addr().unwrap();
        let proxy = StreamlinedUdpProxy::start(loopback(), recv_addr)
            .await
            .unwrap();
        let receiver = tokio::spawn(async move {
            ReliableReceiver {
                flow: 4,
                total_packets: 100,
            }
            .run(&recv_sock, Duration::from_secs(10))
            .await
        });
        let send_sock = UdpSocket::bind(loopback()).await.unwrap();
        let stats = ReliableSender {
            flow: 4,
            total_packets: 100,
            window: 32,
            rto: Duration::from_millis(500),
            deadline: Duration::from_secs(10),
        }
        .run_with_fallback(
            &send_sock,
            proxy.local_addr(),
            recv_addr,
            FallbackConfig::default(),
        )
        .await
        .unwrap();
        receiver.await.unwrap().unwrap();
        assert_eq!(stats.failovers, 0, "{stats:?}");
        assert_eq!(stats.proxy_probes, 0, "{stats:?}");
    }

    /// The sender's deadline error carries typed progress, not a string.
    #[tokio::test]
    async fn deadline_error_is_typed() {
        // No proxy, no direct path: nothing can ever be acked.
        let dead_proxy = UdpSocket::bind(loopback()).await.unwrap();
        let dead_addr = dead_proxy.local_addr().unwrap();
        let send_sock = UdpSocket::bind(loopback()).await.unwrap();
        let err = ReliableSender {
            flow: 5,
            total_packets: 10,
            window: 4,
            rto: Duration::from_millis(20),
            deadline: Duration::from_millis(200),
        }
        .run(&send_sock, dead_addr)
        .await
        .unwrap_err();
        match err {
            TransportError::Deadline { done, total } => {
                assert_eq!(done, 0);
                assert_eq!(total, 10);
            }
            other => panic!("expected Deadline, got {other}"),
        }
    }

    /// Wraps ReliableSender but replaces every 5th first transmission with
    /// a trimmed header (the virtual switch).
    struct LossySender {
        inner: ReliableSender,
    }

    impl LossySender {
        async fn run(&self, socket: &UdpSocket, proxy: SocketAddr) -> io::Result<TransferStats> {
            // Reimplementation of the send loop with trimming injected;
            // small enough to duplicate for the test's clarity.
            let s = &self.inner;
            let payload = vec![0u8; MAX_PAYLOAD];
            let start = Instant::now();
            let mut stats = TransferStats {
                total_packets: s.total_packets,
                ..Default::default()
            };
            let mut next_new = 0u64;
            let mut acked = BTreeSet::new();
            let mut inflight: Vec<(u64, Instant)> = Vec::new();
            let mut rtx: BTreeSet<u64> = BTreeSet::new();
            let mut first_tx_done: BTreeSet<u64> = BTreeSet::new();
            let mut buf = [0u8; 2048];
            while (acked.len() as u64) < s.total_packets {
                if start.elapsed() > s.deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "incomplete"));
                }
                while inflight.len() < s.window {
                    let seq = if let Some(&q) = rtx.iter().next() {
                        rtx.remove(&q);
                        q
                    } else if next_new < s.total_packets {
                        next_new += 1;
                        next_new - 1
                    } else {
                        break;
                    };
                    if acked.contains(&seq) {
                        continue;
                    }
                    let trim_this = seq % 5 == 0 && first_tx_done.insert(seq);
                    let wire = if trim_this {
                        WireHeader::trimmed(s.flow, seq).encode(&[])
                    } else {
                        first_tx_done.insert(seq);
                        WireHeader::data(s.flow, seq, MAX_PAYLOAD as u16).encode(&payload)
                    };
                    socket.send_to(&wire, proxy).await?;
                    stats.transmissions += 1;
                    inflight.push((seq, Instant::now()));
                }
                match tokio::time::timeout(Duration::from_millis(5), socket.recv_from(&mut buf))
                    .await
                {
                    Ok(Ok((n, _))) => {
                        if let Ok((h, _)) = WireHeader::decode(&buf[..n]) {
                            if h.flow != s.flow {
                                continue;
                            }
                            if h.flags.contains(Flags::ACK) {
                                acked.insert(h.seq);
                                inflight.retain(|&(q, _)| q != h.seq);
                            } else if h.flags.contains(Flags::NACK) && !acked.contains(&h.seq) {
                                inflight.retain(|&(q, _)| q != h.seq);
                                stats.nack_retransmits += 1;
                                rtx.insert(h.seq);
                            }
                        }
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(_) => {}
                }
                let now = Instant::now();
                inflight.retain(|&(seq, sent)| {
                    if now.duration_since(sent) > s.rto && !acked.contains(&seq) {
                        stats.timeout_retransmits += 1;
                        rtx.insert(seq);
                        false
                    } else {
                        true
                    }
                });
            }
            stats.elapsed = start.elapsed();
            Ok(stats)
        }
    }
}
