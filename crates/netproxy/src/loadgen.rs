//! iperf-like load generation for the testbed experiments (§5).
//!
//! The paper drives its proxies with "a 10Gbps line rate for 30 seconds"
//! of iperf traffic. [`TcpLoadGen`] reproduces that shape for the Naive
//! proxy (constant-rate byte stream over TCP); [`UdpLoadGen`] does so for
//! the Streamlined proxy, additionally emulating **switch trimming** with
//! a token bucket: datagrams that exceed the virtual switch's drain rate
//! are cut to trimmed headers before they reach the proxy, standing in
//! for the trimming hardware the paper assumes.
//!
//! For the line-rate datapath experiments (ROADMAP item 3) there is a
//! third generator, [`BatchLoadGen`]: M OS threads drive thousands of
//! concurrent flows **open-loop** (packets leave on schedule whether or
//! not earlier ones were answered — the methodology that exposes
//! coordinated-omission-free tail latency) through the same batched
//! socket layer the sharded relay uses, stamping each payload with a
//! send timestamp. [`BatchSink`] is its receiving end: it parses the
//! stamps and accumulates one-way latency into an HDR-style histogram,
//! so runs report p50/p99/p999 added latency rather than means.

use crate::batch::{self, BatchIo, RecvRing, SendQueue, SocketLayer, BATCH};
use crate::wire::{DatagramView, Flags, WireHeader, MAX_PAYLOAD};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream, UdpSocket};
use trace::LatencyRecorder;

/// Outcome of a load-generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadStats {
    /// Full datagrams / bytes put on the wire.
    pub sent_packets: u64,
    /// Bytes of payload sent.
    pub sent_bytes: u64,
    /// Datagrams trimmed by the virtual switch (UDP mode only).
    pub trimmed_packets: u64,
}

/// A rate-paced TCP byte-stream generator (the Naive-proxy workload).
#[derive(Debug, Clone, Copy)]
pub struct TcpLoadGen {
    /// Target rate in bits per second.
    pub rate_bps: u64,
    /// How long to transmit.
    pub duration: Duration,
    /// Write chunk size in bytes.
    pub chunk: usize,
}

impl TcpLoadGen {
    /// A scaled-down default: 200 Mbit/s for 1 s in 16 KiB chunks (the
    /// paper's 10 Gbps × 30 s shape, sized for CI).
    pub fn scaled_default() -> Self {
        TcpLoadGen {
            rate_bps: 200_000_000,
            duration: Duration::from_secs(1),
            chunk: 16 * 1024,
        }
    }

    /// Connects to `target` and streams at the configured rate.
    pub async fn run(&self, target: SocketAddr) -> io::Result<LoadStats> {
        assert!(self.rate_bps > 0 && self.chunk > 0, "invalid load config");
        let mut stream = TcpStream::connect(target).await?;
        stream.set_nodelay(true)?;
        let payload = vec![0x42u8; self.chunk];
        let start = Instant::now();
        let mut stats = LoadStats::default();
        while start.elapsed() < self.duration {
            // Token pacing: how many bytes should have left by now?
            let due = (start.elapsed().as_secs_f64() * self.rate_bps as f64 / 8.0) as u64;
            if stats.sent_bytes < due {
                stream.write_all(&payload).await?;
                stats.sent_bytes += self.chunk as u64;
                stats.sent_packets += 1;
            } else {
                tokio::time::sleep(Duration::from_micros(100)).await;
            }
        }
        stream.shutdown().await?;
        Ok(stats)
    }
}

/// Byte-counting TCP sink; returns its address and a live byte counter.
pub async fn tcp_sink() -> io::Result<(SocketAddr, Arc<AtomicU64>)> {
    let listener = TcpListener::bind("127.0.0.1:0".parse::<SocketAddr>().expect("addr")).await?;
    let addr = listener.local_addr()?;
    let counter = Arc::new(AtomicU64::new(0));
    let c = counter.clone();
    tokio::spawn(async move {
        while let Ok((mut s, _)) = listener.accept().await {
            let c = c.clone();
            tokio::spawn(async move {
                let mut buf = vec![0u8; 64 * 1024];
                loop {
                    match s.read(&mut buf).await {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            // ordering: Relaxed — monotone byte counter, no payload.
                            c.fetch_add(n as u64, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    Ok((addr, counter))
}

/// A rate-paced UDP datagram generator with a virtual trimming switch
/// (the Streamlined-proxy workload).
#[derive(Debug, Clone, Copy)]
pub struct UdpLoadGen {
    /// Flow id stamped on every datagram.
    pub flow: u64,
    /// Target offered rate in bits per second.
    pub rate_bps: u64,
    /// How long to transmit.
    pub duration: Duration,
    /// The virtual switch's drain rate; offered load beyond it is trimmed.
    pub switch_rate_bps: u64,
    /// The virtual switch's queue depth in bytes.
    pub switch_buffer_bytes: u64,
}

impl UdpLoadGen {
    /// A scaled-down default: offer 100 Mbit/s against an 80 Mbit/s
    /// virtual switch for 1 s — ~20% of datagrams arrive trimmed, so the
    /// proxy's NACK path is exercised alongside forwarding.
    pub fn scaled_default(flow: u64) -> Self {
        UdpLoadGen {
            flow,
            rate_bps: 100_000_000,
            duration: Duration::from_secs(1),
            switch_rate_bps: 80_000_000,
            switch_buffer_bytes: 256 * 1024,
        }
    }

    /// Sends data datagrams to `target` (the proxy), trimming whatever the
    /// virtual switch cannot absorb.
    pub async fn run(&self, socket: &UdpSocket, target: SocketAddr) -> io::Result<LoadStats> {
        assert!(
            self.rate_bps > 0 && self.switch_rate_bps > 0,
            "invalid load config"
        );
        let payload = vec![0x17u8; MAX_PAYLOAD];
        let start = Instant::now();
        let mut stats = LoadStats::default();
        let mut seq = 0u64;
        // Virtual switch state: a token-bucket queue. Only *accepted*
        // (untrimmed) bytes occupy the queue; it drains continuously at
        // the switch rate.
        let mut offered: u64 = 0;
        let mut accepted: u64 = 0;
        while start.elapsed() < self.duration {
            let due = (start.elapsed().as_secs_f64() * self.rate_bps as f64 / 8.0) as u64;
            if offered >= due {
                tokio::time::sleep(Duration::from_micros(100)).await;
                continue;
            }
            let drained =
                (start.elapsed().as_secs_f64() * self.switch_rate_bps as f64 / 8.0) as u64;
            let queued = accepted.saturating_sub(drained);
            let datagram = if queued + MAX_PAYLOAD as u64 > self.switch_buffer_bytes {
                // Virtual switch full: trim the payload, forward the header.
                stats.trimmed_packets += 1;
                WireHeader::trimmed(self.flow, seq).encode(&[])
            } else {
                stats.sent_bytes += MAX_PAYLOAD as u64;
                accepted += MAX_PAYLOAD as u64;
                WireHeader::data(self.flow, seq, MAX_PAYLOAD as u16).encode(&payload)
            };
            socket.send_to(&datagram, target).await?;
            stats.sent_packets += 1;
            offered += MAX_PAYLOAD as u64;
            seq += 1;
        }
        Ok(stats)
    }
}

/// Bytes of payload reserved for the send timestamp (nanos since the
/// run's shared epoch, big-endian).
pub const TIMESTAMP_LEN: usize = 8;

/// A multi-threaded open-loop batched datagram generator — thousands of
/// flows, `sendmmsg` bursts, per-payload send timestamps.
///
/// Open-loop means the schedule never waits for the network: if the
/// datapath under test stalls, packets queue and their measured latency
/// grows, exactly as a real sender population would experience it.
/// `rate_pps == 0` disables pacing entirely (send as fast as the socket
/// accepts) — the mode used to find a datapath's saturation throughput.
///
/// NACK backflow (trimmed datagrams bounced by the streamlined relay)
/// is drained opportunistically whenever a worker is ahead of its
/// schedule, so paced runs account for every packet; unpaced runs with
/// `trim_fraction > 0` may shed backflow at the kernel buffer instead.
#[derive(Debug, Clone, Copy)]
pub struct BatchLoadGen {
    /// Worker (client population) threads.
    pub threads: usize,
    /// Concurrent flows per worker; total flows = `threads × this`.
    pub flows_per_thread: usize,
    /// Aggregate target packet rate across all workers; 0 = unthrottled.
    pub rate_pps: u64,
    /// How long to transmit.
    pub duration: Duration,
    /// Fraction of datagrams sent as trimmed headers (virtual switch).
    pub trim_fraction: f64,
    /// Payload bytes per data datagram (≥ [`TIMESTAMP_LEN`]).
    pub payload_len: usize,
    /// Socket layer (mmsg or portable fallback).
    pub layer: SocketLayer,
    /// How long each worker keeps draining NACK backflow after its send
    /// clock runs out. Fault-injected relays (delay faults, restart
    /// windows) can hold feedback far longer than a clean datapath, so
    /// soak runs need a real grace period for the ledger to balance.
    pub drain_grace: Duration,
}

impl BatchLoadGen {
    /// A CI-sized smoke shape: 2 workers × 64 flows at 20k pkts/sec
    /// aggregate for `duration`, no trimming.
    pub fn smoke(duration: Duration) -> Self {
        BatchLoadGen {
            threads: 2,
            flows_per_thread: 64,
            rate_pps: 20_000,
            duration,
            trim_fraction: 0.0,
            payload_len: 64,
            layer: SocketLayer::Auto,
            drain_grace: Duration::from_millis(10),
        }
    }

    /// Drives `target` from `threads` workers and merges their reports.
    /// `epoch` is the timestamp base shared with the [`BatchSink`].
    ///
    /// # Errors
    /// Socket setup errors; send errors are *counted*, not returned.
    ///
    /// # Panics
    /// Panics on a zero thread/flow count or a payload shorter than
    /// [`TIMESTAMP_LEN`] / longer than [`MAX_PAYLOAD`].
    pub fn run(&self, target: SocketAddr, epoch: Instant) -> io::Result<BatchLoadReport> {
        assert!(self.threads >= 1 && self.flows_per_thread >= 1);
        assert!((TIMESTAMP_LEN..=MAX_PAYLOAD).contains(&self.payload_len));
        let start = Instant::now();
        let mut joins = Vec::with_capacity(self.threads);
        for w in 0..self.threads {
            let cfg = *self;
            joins.push(
                thread::Builder::new()
                    .name(format!("loadgen-{w}"))
                    .spawn(move || cfg.worker(w, target, epoch))?,
            );
        }
        let mut report = BatchLoadReport::default();
        for j in joins {
            let out = j.join().expect("loadgen worker panicked")?;
            report.sent_packets += out.sent;
            report.sent_bytes += out.bytes;
            report.trimmed_sent += out.trimmed;
            report.nacks_received += out.nacks;
            report.send_errors += out.send_errors;
        }
        report.elapsed = start.elapsed();
        Ok(report)
    }

    /// One worker: a private socket, a private flow range, open-loop
    /// pacing against its share of the aggregate rate.
    fn worker(self, index: usize, target: SocketAddr, epoch: Instant) -> io::Result<WorkerOut> {
        let bind: SocketAddr = if target.is_ipv4() {
            SocketAddr::from(([127, 0, 0, 1], 0))
        } else {
            "[::1]:0".parse().expect("addr")
        };
        // bind_reuseport is used for its enlarged buffers, not sharing.
        let mut io = batch::open(batch::bind_reuseport(bind)?, self.layer)?;
        let mut ring = RecvRing::new();
        let mut queue = SendQueue::new();
        let mut rng = trace::SplitMix64::new(0xC0FF_EE00 ^ index as u64);
        let pps = if self.rate_pps == 0 {
            0
        } else {
            (self.rate_pps / self.threads as u64).max(1)
        };
        let first_flow = (index * self.flows_per_thread) as u64 + 1;
        let mut seqs = vec![0u64; self.flows_per_thread];
        let mut payload = vec![0x17u8; self.payload_len];
        let mut cursor = 0usize;
        let mut out = WorkerOut::default();
        let start = Instant::now();
        while start.elapsed() < self.duration {
            let due = if pps == 0 {
                u64::MAX
            } else {
                (start.elapsed().as_secs_f64() * pps as f64) as u64
            };
            if out.sent >= due {
                // Ahead of schedule: spend the slack draining backflow
                // (recv_batch blocks at most its 2 ms poll quantum).
                drain_feedback(io.as_mut(), &mut ring, &mut out.nacks);
                continue;
            }
            let burst = (due - out.sent).min(BATCH as u64) as usize;
            ring.reset();
            queue.clear();
            for _ in 0..burst {
                let flow = first_flow + cursor as u64;
                let seq = seqs[cursor];
                seqs[cursor] += 1;
                cursor = (cursor + 1) % self.flows_per_thread;
                let trim = self.trim_fraction > 0.0
                    && (rng.next_u64() as f64 / u64::MAX as f64) < self.trim_fraction;
                let (slot, len) = ring
                    .stage(|buf| {
                        if trim {
                            WireHeader::trimmed(flow, seq).encode_into(buf, &[])
                        } else {
                            let ts = epoch.elapsed().as_nanos() as u64;
                            payload[..TIMESTAMP_LEN].copy_from_slice(&ts.to_be_bytes());
                            WireHeader::data(flow, seq, self.payload_len as u16)
                                .encode_into(buf, &payload)
                        }
                    })
                    .expect("burst <= BATCH");
                queue.push_slot(slot, len, target);
                if trim {
                    out.trimmed += 1;
                } else {
                    out.bytes += self.payload_len as u64;
                }
            }
            let outcome = io.send_batch(&ring, &queue)?;
            out.sent += burst as u64;
            out.send_errors += outcome.errors;
        }
        // Catch NACKs still in flight when the clock ran out (each
        // drain round blocks at most the 2 ms recv poll quantum).
        let grace_until = Instant::now() + self.drain_grace;
        while Instant::now() < grace_until {
            drain_feedback(io.as_mut(), &mut ring, &mut out.nacks);
        }
        Ok(out)
    }
}

/// Counts NACKs sitting in the worker socket's receive queue.
fn drain_feedback(io: &mut dyn BatchIo, ring: &mut RecvRing, nacks: &mut u64) {
    if let Ok(n) = io.recv_batch(ring) {
        for i in 0..n {
            if let Ok(view) = DatagramView::parse(ring.datagram(i)) {
                if view.flags().contains(Flags::NACK) {
                    *nacks += 1;
                }
            }
        }
    }
}

#[derive(Default)]
struct WorkerOut {
    sent: u64,
    bytes: u64,
    trimmed: u64,
    nacks: u64,
    send_errors: u64,
}

/// Merged outcome of a [`BatchLoadGen`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchLoadReport {
    /// Datagrams handed to the kernel (including failed attempts).
    pub sent_packets: u64,
    /// Payload bytes in successful data datagrams.
    pub sent_bytes: u64,
    /// Datagrams sent as trimmed headers.
    pub trimmed_sent: u64,
    /// NACKs drained from the backflow path.
    pub nacks_received: u64,
    /// Sends the kernel refused (surfaced, never swallowed).
    pub send_errors: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl BatchLoadReport {
    /// Successfully sent datagrams per second.
    pub fn achieved_pps(&self) -> f64 {
        let delivered = self.sent_packets - self.send_errors;
        delivered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Datagrams the kernel accepted.
    pub fn delivered(&self) -> u64 {
        self.sent_packets - self.send_errors
    }
}

/// Per-sink-shard counters, flushed once per batch.
#[derive(Debug, Default)]
struct SinkCounters {
    received: AtomicU64,
    bytes: AtomicU64,
    trimmed: AtomicU64,
    feedback: AtomicU64,
    malformed: AtomicU64,
}

/// A snapshot of everything a [`BatchSink`] has absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Data datagrams received.
    pub received: u64,
    /// Payload bytes received.
    pub bytes: u64,
    /// Trimmed headers received (naive relay forwards these).
    pub trimmed: u64,
    /// ACK/NACK datagrams received.
    pub feedback: u64,
    /// Datagrams that failed wire parsing.
    pub malformed: u64,
}

/// The batched receiving end of a [`BatchLoadGen`] run: reuseport
/// worker threads that parse payload timestamps into a shared one-way
/// latency histogram.
pub struct BatchSink {
    local_addr: SocketAddr,
    counters: Vec<Arc<SinkCounters>>,
    recorder: LatencyRecorder,
    stop: Arc<AtomicBool>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl BatchSink {
    /// Binds `threads` reuseport sockets on an ephemeral loopback port
    /// and starts absorbing. `epoch` must match the load generator's.
    ///
    /// # Errors
    /// Socket/bind errors.
    pub fn start(threads: usize, layer: SocketLayer, epoch: Instant) -> io::Result<BatchSink> {
        let threads = if batch::reuseport_available() {
            threads.max(1)
        } else {
            1
        };
        let first = batch::bind_reuseport(SocketAddr::from(([127, 0, 0, 1], 0)))?;
        let local_addr = first.local_addr()?;
        let mut sockets = vec![first];
        for _ in 1..threads {
            sockets.push(batch::bind_reuseport(local_addr)?);
        }
        let recorder = LatencyRecorder::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut counters = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for (i, socket) in sockets.into_iter().enumerate() {
            let mut io = batch::open(socket, layer)?;
            let c = Arc::new(SinkCounters::default());
            counters.push(c.clone());
            let stop = stop.clone();
            let recorder = recorder.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("sink-{i}"))
                    .spawn(move || {
                        let mut ring = RecvRing::new();
                        // ordering: Acquire — pairs with shutdown()'s Release store
                        // so work done before the stop request is visible here.
                        while !stop.load(Ordering::Acquire) {
                            let got = match io.recv_batch(&mut ring) {
                                Ok(n) => n,
                                Err(_) => break,
                            };
                            if got == 0 {
                                continue;
                            }
                            let now = epoch.elapsed().as_nanos() as u64;
                            let (mut rx, mut by, mut tr, mut fb, mut bad) = (0, 0, 0, 0, 0);
                            for i in 0..got {
                                match DatagramView::parse(ring.datagram(i)) {
                                    Ok(v) if v.flags().contains(Flags::DATA) => {
                                        if v.flags().contains(Flags::TRIMMED) {
                                            tr += 1;
                                            continue;
                                        }
                                        rx += 1;
                                        by += v.payload_len() as u64;
                                        let p = v.payload();
                                        if p.len() >= TIMESTAMP_LEN {
                                            let ts = u64::from_be_bytes(
                                                p[..TIMESTAMP_LEN].try_into().expect("len"),
                                            );
                                            recorder.record_nanos(now.saturating_sub(ts));
                                        }
                                    }
                                    Ok(_) => fb += 1,
                                    Err(_) => bad += 1,
                                }
                            }
                            // ordering: Relaxed — per-batch monotone counters; exact
                            // totals are read only after the thread joins.
                            c.received.fetch_add(rx, Ordering::Relaxed);
                            c.bytes.fetch_add(by, Ordering::Relaxed);
                            c.trimmed.fetch_add(tr, Ordering::Relaxed);
                            c.feedback.fetch_add(fb, Ordering::Relaxed);
                            c.malformed.fetch_add(bad, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn sink"),
            );
        }
        Ok(BatchSink {
            local_addr,
            counters,
            recorder,
            stop,
            handles,
        })
    }

    /// The sink's bound address (hand this to the relay / loadgen).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Merged counters across sink threads.
    pub fn stats(&self) -> SinkStats {
        let mut s = SinkStats::default();
        for c in &self.counters {
            // ordering: Relaxed — live snapshot; tolerates mid-batch staleness,
            // exact once shutdown() has joined the sink threads.
            s.received += c.received.load(Ordering::Relaxed);
            s.bytes += c.bytes.load(Ordering::Relaxed);
            s.trimmed += c.trimmed.load(Ordering::Relaxed);
            s.feedback += c.feedback.load(Ordering::Relaxed);
            s.malformed += c.malformed.load(Ordering::Relaxed);
        }
        s
    }

    /// One-way latency samples (nanos since the shared epoch's stamps).
    pub fn recorder(&self) -> &LatencyRecorder {
        &self.recorder
    }

    /// Stops and joins the sink threads.
    pub fn shutdown(&mut self) {
        // ordering: Release — pairs with the sink threads' Acquire poll.
        self.stop.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for BatchSink {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn scaled_defaults_are_sane() {
        let t = TcpLoadGen::scaled_default();
        assert!(t.rate_bps > 0 && t.chunk > 0);
        let u = UdpLoadGen::scaled_default(1);
        assert!(u.switch_rate_bps < u.rate_bps, "default must induce trims");
    }
}

// Socket tests are skipped under Miri (real loopback sockets).
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;

    #[tokio::test]
    async fn tcp_loadgen_hits_approximate_rate() {
        let (sink, counter) = tcp_sink().await.unwrap();
        let gen = TcpLoadGen {
            rate_bps: 80_000_000, // 10 MB/s
            duration: Duration::from_millis(500),
            chunk: 8192,
        };
        let stats = gen.run(sink).await.unwrap();
        // Expect ~5 MB ± 40% (CI machines jitter).
        assert!(
            (3_000_000..8_000_000).contains(&stats.sent_bytes),
            "sent {}",
            stats.sent_bytes
        );
        // Sink eventually sees everything.
        tokio::time::sleep(Duration::from_millis(200)).await;
        // ordering: Relaxed — test readback; the sleep above is the sync.
        assert_eq!(counter.load(Ordering::Relaxed), stats.sent_bytes);
    }

    #[tokio::test]
    async fn udp_loadgen_trims_overload() {
        let sink = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let target = sink.local_addr().unwrap();
        // Drain the sink so the kernel buffer doesn't drop.
        tokio::spawn(async move {
            let mut buf = [0u8; 2048];
            loop {
                if sink.recv_from(&mut buf).await.is_err() {
                    break;
                }
            }
        });
        let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let gen = UdpLoadGen {
            flow: 1,
            rate_bps: 40_000_000,
            duration: Duration::from_millis(400),
            switch_rate_bps: 20_000_000,
            switch_buffer_bytes: 64 * 1024,
        };
        let stats = gen.run(&sock, target).await.unwrap();
        assert!(stats.sent_packets > 100, "{stats:?}");
        // Offering 2x the drain rate must trim roughly half the packets.
        let frac = stats.trimmed_packets as f64 / stats.sent_packets as f64;
        assert!((0.25..0.75).contains(&frac), "trim fraction {frac}");
    }

    #[tokio::test]
    async fn udp_loadgen_no_trim_under_capacity() {
        let sink = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let target = sink.local_addr().unwrap();
        tokio::spawn(async move {
            let mut buf = [0u8; 2048];
            loop {
                if sink.recv_from(&mut buf).await.is_err() {
                    break;
                }
            }
        });
        let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let gen = UdpLoadGen {
            flow: 1,
            rate_bps: 10_000_000,
            duration: Duration::from_millis(300),
            switch_rate_bps: 100_000_000,
            switch_buffer_bytes: 1_000_000,
        };
        let stats = gen.run(&sock, target).await.unwrap();
        assert_eq!(stats.trimmed_packets, 0, "{stats:?}");
        assert!(stats.sent_packets > 50);
    }

    /// Polls `cond` for up to 2 s (sink counters flush per batch).
    fn wait_for(what: &str, cond: impl Fn() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn batch_loadgen_direct_to_sink_accounts_for_every_packet() {
        let epoch = Instant::now();
        let sink = BatchSink::start(1, SocketLayer::Auto, epoch).unwrap();
        let gen = BatchLoadGen::smoke(Duration::from_millis(300));
        let report = gen.run(sink.local_addr(), epoch).unwrap();
        assert!(report.sent_packets > 1_000, "{report:?}");
        assert_eq!(report.send_errors, 0, "{report:?}");
        wait_for("all packets at sink", || {
            sink.stats().received == report.delivered()
        });
        assert!(
            sink.recorder().count() >= report.delivered(),
            "every data payload carries a timestamp"
        );
        assert_eq!(sink.stats().malformed, 0);
    }

    #[test]
    fn batch_loadgen_counts_nack_backflow_through_relay() {
        use crate::shard::{RelayConfig, ShardedRelay};
        let epoch = Instant::now();
        let sink = BatchSink::start(1, SocketLayer::Auto, epoch).unwrap();
        let relay = ShardedRelay::start(
            SocketAddr::from(([127, 0, 0, 1], 0)),
            RelayConfig {
                shards: 2,
                ..RelayConfig::streamlined(sink.local_addr())
            },
        )
        .unwrap();
        let gen = BatchLoadGen {
            threads: 2,
            flows_per_thread: 16,
            rate_pps: 10_000,
            duration: Duration::from_millis(400),
            trim_fraction: 0.3,
            payload_len: 64,
            layer: SocketLayer::Auto,
            drain_grace: Duration::from_millis(10),
        };
        let report = gen.run(relay.local_addr(), epoch).unwrap();
        assert!(report.trimmed_sent > 0, "{report:?}");
        assert!(
            report.nacks_received > 0,
            "paced run drains NACK backflow: {report:?}"
        );
        // Every packet is accounted for: data reaches the sink, trimmed
        // headers come back as NACKs, and the relay surfaces (rather
        // than swallows) any send errors.
        wait_for("relay smoke accounting", || {
            let stats = relay.stats();
            sink.stats().received + stats.nacks + stats.send_errors + stats.dropped
                >= report.delivered()
        });
        assert!(sink.recorder().count() > 0, "latency histogram populated");
    }

    #[test]
    fn batch_loadgen_unthrottled_mode_floods() {
        let epoch = Instant::now();
        let sink = BatchSink::start(1, SocketLayer::Auto, epoch).unwrap();
        let gen = BatchLoadGen {
            rate_pps: 0,
            duration: Duration::from_millis(100),
            ..BatchLoadGen::smoke(Duration::from_millis(100))
        };
        let report = gen.run(sink.local_addr(), epoch).unwrap();
        // Unthrottled on loopback must dwarf the 20k-pps smoke pace.
        assert!(report.achieved_pps() > 50_000.0, "{report:?}");
        wait_for("sink saw traffic", || sink.stats().received > 0);
    }
}
