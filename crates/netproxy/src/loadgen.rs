//! iperf-like load generation for the testbed experiments (§5).
//!
//! The paper drives its proxies with "a 10Gbps line rate for 30 seconds"
//! of iperf traffic. [`TcpLoadGen`] reproduces that shape for the Naive
//! proxy (constant-rate byte stream over TCP); [`UdpLoadGen`] does so for
//! the Streamlined proxy, additionally emulating **switch trimming** with
//! a token bucket: datagrams that exceed the virtual switch's drain rate
//! are cut to trimmed headers before they reach the proxy, standing in
//! for the trimming hardware the paper assumes.

use crate::wire::{WireHeader, MAX_PAYLOAD};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream, UdpSocket};

/// Outcome of a load-generation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadStats {
    /// Full datagrams / bytes put on the wire.
    pub sent_packets: u64,
    /// Bytes of payload sent.
    pub sent_bytes: u64,
    /// Datagrams trimmed by the virtual switch (UDP mode only).
    pub trimmed_packets: u64,
}

/// A rate-paced TCP byte-stream generator (the Naive-proxy workload).
#[derive(Debug, Clone, Copy)]
pub struct TcpLoadGen {
    /// Target rate in bits per second.
    pub rate_bps: u64,
    /// How long to transmit.
    pub duration: Duration,
    /// Write chunk size in bytes.
    pub chunk: usize,
}

impl TcpLoadGen {
    /// A scaled-down default: 200 Mbit/s for 1 s in 16 KiB chunks (the
    /// paper's 10 Gbps × 30 s shape, sized for CI).
    pub fn scaled_default() -> Self {
        TcpLoadGen {
            rate_bps: 200_000_000,
            duration: Duration::from_secs(1),
            chunk: 16 * 1024,
        }
    }

    /// Connects to `target` and streams at the configured rate.
    pub async fn run(&self, target: SocketAddr) -> io::Result<LoadStats> {
        assert!(self.rate_bps > 0 && self.chunk > 0, "invalid load config");
        let mut stream = TcpStream::connect(target).await?;
        stream.set_nodelay(true)?;
        let payload = vec![0x42u8; self.chunk];
        let start = Instant::now();
        let mut stats = LoadStats::default();
        while start.elapsed() < self.duration {
            // Token pacing: how many bytes should have left by now?
            let due = (start.elapsed().as_secs_f64() * self.rate_bps as f64 / 8.0) as u64;
            if stats.sent_bytes < due {
                stream.write_all(&payload).await?;
                stats.sent_bytes += self.chunk as u64;
                stats.sent_packets += 1;
            } else {
                tokio::time::sleep(Duration::from_micros(100)).await;
            }
        }
        stream.shutdown().await?;
        Ok(stats)
    }
}

/// Byte-counting TCP sink; returns its address and a live byte counter.
pub async fn tcp_sink() -> io::Result<(SocketAddr, Arc<AtomicU64>)> {
    let listener = TcpListener::bind("127.0.0.1:0".parse::<SocketAddr>().expect("addr")).await?;
    let addr = listener.local_addr()?;
    let counter = Arc::new(AtomicU64::new(0));
    let c = counter.clone();
    tokio::spawn(async move {
        while let Ok((mut s, _)) = listener.accept().await {
            let c = c.clone();
            tokio::spawn(async move {
                let mut buf = vec![0u8; 64 * 1024];
                loop {
                    match s.read(&mut buf).await {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            c.fetch_add(n as u64, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    Ok((addr, counter))
}

/// A rate-paced UDP datagram generator with a virtual trimming switch
/// (the Streamlined-proxy workload).
#[derive(Debug, Clone, Copy)]
pub struct UdpLoadGen {
    /// Flow id stamped on every datagram.
    pub flow: u64,
    /// Target offered rate in bits per second.
    pub rate_bps: u64,
    /// How long to transmit.
    pub duration: Duration,
    /// The virtual switch's drain rate; offered load beyond it is trimmed.
    pub switch_rate_bps: u64,
    /// The virtual switch's queue depth in bytes.
    pub switch_buffer_bytes: u64,
}

impl UdpLoadGen {
    /// A scaled-down default: offer 100 Mbit/s against an 80 Mbit/s
    /// virtual switch for 1 s — ~20% of datagrams arrive trimmed, so the
    /// proxy's NACK path is exercised alongside forwarding.
    pub fn scaled_default(flow: u64) -> Self {
        UdpLoadGen {
            flow,
            rate_bps: 100_000_000,
            duration: Duration::from_secs(1),
            switch_rate_bps: 80_000_000,
            switch_buffer_bytes: 256 * 1024,
        }
    }

    /// Sends data datagrams to `target` (the proxy), trimming whatever the
    /// virtual switch cannot absorb.
    pub async fn run(&self, socket: &UdpSocket, target: SocketAddr) -> io::Result<LoadStats> {
        assert!(
            self.rate_bps > 0 && self.switch_rate_bps > 0,
            "invalid load config"
        );
        let payload = vec![0x17u8; MAX_PAYLOAD];
        let start = Instant::now();
        let mut stats = LoadStats::default();
        let mut seq = 0u64;
        // Virtual switch state: a token-bucket queue. Only *accepted*
        // (untrimmed) bytes occupy the queue; it drains continuously at
        // the switch rate.
        let mut offered: u64 = 0;
        let mut accepted: u64 = 0;
        while start.elapsed() < self.duration {
            let due = (start.elapsed().as_secs_f64() * self.rate_bps as f64 / 8.0) as u64;
            if offered >= due {
                tokio::time::sleep(Duration::from_micros(100)).await;
                continue;
            }
            let drained =
                (start.elapsed().as_secs_f64() * self.switch_rate_bps as f64 / 8.0) as u64;
            let queued = accepted.saturating_sub(drained);
            let datagram = if queued + MAX_PAYLOAD as u64 > self.switch_buffer_bytes {
                // Virtual switch full: trim the payload, forward the header.
                stats.trimmed_packets += 1;
                WireHeader::trimmed(self.flow, seq).encode(&[])
            } else {
                stats.sent_bytes += MAX_PAYLOAD as u64;
                accepted += MAX_PAYLOAD as u64;
                WireHeader::data(self.flow, seq, MAX_PAYLOAD as u16).encode(&payload)
            };
            socket.send_to(&datagram, target).await?;
            stats.sent_packets += 1;
            offered += MAX_PAYLOAD as u64;
            seq += 1;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn tcp_loadgen_hits_approximate_rate() {
        let (sink, counter) = tcp_sink().await.unwrap();
        let gen = TcpLoadGen {
            rate_bps: 80_000_000, // 10 MB/s
            duration: Duration::from_millis(500),
            chunk: 8192,
        };
        let stats = gen.run(sink).await.unwrap();
        // Expect ~5 MB ± 40% (CI machines jitter).
        assert!(
            (3_000_000..8_000_000).contains(&stats.sent_bytes),
            "sent {}",
            stats.sent_bytes
        );
        // Sink eventually sees everything.
        tokio::time::sleep(Duration::from_millis(200)).await;
        assert_eq!(counter.load(Ordering::Relaxed), stats.sent_bytes);
    }

    #[tokio::test]
    async fn udp_loadgen_trims_overload() {
        let sink = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let target = sink.local_addr().unwrap();
        // Drain the sink so the kernel buffer doesn't drop.
        tokio::spawn(async move {
            let mut buf = [0u8; 2048];
            loop {
                if sink.recv_from(&mut buf).await.is_err() {
                    break;
                }
            }
        });
        let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let gen = UdpLoadGen {
            flow: 1,
            rate_bps: 40_000_000,
            duration: Duration::from_millis(400),
            switch_rate_bps: 20_000_000,
            switch_buffer_bytes: 64 * 1024,
        };
        let stats = gen.run(&sock, target).await.unwrap();
        assert!(stats.sent_packets > 100, "{stats:?}");
        // Offering 2x the drain rate must trim roughly half the packets.
        let frac = stats.trimmed_packets as f64 / stats.sent_packets as f64;
        assert!((0.25..0.75).contains(&frac), "trim fraction {frac}");
    }

    #[tokio::test]
    async fn udp_loadgen_no_trim_under_capacity() {
        let sink = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let target = sink.local_addr().unwrap();
        tokio::spawn(async move {
            let mut buf = [0u8; 2048];
            loop {
                if sink.recv_from(&mut buf).await.is_err() {
                    break;
                }
            }
        });
        let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let gen = UdpLoadGen {
            flow: 1,
            rate_bps: 10_000_000,
            duration: Duration::from_millis(300),
            switch_rate_bps: 100_000_000,
            switch_buffer_bytes: 1_000_000,
        };
        let stats = gen.run(&sock, target).await.unwrap();
        assert_eq!(stats.trimmed_packets, 0, "{stats:?}");
        assert!(stats.sent_packets > 50);
    }

    #[test]
    fn scaled_defaults_are_sane() {
        let t = TcpLoadGen::scaled_default();
        assert!(t.rate_bps > 0 && t.chunk > 0);
        let u = UdpLoadGen::scaled_default(1);
        assert!(u.switch_rate_bps < u.rate_bps, "default must induce trims");
    }
}
