//! # netproxy — deployable incast proxies (the paper's §5 prototype)
//!
//! Runnable counterparts of the two proxy designs, built on tokio:
//!
//! * [`naive`] — the split-connection user-space proxy: a TCP listener
//!   that terminates each sender connection and relays bytes over a second
//!   connection to the receiver, with per-chunk latency instrumentation.
//!   This is the design whose user-space overhead Figure 4 measures.
//! * [`streamlined`] — the trim/NACK relay over a small custom UDP wire
//!   format ([`wire`]): header-only (trimmed) packets are answered with an
//!   immediate NACK to the sender; everything else is forwarded. The
//!   per-packet decision function is exposed pure (no I/O) so its runtime
//!   can be measured in isolation — the Figure 5a "lower bound" (the
//!   paper's eBPF bytecode runtime analogue); the full socket path is the
//!   Figure 5b "upper bound".
//! * [`detecting`] — the FW#1 variant of the streamlined proxy for
//!   networks *without* trimming support: early NACKs from gap inference
//!   (`incast-core`'s bounded-memory loss detector) plus a quiescence
//!   sweep for tail losses.
//! * [`batch`] / [`shard`] — the line-rate datapath (ROADMAP item 3):
//!   a batched socket layer (`recvmmsg`/`sendmmsg` on Linux, portable
//!   fallback elsewhere), zero-copy [`wire::DatagramView`] parsing, and
//!   a per-core `SO_REUSEPORT`-sharded relay engine that runs all three
//!   relay variants with no cross-shard locks. See DESIGN.md §13.
//! * [`transport`] — a minimal NACK-driven reliable transport over the
//!   wire format, for closed-loop end-to-end demonstrations.
//! * [`loadgen`] — an iperf-like constant-rate load generator for both
//!   transports, including the *virtual trimming switch* that stands in
//!   for hardware trimming support on the UDP path.
//!
//! ## Substitutions versus the paper's testbed
//!
//! The paper measures two x86 servers with ConnectX-5 NICs, TC/eBPF hooks
//! and switch trimming. Here everything runs over loopback sockets: the
//! kernel network stack traversal that dominates the paper's upper bound
//! (syscalls, context switches, skb processing) is exercised for real,
//! while trimming is emulated by the load generator's token bucket. See
//! DESIGN.md §3 for the substitution table.

// netproxy is the one workspace crate allowed to contain `unsafe` (the
// libc FFI in `batch`); every block must carry a `// SAFETY:` comment
// (simlint `unsafe-without-safety`) and unsafe operations inside unsafe
// fns still need their own blocks.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod detecting;
pub mod fault;
pub mod loadgen;
pub mod naive;
pub mod shard;
pub mod streamlined;
pub mod supervisor;
pub(crate) mod sync;
#[cfg(all(test, not(miri)))]
pub(crate) mod testutil;
pub mod transport;
pub mod wire;

pub use batch::{BatchIo, RecvRing, SendQueue, SocketLayer, BATCH};
pub use detecting::DetectingUdpProxy;
pub use fault::{
    BlackoutWindow, DirectionFaults, FaultConfig, FaultSnapshot, FaultStats, FaultedIo, SynthErrors,
};
pub use loadgen::{BatchLoadGen, BatchLoadReport, BatchSink, SinkStats};
pub use naive::NaiveProxy;
pub use shard::{
    FlowDirectory, OverloadConfig, RelayConfig, RelayKind, RelayStats, ShardStats, ShardedRelay,
};
pub use streamlined::{decide, Action, StreamlinedUdpProxy};
pub use supervisor::{ChaosKind, ShardSlot, SupervisorConfig, SupervisorStats};
pub use transport::{
    FallbackConfig, ReliableReceiver, ReliableSender, TransferStats, TransportError,
};
pub use wire::{DatagramView, Flags, WireHeader, MAX_DATAGRAM, WIRE_HEADER_LEN};
