//! The FW#1 detecting proxy on real sockets: early NACKs from loss
//! *inference*, for networks without trimming support.
//!
//! Mirrors [`crate::streamlined::StreamlinedUdpProxy`] but instead of
//! reacting to TRIMMED headers (which require switch support), it runs
//! the bounded-memory [`LossDetector`] from `incast-core` over each
//! flow's sequence stream and NACKs inferred gaps. A tokio interval
//! drives the quiescence sweep that catches tail losses.

use crate::wire::{Flags, WireHeader};
use incast_core::lossdetect::{LossDetector, LossDetectorConfig};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::net::UdpSocket;
use tokio::sync::watch;

/// Counters of a running detecting proxy.
#[derive(Debug, Default)]
pub struct DetectingStats {
    /// Data datagrams forwarded to the receiver.
    pub forwarded: AtomicU64,
    /// NACKs generated from inferred gaps (including sweep re-NACKs).
    pub nacks: AtomicU64,
    /// Feedback datagrams forwarded back to the sender.
    pub reversed: AtomicU64,
    /// Malformed datagrams dropped.
    pub dropped: AtomicU64,
    /// Outbound datagrams the kernel refused (previously swallowed with
    /// `let _ = socket.send_to(..)`).
    pub send_errors: AtomicU64,
}

/// A running detecting UDP proxy.
pub struct DetectingUdpProxy {
    local_addr: SocketAddr,
    stats: Arc<DetectingStats>,
    shutdown: watch::Sender<bool>,
}

impl DetectingUdpProxy {
    /// Binds on `listen`, relays toward `receiver`, and sweeps quiet flows
    /// every `sweep_interval`.
    pub async fn start(
        listen: SocketAddr,
        receiver: SocketAddr,
        config: LossDetectorConfig,
        sweep_interval: Duration,
    ) -> io::Result<Self> {
        let socket = UdpSocket::bind(listen).await?;
        let local_addr = socket.local_addr()?;
        let stats = Arc::new(DetectingStats::default());
        let (shutdown, mut shutdown_rx) = watch::channel(false);

        let st = stats.clone();
        tokio::spawn(async move {
            let mut detector = LossDetector::new(config);
            let mut senders: HashMap<u64, SocketAddr> = HashMap::new();
            let mut last_activity: HashMap<u64, tokio::time::Instant> = HashMap::new();
            let mut buf = vec![0u8; 2048];
            let mut sweep = tokio::time::interval(sweep_interval);
            sweep.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
            loop {
                tokio::select! {
                    r = socket.recv_from(&mut buf) => {
                        let Ok((n, from)) = r else { break };
                        let datagram = &buf[..n];
                        let Ok((header, _payload)) = WireHeader::decode(datagram) else {
                            // ordering: Relaxed — monotone stats counter, no
                            // cross-thread data published through it.
                            st.dropped.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        let flow_key = dcsim_flow(header.flow);
                        if header.flags.contains(Flags::DATA) {
                            senders.insert(header.flow, from);
                            last_activity.insert(header.flow, tokio::time::Instant::now());
                            for loss in detector.observe(flow_key, header.seq) {
                                let nack = WireHeader::nack(header.flow, loss.seq).encode(&[]);
                                match socket.send_to(&nack, from).await {
                                    // ordering: Relaxed — monotone stats counters.
                                    Ok(_) => st.nacks.fetch_add(1, Ordering::Relaxed),
                                    Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                                };
                            }
                            match socket.send_to(datagram, receiver).await {
                                // ordering: Relaxed — monotone stats counters.
                                Ok(_) => st.forwarded.fetch_add(1, Ordering::Relaxed),
                                Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                            };
                        } else if let Some(&sender) = senders.get(&header.flow) {
                            match socket.send_to(datagram, sender).await {
                                // ordering: Relaxed — monotone stats counters.
                                Ok(_) => st.reversed.fetch_add(1, Ordering::Relaxed),
                                Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                            };
                        } else {
                            // ordering: Relaxed — monotone stats counter.
                            st.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    _ = sweep.tick() => {
                        let now = tokio::time::Instant::now();
                        for (&flow, &sender) in &senders {
                            let quiet = last_activity
                                .get(&flow)
                                .is_none_or(|&t| now.duration_since(t) >= sweep_interval);
                            if !quiet {
                                continue;
                            }
                            for loss in detector.sweep(dcsim_flow(flow)) {
                                let nack = WireHeader::nack(flow, loss.seq).encode(&[]);
                                match socket.send_to(&nack, sender).await {
                                    // ordering: Relaxed — monotone stats counters.
                                    Ok(_) => st.nacks.fetch_add(1, Ordering::Relaxed),
                                    Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                                };
                            }
                        }
                    }
                    _ = shutdown_rx.changed() => break,
                }
            }
        });

        Ok(DetectingUdpProxy {
            local_addr,
            stats,
            shutdown,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Counters.
    pub fn stats(&self) -> &DetectingStats {
        &self.stats
    }

    /// Stops the relay loop.
    pub fn shutdown(&self) {
        let _ = self.shutdown.send(true);
    }
}

impl Drop for DetectingUdpProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Maps the 64-bit wire flow id into the detector's flow key space.
fn dcsim_flow(flow: u64) -> dcsim::packet::FlowId {
    dcsim::packet::FlowId(flow as u32)
}

// Socket tests are skipped under Miri (real sockets need real syscalls).
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::testutil::loopback;
    use crate::wire::MAX_PAYLOAD;

    fn config() -> LossDetectorConfig {
        LossDetectorConfig {
            reorder_threshold: 3,
            max_pending: 1024,
            ..Default::default()
        }
    }

    async fn setup() -> (DetectingUdpProxy, UdpSocket, tokio::task::JoinHandle<u64>) {
        let recv_sock = UdpSocket::bind(loopback()).await.unwrap();
        let recv_addr = recv_sock.local_addr().unwrap();
        let drain = tokio::spawn(async move {
            let mut buf = [0u8; 2048];
            let mut count = 0u64;
            while tokio::time::timeout(Duration::from_millis(700), recv_sock.recv_from(&mut buf))
                .await
                .is_ok()
            {
                count += 1;
            }
            count
        });
        let proxy =
            DetectingUdpProxy::start(loopback(), recv_addr, config(), Duration::from_millis(30))
                .await
                .unwrap();
        let sender = UdpSocket::bind(loopback()).await.unwrap();
        (proxy, sender, drain)
    }

    #[tokio::test]
    async fn nacks_inferred_gap_on_live_sockets() {
        let (proxy, sender, _drain) = setup().await;
        let payload = vec![0u8; 64];
        // Send 0, skip 1 (the "network" dropped it), send 2..=5.
        for seq in [0u64, 2, 3, 4, 5] {
            let wire = WireHeader::data(7, seq, 64).encode(&payload);
            sender.send_to(&wire, proxy.local_addr()).await.unwrap();
        }
        // Expect a NACK for seq 1.
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(2), sender.recv_from(&mut buf))
            .await
            .expect("nack timely")
            .unwrap();
        let (h, _) = WireHeader::decode(&buf[..n]).unwrap();
        assert!(h.flags.contains(Flags::NACK));
        assert_eq!(h.seq, 1);
        // ordering: Relaxed — test readback after the NACK was observed.
        assert!(proxy.stats().nacks.load(Ordering::Relaxed) >= 1);
    }

    #[tokio::test]
    async fn sweep_catches_tail_loss() {
        let (proxy, sender, _drain) = setup().await;
        let payload = vec![0u8; 64];
        // Send 0 and 2; nothing follows, so the gap at 1 can only be
        // caught by the quiescence sweep.
        for seq in [0u64, 2] {
            let wire = WireHeader::data(9, seq, 64).encode(&payload);
            sender.send_to(&wire, proxy.local_addr()).await.unwrap();
        }
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(2), sender.recv_from(&mut buf))
            .await
            .expect("sweep nack timely")
            .unwrap();
        let (h, _) = WireHeader::decode(&buf[..n]).unwrap();
        assert!(h.flags.contains(Flags::NACK));
        assert_eq!(h.seq, 1);
    }

    #[tokio::test]
    async fn forwards_data_and_feedback() {
        let recv_sock = UdpSocket::bind(loopback()).await.unwrap();
        let recv_addr = recv_sock.local_addr().unwrap();
        let proxy =
            DetectingUdpProxy::start(loopback(), recv_addr, config(), Duration::from_millis(50))
                .await
                .unwrap();
        let sender = UdpSocket::bind(loopback()).await.unwrap();
        let wire = WireHeader::data(3, 0, MAX_PAYLOAD as u16).encode(&vec![1u8; MAX_PAYLOAD]);
        sender.send_to(&wire, proxy.local_addr()).await.unwrap();
        let mut buf = [0u8; 2048];
        let (n, _) = tokio::time::timeout(Duration::from_secs(2), recv_sock.recv_from(&mut buf))
            .await
            .expect("forwarded")
            .unwrap();
        let (h, p) = WireHeader::decode(&buf[..n]).unwrap();
        assert!(h.flags.contains(Flags::DATA));
        assert_eq!(p.len(), MAX_PAYLOAD);
        // Receiver acks; the proxy relays it to the sender.
        let ack = WireHeader::ack(3, 0).encode(&[]);
        recv_sock.send_to(&ack, proxy.local_addr()).await.unwrap();
        let (n, _) = tokio::time::timeout(Duration::from_secs(2), sender.recv_from(&mut buf))
            .await
            .expect("ack relayed")
            .unwrap();
        let (h, _) = WireHeader::decode(&buf[..n]).unwrap();
        assert!(h.flags.contains(Flags::ACK));
    }

    #[tokio::test]
    async fn in_order_stream_produces_no_nacks() {
        let (proxy, sender, drain) = setup().await;
        let payload = vec![0u8; 64];
        for seq in 0..50u64 {
            let wire = WireHeader::data(11, seq, 64).encode(&payload);
            sender.send_to(&wire, proxy.local_addr()).await.unwrap();
        }
        let forwarded = drain.await.unwrap();
        assert!(forwarded >= 45, "most datagrams forwarded: {forwarded}");
        // ordering: Relaxed — test readback after the drain completed.
        assert_eq!(proxy.stats().nacks.load(Ordering::Relaxed), 0);
    }

    #[tokio::test]
    async fn send_errors_are_counted_not_swallowed() {
        // Receiver port 0 makes every forward fail at send_to.
        let unreachable: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let proxy =
            DetectingUdpProxy::start(loopback(), unreachable, config(), Duration::from_millis(50))
                .await
                .unwrap();
        let sender = UdpSocket::bind(loopback()).await.unwrap();
        let wire = WireHeader::data(3, 0, 4).encode(&[9, 9, 9, 9]);
        sender.send_to(&wire, proxy.local_addr()).await.unwrap();
        tokio::time::sleep(Duration::from_millis(50)).await;
        // ordering: Relaxed — stats counters carry no payload; the sleep is the sync.
        assert_eq!(proxy.stats().send_errors.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().forwarded.load(Ordering::Relaxed), 0);
    }
}
