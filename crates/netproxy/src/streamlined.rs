//! The Streamlined proxy over UDP: trim-aware forwarding with early NACKs.
//!
//! The per-packet logic is deliberately tiny — the paper's point is that
//! *this* is all a proxy needs on the critical path, small enough for eBPF
//! (Fig. 5a: median 0.42 µs of bytecode runtime on their testbed). The
//! pure function [`decide`] is that logic with no I/O attached, so the
//! micro-benchmark (`bench -p bench --bench proxy_datapath`) measures the
//! Figure 5a analogue, while [`StreamlinedUdpProxy`] wraps it in real
//! sockets to measure the Figure 5b through-stack upper bound.

use crate::wire::{Flags, WireError, WireHeader};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::net::UdpSocket;
use tokio::sync::watch;
use trace::LatencyRecorder;

/// What the proxy does with an incoming datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Forward the datagram unchanged to the receiver.
    ForwardToReceiver,
    /// Reply to the sender with a NACK for this (flow, seq).
    NackToSender { flow: u64, seq: u64 },
    /// Forward the datagram unchanged to the sender (reverse path).
    ForwardToSender,
    /// Drop it (not our protocol / malformed).
    Drop,
}

/// The streamlined per-packet decision — §3 Insight #3 verbatim:
/// header-only packet → NACK to the sender; other data → forward to the
/// receiver; feedback from the receiver → forward to the sender.
///
/// Pure function: this is the entire critical-path logic, the Figure 5a
/// "lower bound" measurand.
#[inline]
pub fn decide(datagram: &[u8]) -> Action {
    match WireHeader::decode(datagram) {
        Ok((header, _payload)) => {
            if header.flags.contains(Flags::DATA) {
                if header.flags.contains(Flags::TRIMMED) {
                    Action::NackToSender {
                        flow: header.flow,
                        seq: header.seq,
                    }
                } else {
                    Action::ForwardToReceiver
                }
            } else {
                // ACK or NACK from the receiver side.
                Action::ForwardToSender
            }
        }
        Err(
            WireError::Truncated | WireError::BadMagic | WireError::BadFlags | WireError::BadLength,
        ) => Action::Drop,
    }
}

/// Counters of a running streamlined proxy.
#[derive(Debug, Default)]
pub struct StreamlinedStats {
    /// Data datagrams forwarded to the receiver.
    pub forwarded: AtomicU64,
    /// NACKs generated for trimmed headers.
    pub nacks: AtomicU64,
    /// Feedback datagrams forwarded back to the sender.
    pub reversed: AtomicU64,
    /// Malformed datagrams dropped.
    pub dropped: AtomicU64,
    /// Outbound datagrams the kernel refused (previously swallowed with
    /// `let _ = socket.send_to(..)` — an operator-invisible black hole).
    pub send_errors: AtomicU64,
}

/// A running streamlined UDP proxy.
///
/// The sender transmits to the proxy's socket; the proxy forwards data to
/// `receiver` and remembers each flow's sender address to route NACKs and
/// reverse-path feedback. (A real deployment would rewrite addresses in
/// the datapath; over UDP the flow table stands in for that.)
pub struct StreamlinedUdpProxy {
    local_addr: SocketAddr,
    stats: Arc<StreamlinedStats>,
    recorder: LatencyRecorder,
    shutdown: watch::Sender<bool>,
}

impl StreamlinedUdpProxy {
    /// Binds on `listen` and relays toward `receiver`.
    pub async fn start(listen: SocketAddr, receiver: SocketAddr) -> io::Result<Self> {
        let socket = UdpSocket::bind(listen).await?;
        let local_addr = socket.local_addr()?;
        let stats = Arc::new(StreamlinedStats::default());
        let recorder = LatencyRecorder::new();
        let (shutdown, mut shutdown_rx) = watch::channel(false);

        let st = stats.clone();
        let rec = recorder.clone();
        tokio::spawn(async move {
            let mut buf = vec![0u8; 2048];
            // flow id -> sender address (learned from data packets).
            let mut senders: std::collections::HashMap<u64, SocketAddr> =
                std::collections::HashMap::new();
            loop {
                tokio::select! {
                    r = socket.recv_from(&mut buf) => {
                        let Ok((n, from)) = r else { break };
                        let start = Instant::now();
                        let datagram = &buf[..n];
                        match decide(datagram) {
                            Action::ForwardToReceiver => {
                                if let Ok((h, _)) = WireHeader::decode(datagram) {
                                    senders.insert(h.flow, from);
                                }
                                match socket.send_to(datagram, receiver).await {
                                    // ordering: Relaxed — monotone stats counters, no
                                    // cross-thread data published through them.
                                    Ok(_) => st.forwarded.fetch_add(1, Ordering::Relaxed),
                                    Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                                };
                            }
                            Action::NackToSender { flow, seq } => {
                                senders.insert(flow, from);
                                let nack = WireHeader::nack(flow, seq).encode(&[]);
                                match socket.send_to(&nack, from).await {
                                    // ordering: Relaxed — monotone stats counters.
                                    Ok(_) => st.nacks.fetch_add(1, Ordering::Relaxed),
                                    Err(_) => st.send_errors.fetch_add(1, Ordering::Relaxed),
                                };
                            }
                            Action::ForwardToSender => {
                                if let Ok((h, _)) = WireHeader::decode(datagram) {
                                    if let Some(&sender) = senders.get(&h.flow) {
                                        match socket.send_to(datagram, sender).await {
                                            // ordering: Relaxed — monotone stats counter.
                                            Ok(_) => st.reversed.fetch_add(1, Ordering::Relaxed),
                                            Err(_) => {
                                                // ordering: Relaxed — monotone stats counter.
                                                st.send_errors.fetch_add(1, Ordering::Relaxed)
                                            }
                                        };
                                    } else {
                                        // ordering: Relaxed — monotone stats counter.
                                        st.dropped.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Action::Drop => {
                                // ordering: Relaxed — monotone stats counter.
                                st.dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // Upper-bound sample: receive-to-forward through the
                        // full socket path (Fig. 5b analogue).
                        rec.record_nanos(start.elapsed().as_nanos() as u64);
                    }
                    _ = shutdown_rx.changed() => break,
                }
            }
        });

        Ok(StreamlinedUdpProxy {
            local_addr,
            stats,
            recorder,
            shutdown,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Counters.
    pub fn stats(&self) -> &StreamlinedStats {
        &self.stats
    }

    /// Per-datagram processing-latency recorder (receive → forward).
    pub fn recorder(&self) -> &LatencyRecorder {
        &self.recorder
    }

    /// Stops the relay loop.
    pub fn shutdown(&self) {
        let _ = self.shutdown.send(true);
    }
}

impl Drop for StreamlinedUdpProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod decide_tests {
    use super::*;

    #[test]
    fn decide_forwards_data() {
        let wire = WireHeader::data(1, 5, 3).encode(&[1, 2, 3]);
        assert_eq!(decide(&wire), Action::ForwardToReceiver);
    }

    #[test]
    fn decide_nacks_trimmed() {
        let wire = WireHeader::trimmed(9, 77).encode(&[]);
        assert_eq!(decide(&wire), Action::NackToSender { flow: 9, seq: 77 });
    }

    #[test]
    fn decide_reverses_feedback() {
        assert_eq!(
            decide(&WireHeader::ack(1, 2).encode(&[])),
            Action::ForwardToSender
        );
        assert_eq!(
            decide(&WireHeader::nack(1, 2).encode(&[])),
            Action::ForwardToSender
        );
    }

    #[test]
    fn decide_drops_garbage() {
        assert_eq!(decide(&[0u8; 4]), Action::Drop);
        assert_eq!(decide(&[0xFFu8; 64]), Action::Drop);
    }
}

// Socket tests are skipped under Miri (loopback UDP needs real syscalls);
// the pure `decide` tests above still run there.
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::testutil::{bind_udp, loopback, recv_decoded, recv_with_timeout};
    use std::time::Duration;

    #[tokio::test]
    async fn forwards_data_to_receiver() {
        let receiver = bind_udp().await;
        let proxy = StreamlinedUdpProxy::start(loopback(), receiver.local_addr().unwrap())
            .await
            .unwrap();
        let sender = bind_udp().await;

        let wire = WireHeader::data(3, 1, 4).encode(&[9, 9, 9, 9]);
        sender.send_to(&wire, proxy.local_addr()).await.unwrap();

        let mut buf = [0u8; 2048];
        let (h, p, _) = recv_decoded(&receiver, &mut buf).await;
        assert_eq!(h.flow, 3);
        assert_eq!(p, vec![9, 9, 9, 9]);
        // ordering: Relaxed — test readback after the forward was observed.
        assert_eq!(proxy.stats().forwarded.load(Ordering::Relaxed), 1);
    }

    #[tokio::test]
    async fn nacks_trimmed_headers_to_sender() {
        let receiver = bind_udp().await;
        let proxy = StreamlinedUdpProxy::start(loopback(), receiver.local_addr().unwrap())
            .await
            .unwrap();
        let sender = bind_udp().await;

        let wire = WireHeader::trimmed(3, 42).encode(&[]);
        sender.send_to(&wire, proxy.local_addr()).await.unwrap();

        let mut buf = [0u8; 2048];
        let (h, _, from) = recv_decoded(&sender, &mut buf).await;
        assert_eq!(from, proxy.local_addr());
        assert!(h.flags.contains(Flags::NACK));
        assert_eq!(h.seq, 42);
        // ordering: Relaxed — test readback after the NACK was observed.
        assert_eq!(proxy.stats().nacks.load(Ordering::Relaxed), 1);
    }

    #[tokio::test]
    async fn reverse_path_reaches_the_sender() {
        let receiver = bind_udp().await;
        let proxy = StreamlinedUdpProxy::start(loopback(), receiver.local_addr().unwrap())
            .await
            .unwrap();
        let sender = bind_udp().await;

        // Teach the proxy flow 8's sender address with a data packet.
        let data = WireHeader::data(8, 0, 1).encode(&[1]);
        sender.send_to(&data, proxy.local_addr()).await.unwrap();
        let mut buf = [0u8; 2048];
        recv_with_timeout(&receiver, &mut buf).await;

        // Receiver acks via the proxy.
        let ack = WireHeader::ack(8, 0).encode(&[]);
        receiver.send_to(&ack, proxy.local_addr()).await.unwrap();
        let (h, _, _) = recv_decoded(&sender, &mut buf).await;
        assert!(h.flags.contains(Flags::ACK));
        // ordering: Relaxed — test readback after the reverse hop was observed.
        assert_eq!(proxy.stats().reversed.load(Ordering::Relaxed), 1);
    }

    #[tokio::test]
    async fn drops_garbage_and_counts() {
        let receiver = bind_udp().await;
        let proxy = StreamlinedUdpProxy::start(loopback(), receiver.local_addr().unwrap())
            .await
            .unwrap();
        let sender = bind_udp().await;
        sender
            .send_to(&[0xAB; 50], proxy.local_addr())
            .await
            .unwrap();
        // Give the relay loop a moment.
        tokio::time::sleep(Duration::from_millis(50)).await;
        // ordering: Relaxed — stats counters carry no payload; the sleep is the sync.
        assert_eq!(proxy.stats().dropped.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().forwarded.load(Ordering::Relaxed), 0);
    }

    #[tokio::test]
    async fn records_processing_latency() {
        let receiver = bind_udp().await;
        let proxy = StreamlinedUdpProxy::start(loopback(), receiver.local_addr().unwrap())
            .await
            .unwrap();
        let sender = bind_udp().await;
        for seq in 0..20 {
            let wire = WireHeader::data(1, seq, 8).encode(&[0; 8]);
            sender.send_to(&wire, proxy.local_addr()).await.unwrap();
        }
        let mut buf = [0u8; 2048];
        for _ in 0..20 {
            recv_with_timeout(&receiver, &mut buf).await;
        }
        assert!(proxy.recorder().count() >= 20);
    }

    #[tokio::test]
    async fn send_errors_are_counted_not_swallowed() {
        // Receiver port 0 makes every forward fail at send_to.
        let unreachable: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let proxy = StreamlinedUdpProxy::start(loopback(), unreachable)
            .await
            .unwrap();
        let sender = bind_udp().await;
        let wire = WireHeader::data(3, 1, 4).encode(&[9, 9, 9, 9]);
        sender.send_to(&wire, proxy.local_addr()).await.unwrap();
        tokio::time::sleep(Duration::from_millis(50)).await;
        // ordering: Relaxed — stats counters carry no payload; the sleep is the sync.
        assert_eq!(proxy.stats().send_errors.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().forwarded.load(Ordering::Relaxed), 0);
    }
}
