//! Deterministic fault injection for the batched datapath — the
//! real-socket twin of dcsim's `FaultPlan` (DESIGN.md §10).
//!
//! [`FaultedIo`] wraps any [`BatchIo`] implementation and perturbs the
//! traffic crossing it according to a declarative, seed-driven
//! [`FaultConfig`]: per-direction drop / corrupt / delay / duplicate
//! probabilities, synthetic transient syscall errors (`EAGAIN`,
//! `ENOBUFS`), and scheduled blackout windows during which the link
//! eats everything. All randomness comes from a [`trace::SplitMix64`]
//! stream derived from the config seed — two runs with the same seed
//! and traffic see the same fault decisions, so soak failures replay.
//!
//! Every perturbation increments a [`FaultStats`] counter, which is
//! what lets the `netproxy_soak` harness close its packet-accounting
//! ledger exactly: a faulted packet is never *lost*, it is *explained*.
//!
//! Fidelity choices (all documented because the ledger depends on
//! them):
//!
//! * **Corruption smashes the wire magic** (first two bytes) rather
//!   than flipping random payload bits, so a corrupted packet
//!   deterministically fails parsing at its receiver (`malformed` /
//!   `dropped` counters) instead of sometimes surviving as valid —
//!   keeping its ledger classification exact.
//! * **Delayed packets bypass blackout checks on release**: they
//!   already "traversed" the link when they were captured.
//! * **The faulted tx path copies.** The clean path forwards straight
//!   out of the receive ring (zero-copy); once tx faults are active the
//!   shim stages surviving datagrams through its own ring so it can
//!   corrupt/duplicate without mutating the caller's buffers. That cost
//!   is acceptable on the chaos path and absent when no tx faults are
//!   configured.

use crate::batch::{BatchIo, RecvRing, SendOutcome, SendQueue, SocketLayer, BATCH};
use crate::wire::{DatagramView, Flags};
use std::io;
use std::net::SocketAddr;
// Plain monotone counters with no cross-thread protocol: std atomics
// directly (the crate::sync shim is reserved for loom-modeled types).
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use trace::SplitMix64;

/// Fault probabilities for one direction (rx = inbound toward the
/// relay, tx = outbound from it). Drop/delay/duplicate are drawn from a
/// single cascade per datagram (mutually exclusive, probabilities must
/// sum to ≤ 1); corruption is an independent draw on survivors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionFaults {
    /// P(datagram silently dropped).
    pub drop: f64,
    /// P(wire magic smashed; receiver counts it malformed).
    pub corrupt: f64,
    /// P(datagram duplicated; both copies proceed).
    pub duplicate: f64,
    /// P(datagram held and re-injected later).
    pub delay: f64,
    /// Max hold for a delayed datagram, uniform in `[1, delay_ms]` ms.
    pub delay_ms: u64,
}

impl DirectionFaults {
    /// No faults in this direction.
    pub const fn none() -> Self {
        DirectionFaults {
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_ms: 0,
        }
    }

    fn any(&self) -> bool {
        self.drop > 0.0 || self.corrupt > 0.0 || self.duplicate > 0.0 || self.delay > 0.0
    }

    fn validate(&self, dir: &str) -> Result<(), String> {
        for (name, p) in [
            ("drop", self.drop),
            ("corrupt", self.corrupt),
            ("duplicate", self.duplicate),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{dir}.{name} probability {p} outside [0, 1]"));
            }
        }
        if self.drop + self.delay + self.duplicate > 1.0 {
            return Err(format!(
                "{dir}: drop+delay+duplicate exceed 1 (single-cascade draw)"
            ));
        }
        if self.delay > 0.0 && self.delay_ms == 0 {
            return Err(format!("{dir}: delay probability set but delay_ms = 0"));
        }
        Ok(())
    }
}

/// A scheduled total outage: while active, every fresh datagram in
/// both directions is blackholed (and counted). Offsets are
/// milliseconds from the shim's shared epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlackoutWindow {
    /// Window start (ms since epoch, inclusive).
    pub start_ms: u64,
    /// Window end (ms since epoch, exclusive).
    pub end_ms: u64,
}

/// Synthetic transient syscall errors, drawn once per call. The relay
/// worker must absorb these by retrying — they are exactly the
/// transient set (`EAGAIN`, `ENOBUFS`) a real kernel produces under
/// pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthErrors {
    /// P(`recv_batch` fails with `WouldBlock`) per call.
    pub recv_again: f64,
    /// P(`recv_batch` fails with `OutOfMemory`/ENOBUFS) per call.
    pub recv_nobufs: f64,
    /// P(`send_batch` fails wholesale with ENOBUFS) per non-empty call.
    pub send_nobufs: f64,
}

impl SynthErrors {
    /// No synthetic errors.
    pub const fn none() -> Self {
        SynthErrors {
            recv_again: 0.0,
            recv_nobufs: 0.0,
            send_nobufs: 0.0,
        }
    }

    fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("recv_again", self.recv_again),
            ("recv_nobufs", self.recv_nobufs),
            ("send_nobufs", self.send_nobufs),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("synth.{name} probability {p} outside [0, 1]"));
            }
        }
        if self.recv_again + self.recv_nobufs > 1.0 {
            return Err("synth: recv_again+recv_nobufs exceed 1".to_string());
        }
        Ok(())
    }
}

/// The full declarative fault plan for a relay's sockets. Validated up
/// front, dcsim-`FaultPlan` style, so an impossible plan fails loudly
/// at start rather than silently injecting nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Base RNG seed; each shard × generation derives its own stream
    /// via [`trace::derive_seed`], so restarts do not replay the dead
    /// shard's fault schedule.
    pub seed: u64,
    /// Inbound (toward the relay) faults.
    pub rx: DirectionFaults,
    /// Outbound (from the relay) faults.
    pub tx: DirectionFaults,
    /// Total-outage windows, sorted and non-overlapping.
    pub blackouts: Vec<BlackoutWindow>,
    /// Synthetic syscall errors.
    pub synth: SynthErrors,
}

impl FaultConfig {
    /// A clean plan (useful as a `..` base).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            rx: DirectionFaults::none(),
            tx: DirectionFaults::none(),
            blackouts: Vec::new(),
            synth: SynthErrors::none(),
        }
    }

    /// The canonical soak mix: light drop/delay/duplicate/corrupt in
    /// both directions, occasional synthetic transient errors, and one
    /// blackout window at 35–40% of `duration`.
    pub fn soak(seed: u64, duration: Duration) -> Self {
        let total_ms = duration.as_millis() as u64;
        FaultConfig {
            seed,
            rx: DirectionFaults {
                drop: 0.01,
                corrupt: 0.002,
                duplicate: 0.005,
                delay: 0.01,
                delay_ms: 20,
            },
            tx: DirectionFaults {
                drop: 0.01,
                corrupt: 0.002,
                duplicate: 0.005,
                delay: 0.01,
                delay_ms: 20,
            },
            blackouts: vec![BlackoutWindow {
                start_ms: total_ms * 35 / 100,
                end_ms: total_ms * 40 / 100,
            }],
            synth: SynthErrors {
                recv_again: 0.001,
                recv_nobufs: 0.0005,
                send_nobufs: 0.0005,
            },
        }
    }

    /// Checks probabilities and window layout.
    ///
    /// # Errors
    /// A human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.rx.validate("rx")?;
        self.tx.validate("tx")?;
        self.synth.validate()?;
        let mut prev_end = 0u64;
        for (i, w) in self.blackouts.iter().enumerate() {
            if w.start_ms >= w.end_ms {
                return Err(format!("blackout[{i}] is empty or inverted"));
            }
            if w.start_ms < prev_end {
                return Err(format!(
                    "blackout[{i}] overlaps or precedes blackout[{}]",
                    i - 1
                ));
            }
            prev_end = w.end_ms;
        }
        Ok(())
    }

    fn in_blackout(&self, elapsed_ms: u64) -> bool {
        self.blackouts
            .iter()
            .any(|w| (w.start_ms..w.end_ms).contains(&elapsed_ms))
    }
}

/// Everything the shim did, as monotone counters shared across shards.
/// Outbound counters are classified data vs ctrl (DATA flag vs
/// ACK/NACK) because the soak ledger closes the two directions with
/// separate equations.
#[derive(Debug, Default)]
pub struct FaultStats {
    rx_dropped: AtomicU64,
    rx_corrupted: AtomicU64,
    rx_duplicated: AtomicU64,
    rx_delayed: AtomicU64,
    rx_delay_released: AtomicU64,
    rx_blackholed: AtomicU64,
    tx_dropped_data: AtomicU64,
    tx_dropped_ctrl: AtomicU64,
    tx_corrupted_data: AtomicU64,
    tx_corrupted_ctrl: AtomicU64,
    tx_duplicated_data: AtomicU64,
    tx_duplicated_ctrl: AtomicU64,
    tx_delayed_data: AtomicU64,
    tx_delayed_ctrl: AtomicU64,
    tx_delay_released_data: AtomicU64,
    tx_delay_released_ctrl: AtomicU64,
    tx_release_errors: AtomicU64,
    tx_blackholed_data: AtomicU64,
    tx_blackholed_ctrl: AtomicU64,
    synth_recv_errors: AtomicU64,
    synth_send_errors: AtomicU64,
}

macro_rules! bump {
    ($stats:expr, $field:ident, $n:expr) => {
        // ordering: Relaxed — monotone fault counters read only by
        // post-run snapshots; no non-atomic data is published.
        $stats.$field.fetch_add($n, Ordering::Relaxed)
    };
}

impl FaultStats {
    /// A plain-u64 copy of every counter (plus derived pending-delay
    /// gauges). Exact once the relay has shut down.
    pub fn snapshot(&self) -> FaultSnapshot {
        // ordering: Relaxed — see the counter writes; snapshots
        // tolerate mid-batch staleness and are exact after join.
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let s = FaultSnapshot {
            rx_dropped: load(&self.rx_dropped),
            rx_corrupted: load(&self.rx_corrupted),
            rx_duplicated: load(&self.rx_duplicated),
            rx_delayed: load(&self.rx_delayed),
            rx_delay_released: load(&self.rx_delay_released),
            rx_blackholed: load(&self.rx_blackholed),
            tx_dropped_data: load(&self.tx_dropped_data),
            tx_dropped_ctrl: load(&self.tx_dropped_ctrl),
            tx_corrupted_data: load(&self.tx_corrupted_data),
            tx_corrupted_ctrl: load(&self.tx_corrupted_ctrl),
            tx_duplicated_data: load(&self.tx_duplicated_data),
            tx_duplicated_ctrl: load(&self.tx_duplicated_ctrl),
            tx_delayed_data: load(&self.tx_delayed_data),
            tx_delayed_ctrl: load(&self.tx_delayed_ctrl),
            tx_delay_released_data: load(&self.tx_delay_released_data),
            tx_delay_released_ctrl: load(&self.tx_delay_released_ctrl),
            tx_release_errors: load(&self.tx_release_errors),
            tx_blackholed_data: load(&self.tx_blackholed_data),
            tx_blackholed_ctrl: load(&self.tx_blackholed_ctrl),
            synth_recv_errors: load(&self.synth_recv_errors),
            synth_send_errors: load(&self.synth_send_errors),
        };
        debug_assert!(s.rx_delay_released <= s.rx_delayed);
        s
    }
}

/// Plain-u64 snapshot of [`FaultStats`]; see the field docs there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct FaultSnapshot {
    pub rx_dropped: u64,
    pub rx_corrupted: u64,
    pub rx_duplicated: u64,
    pub rx_delayed: u64,
    pub rx_delay_released: u64,
    pub rx_blackholed: u64,
    pub tx_dropped_data: u64,
    pub tx_dropped_ctrl: u64,
    pub tx_corrupted_data: u64,
    pub tx_corrupted_ctrl: u64,
    pub tx_duplicated_data: u64,
    pub tx_duplicated_ctrl: u64,
    pub tx_delayed_data: u64,
    pub tx_delayed_ctrl: u64,
    pub tx_delay_released_data: u64,
    pub tx_delay_released_ctrl: u64,
    pub tx_release_errors: u64,
    pub tx_blackholed_data: u64,
    pub tx_blackholed_ctrl: u64,
    pub synth_recv_errors: u64,
    pub synth_send_errors: u64,
}

impl FaultSnapshot {
    /// Delayed rx datagrams still held by the shim (never re-injected
    /// before shutdown).
    pub fn rx_delay_pending(&self) -> u64 {
        self.rx_delayed - self.rx_delay_released
    }

    /// Total perturbation events across all counters (used by tests to
    /// assert "the shim actually did something").
    pub fn total_events(&self) -> u64 {
        self.rx_dropped
            + self.rx_corrupted
            + self.rx_duplicated
            + self.rx_delayed
            + self.rx_blackholed
            + self.tx_dropped_data
            + self.tx_dropped_ctrl
            + self.tx_corrupted_data
            + self.tx_corrupted_ctrl
            + self.tx_duplicated_data
            + self.tx_duplicated_ctrl
            + self.tx_delayed_data
            + self.tx_delayed_ctrl
            + self.tx_blackholed_data
            + self.tx_blackholed_ctrl
            + self.synth_recv_errors
            + self.synth_send_errors
    }
}

/// A captured in-flight datagram awaiting its delayed (re-)injection.
struct Held {
    release_at: Instant,
    addr: SocketAddr,
    is_data: bool,
    bytes: Box<[u8]>,
}

/// The fault-injecting [`BatchIo`] wrapper. One per shard socket; all
/// shards share a [`FaultStats`] and the blackout epoch, but each gets
/// its own derived RNG stream.
pub struct FaultedIo {
    inner: Box<dyn BatchIo>,
    cfg: FaultConfig,
    rng: SplitMix64,
    epoch: Instant,
    stats: Arc<FaultStats>,
    rx_held: Vec<Held>,
    tx_held: Vec<Held>,
    stage_ring: RecvRing,
    stage_queue: SendQueue,
    dup_scratch: Vec<(SocketAddr, Box<[u8]>)>,
}

impl FaultedIo {
    /// Wraps `inner`. `seed` should already be derived per shard ×
    /// generation; `epoch` anchors the blackout schedule and must be
    /// shared across every shard of a relay.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`FaultConfig::validate`] — construction
    /// sites validate explicitly, so this is a programming error.
    pub fn new(
        inner: Box<dyn BatchIo>,
        cfg: FaultConfig,
        seed: u64,
        epoch: Instant,
        stats: Arc<FaultStats>,
    ) -> Self {
        cfg.validate().expect("validated fault config");
        FaultedIo {
            inner,
            cfg,
            rng: SplitMix64::new(seed),
            epoch,
            stats,
            rx_held: Vec::new(),
            tx_held: Vec::new(),
            stage_ring: RecvRing::new(),
            stage_queue: SendQueue::new(),
            dup_scratch: Vec::new(),
        }
    }

    fn elapsed_ms(&self, now: Instant) -> u64 {
        now.duration_since(self.epoch).as_millis() as u64
    }

    /// Sends every due delayed-tx datagram, one inner flush per class
    /// so kernel refusals stay classified. Called from both directions
    /// so held packets drain even when the relay is idle-receiving.
    fn flush_tx_due(&mut self, now: Instant) -> io::Result<()> {
        if self.tx_held.is_empty() {
            return Ok(());
        }
        for want_data in [true, false] {
            let any_due = self
                .tx_held
                .iter()
                .any(|h| h.is_data == want_data && h.release_at <= now);
            if !any_due {
                continue;
            }
            self.stage_ring.reset();
            self.stage_queue.clear();
            let mut staged = 0u64;
            let mut i = 0;
            while i < self.tx_held.len() {
                let h = &self.tx_held[i];
                if h.is_data != want_data || h.release_at > now {
                    i += 1;
                    continue;
                }
                if self.stage_ring.len() == BATCH {
                    let out = self.inner.send_batch(&self.stage_ring, &self.stage_queue)?;
                    self.note_release(want_data, out);
                    staged = 0;
                    self.stage_ring.reset();
                    self.stage_queue.clear();
                }
                let h = self.tx_held.swap_remove(i);
                let slot = self
                    .stage_ring
                    .stage(|buf| {
                        buf[..h.bytes.len()].copy_from_slice(&h.bytes);
                        h.bytes.len()
                    })
                    .expect("ring flushed when full");
                self.stage_queue.push_slot(slot.0, slot.1, h.addr);
                staged += 1;
            }
            if staged > 0 {
                let out = self.inner.send_batch(&self.stage_ring, &self.stage_queue)?;
                self.note_release(want_data, out);
                self.stage_ring.reset();
                self.stage_queue.clear();
            }
        }
        Ok(())
    }

    fn note_release(&self, is_data: bool, out: SendOutcome) {
        if is_data {
            bump!(self.stats, tx_delay_released_data, out.sent);
        } else {
            bump!(self.stats, tx_delay_released_ctrl, out.sent);
        }
        bump!(self.stats, tx_release_errors, out.errors);
    }

    /// Re-injects due delayed-rx datagrams into `ring` (as many as fit;
    /// the rest wait for the next call).
    fn release_rx_due(&mut self, ring: &mut RecvRing, now: Instant) {
        let mut i = 0;
        while i < self.rx_held.len() {
            if self.rx_held[i].release_at > now {
                i += 1;
                continue;
            }
            let h = &self.rx_held[i];
            if !ring.push_received(&h.bytes, h.addr) {
                return; // ring full; keep holding
            }
            bump!(self.stats, rx_delay_released, 1);
            self.rx_held.swap_remove(i);
        }
    }

    /// Stages `bytes` (optionally magic-smashed) into the tx staging
    /// ring, flushing to `inner` when full. Returns the accumulated
    /// outcome of any intermediate flush.
    fn stage_tx(
        &mut self,
        bytes: &[u8],
        dest: SocketAddr,
        corrupt: bool,
        out: &mut SendOutcome,
    ) -> io::Result<()> {
        if self.stage_ring.len() == BATCH {
            let o = self.inner.send_batch(&self.stage_ring, &self.stage_queue)?;
            out.sent += o.sent;
            out.errors += o.errors;
            self.stage_ring.reset();
            self.stage_queue.clear();
        }
        let slot = self
            .stage_ring
            .stage(|buf| {
                buf[..bytes.len()].copy_from_slice(bytes);
                if corrupt {
                    buf[0] = 0xFF;
                    buf[1] = 0xFF;
                }
                bytes.len()
            })
            .expect("ring flushed when full");
        self.stage_queue.push_slot(slot.0, slot.1, dest);
        Ok(())
    }
}

/// DATA flag (trimmed included) vs ACK/NACK — the ledger's outbound
/// classification. Unparseable bytes never originate from the relay's
/// own queue, but classify as ctrl defensively.
fn is_data_bytes(bytes: &[u8]) -> bool {
    DatagramView::parse(bytes)
        .map(|v| v.flags().contains(Flags::DATA))
        .unwrap_or(false)
}

impl BatchIo for FaultedIo {
    fn recv_batch(&mut self, ring: &mut RecvRing) -> io::Result<usize> {
        let now = Instant::now();
        self.flush_tx_due(now)?;
        let synth = self.cfg.synth;
        if synth.recv_again > 0.0 || synth.recv_nobufs > 0.0 {
            let u = self.rng.next_f64();
            if u < synth.recv_again {
                bump!(self.stats, synth_recv_errors, 1);
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "synthetic EAGAIN",
                ));
            }
            if u < synth.recv_again + synth.recv_nobufs {
                bump!(self.stats, synth_recv_errors, 1);
                return Err(io::Error::new(
                    io::ErrorKind::OutOfMemory,
                    "synthetic ENOBUFS",
                ));
            }
        }
        self.inner.recv_batch(ring)?;
        let f = self.cfg.rx;
        if !ring.is_empty() && self.cfg.in_blackout(self.elapsed_ms(now)) {
            bump!(self.stats, rx_blackholed, ring.len() as u64);
            ring.reset();
        } else if !ring.is_empty() && f.any() {
            self.dup_scratch.clear();
            // Back-to-front so swap_remove only moves already-processed
            // slots into vacated positions.
            for i in (0..ring.len()).rev() {
                let u = self.rng.next_f64();
                if u < f.drop {
                    bump!(self.stats, rx_dropped, 1);
                    ring.swap_remove(i);
                    continue;
                }
                if u < f.drop + f.delay {
                    let hold_ms = 1 + self.rng.next_bounded(f.delay_ms);
                    self.rx_held.push(Held {
                        release_at: now + Duration::from_millis(hold_ms),
                        addr: ring.source(i),
                        is_data: false, // unused on rx
                        bytes: ring.datagram(i).into(),
                    });
                    bump!(self.stats, rx_delayed, 1);
                    ring.swap_remove(i);
                    continue;
                }
                if u < f.drop + f.delay + f.duplicate {
                    self.dup_scratch
                        .push((ring.source(i), ring.datagram(i).into()));
                }
                if f.corrupt > 0.0 && self.rng.next_f64() < f.corrupt {
                    let d = ring.datagram_mut(i);
                    d[0] = 0xFF;
                    d[1] = 0xFF;
                    bump!(self.stats, rx_corrupted, 1);
                }
            }
            while let Some((addr, bytes)) = self.dup_scratch.pop() {
                if !ring.push_received(&bytes, addr) {
                    break; // ring full: the duplicate simply doesn't happen
                }
                bump!(self.stats, rx_duplicated, 1);
            }
        }
        self.release_rx_due(ring, now);
        Ok(ring.len())
    }

    fn send_batch(&mut self, ring: &RecvRing, queue: &SendQueue) -> io::Result<SendOutcome> {
        let now = Instant::now();
        self.flush_tx_due(now)?;
        if queue.is_empty() {
            return Ok(SendOutcome::default());
        }
        if self.cfg.synth.send_nobufs > 0.0 && self.rng.next_f64() < self.cfg.synth.send_nobufs {
            bump!(self.stats, synth_send_errors, 1);
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                "synthetic ENOBUFS",
            ));
        }
        let blackout = self.cfg.in_blackout(self.elapsed_ms(now));
        let f = self.cfg.tx;
        if !blackout && !f.any() {
            return self.inner.send_batch(ring, queue); // clean fast path
        }
        self.stage_ring.reset();
        self.stage_queue.clear();
        let mut out = SendOutcome::default();
        for i in 0..queue.len() {
            let (bytes, dest) = queue.resolve(ring, i);
            let is_data = is_data_bytes(bytes);
            if blackout {
                if is_data {
                    bump!(self.stats, tx_blackholed_data, 1);
                } else {
                    bump!(self.stats, tx_blackholed_ctrl, 1);
                }
                // The link ate it, but the kernel "accepted" it from the
                // relay's perspective.
                out.sent += 1;
                continue;
            }
            let u = self.rng.next_f64();
            if u < f.drop {
                if is_data {
                    bump!(self.stats, tx_dropped_data, 1);
                } else {
                    bump!(self.stats, tx_dropped_ctrl, 1);
                }
                out.sent += 1;
                continue;
            }
            if u < f.drop + f.delay {
                let hold_ms = 1 + self.rng.next_bounded(f.delay_ms);
                self.tx_held.push(Held {
                    release_at: now + Duration::from_millis(hold_ms),
                    addr: dest,
                    is_data,
                    bytes: bytes.into(),
                });
                if is_data {
                    bump!(self.stats, tx_delayed_data, 1);
                } else {
                    bump!(self.stats, tx_delayed_ctrl, 1);
                }
                out.sent += 1;
                continue;
            }
            let dup = u < f.drop + f.delay + f.duplicate;
            let corrupt = f.corrupt > 0.0 && self.rng.next_f64() < f.corrupt;
            // Corruption mutates only the staging copy, so a duplicate
            // staged from the same source bytes goes out clean.
            self.stage_tx(bytes, dest, corrupt, &mut out)?;
            if corrupt {
                if is_data {
                    bump!(self.stats, tx_corrupted_data, 1);
                } else {
                    bump!(self.stats, tx_corrupted_ctrl, 1);
                }
            }
            if dup {
                self.stage_tx(bytes, dest, false, &mut out)?;
                if is_data {
                    bump!(self.stats, tx_duplicated_data, 1);
                } else {
                    bump!(self.stats, tx_duplicated_ctrl, 1);
                }
            }
        }
        if !self.stage_queue.is_empty() {
            let o = self.inner.send_batch(&self.stage_ring, &self.stage_queue)?;
            out.sent += o.sent;
            out.errors += o.errors;
            self.stage_ring.reset();
            self.stage_queue.clear();
        }
        Ok(out)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    fn layer(&self) -> SocketLayer {
        self.inner.layer()
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn validate_accepts_presets() {
        FaultConfig::none(1).validate().unwrap();
        FaultConfig::soak(1, Duration::from_secs(60))
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut c = FaultConfig::none(1);
        c.rx.drop = 1.5;
        assert!(c.validate().is_err());
        let mut c = FaultConfig::none(1);
        c.tx.drop = 0.6;
        c.tx.delay = 0.6;
        c.tx.delay_ms = 5;
        assert!(c.validate().is_err(), "cascade sum over 1 rejected");
        let mut c = FaultConfig::none(1);
        c.rx.delay = 0.1;
        assert!(c.validate().is_err(), "delay without delay_ms rejected");
        let mut c = FaultConfig::none(1);
        c.synth.recv_again = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_blackouts() {
        let mut c = FaultConfig::none(1);
        c.blackouts = vec![BlackoutWindow {
            start_ms: 5,
            end_ms: 5,
        }];
        assert!(c.validate().is_err(), "empty window rejected");
        c.blackouts = vec![
            BlackoutWindow {
                start_ms: 0,
                end_ms: 10,
            },
            BlackoutWindow {
                start_ms: 5,
                end_ms: 20,
            },
        ];
        assert!(c.validate().is_err(), "overlap rejected");
        c.blackouts = vec![
            BlackoutWindow {
                start_ms: 0,
                end_ms: 10,
            },
            BlackoutWindow {
                start_ms: 10,
                end_ms: 20,
            },
        ];
        assert!(c.validate().is_ok(), "adjacent windows fine");
    }

    #[test]
    fn blackout_membership() {
        let c = FaultConfig {
            blackouts: vec![BlackoutWindow {
                start_ms: 10,
                end_ms: 20,
            }],
            ..FaultConfig::none(1)
        };
        assert!(!c.in_blackout(9));
        assert!(c.in_blackout(10));
        assert!(c.in_blackout(19));
        assert!(!c.in_blackout(20));
    }

    #[test]
    fn snapshot_pending_arithmetic() {
        let s = FaultSnapshot {
            rx_delayed: 10,
            rx_delay_released: 7,
            ..FaultSnapshot::default()
        };
        assert_eq!(s.rx_delay_pending(), 3);
        assert_eq!(s.total_events(), 10);
    }
}

// Shim behavior tests need real sockets; skipped under Miri.
#[cfg(all(test, not(miri)))]
mod io_tests {
    use super::*;
    use crate::batch::{self, RecvRing, SendQueue};
    use crate::wire::WireHeader;
    use std::net::UdpSocket;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("addr")
    }

    fn faulted(cfg: FaultConfig) -> (FaultedIo, Arc<FaultStats>, SocketAddr) {
        let inner = batch::open(UdpSocket::bind(loopback()).unwrap(), SocketLayer::Auto).unwrap();
        let addr = inner.local_addr().unwrap();
        let stats = Arc::new(FaultStats::default());
        let seed = cfg.seed;
        let io = FaultedIo::new(inner, cfg, seed, Instant::now(), stats.clone());
        (io, stats, addr)
    }

    fn recv_until(io: &mut FaultedIo, ring: &mut RecvRing, deadline: Duration) -> usize {
        let start = Instant::now();
        let mut total = 0;
        while start.elapsed() < deadline {
            match io.recv_batch(ring) {
                Ok(n) => total += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::OutOfMemory
                    ) => {}
                Err(e) => panic!("hard recv error: {e}"),
            }
            if total > 0 && io.rx_held.is_empty() {
                break;
            }
        }
        total
    }

    #[test]
    fn full_drop_eats_everything_and_counts() {
        let (mut io, stats, addr) = faulted(FaultConfig {
            rx: DirectionFaults {
                drop: 1.0,
                ..DirectionFaults::none()
            },
            ..FaultConfig::none(7)
        });
        let sender = UdpSocket::bind(loopback()).unwrap();
        for seq in 0..10u64 {
            sender
                .send_to(&WireHeader::data(1, seq, 1).encode(&[0]), addr)
                .unwrap();
        }
        let mut ring = RecvRing::new();
        let got = recv_until(&mut io, &mut ring, Duration::from_millis(300));
        assert_eq!(got, 0, "every datagram dropped");
        assert_eq!(stats.snapshot().rx_dropped, 10);
    }

    #[test]
    fn delayed_datagrams_arrive_late_but_arrive() {
        let (mut io, stats, addr) = faulted(FaultConfig {
            rx: DirectionFaults {
                delay: 1.0,
                delay_ms: 10,
                ..DirectionFaults::none()
            },
            ..FaultConfig::none(11)
        });
        let sender = UdpSocket::bind(loopback()).unwrap();
        for seq in 0..5u64 {
            sender
                .send_to(&WireHeader::data(1, seq, 1).encode(&[0]), addr)
                .unwrap();
        }
        let mut ring = RecvRing::new();
        let mut total = 0;
        let start = Instant::now();
        while total < 5 && start.elapsed() < Duration::from_secs(2) {
            total += io.recv_batch(&mut ring).unwrap();
        }
        assert_eq!(total, 5, "all delayed datagrams eventually released");
        let snap = stats.snapshot();
        assert_eq!(snap.rx_delayed, 5);
        assert_eq!(snap.rx_delay_released, 5);
        assert_eq!(snap.rx_delay_pending(), 0);
    }

    #[test]
    fn corruption_smashes_magic_deterministically() {
        let (mut io, stats, addr) = faulted(FaultConfig {
            rx: DirectionFaults {
                corrupt: 1.0,
                ..DirectionFaults::none()
            },
            ..FaultConfig::none(13)
        });
        let sender = UdpSocket::bind(loopback()).unwrap();
        sender
            .send_to(&WireHeader::data(1, 0, 1).encode(&[0]), addr)
            .unwrap();
        let mut ring = RecvRing::new();
        let got = recv_until(&mut io, &mut ring, Duration::from_millis(500));
        assert_eq!(got, 1);
        assert!(
            DatagramView::parse(ring.datagram(0)).is_err(),
            "corrupted datagram must fail parsing"
        );
        assert_eq!(stats.snapshot().rx_corrupted, 1);
    }

    #[test]
    fn duplicates_add_extra_copies() {
        let (mut io, stats, addr) = faulted(FaultConfig {
            rx: DirectionFaults {
                duplicate: 1.0,
                ..DirectionFaults::none()
            },
            ..FaultConfig::none(17)
        });
        let sender = UdpSocket::bind(loopback()).unwrap();
        for seq in 0..4u64 {
            sender
                .send_to(&WireHeader::data(1, seq, 1).encode(&[0]), addr)
                .unwrap();
        }
        let mut ring = RecvRing::new();
        let mut total = 0;
        let start = Instant::now();
        while total < 8 && start.elapsed() < Duration::from_secs(2) {
            total += io.recv_batch(&mut ring).unwrap();
        }
        assert_eq!(total, 8, "each datagram duplicated once");
        assert_eq!(stats.snapshot().rx_duplicated, 4);
    }

    #[test]
    fn blackout_blackholes_and_then_recovers() {
        let (mut io, stats, addr) = faulted(FaultConfig {
            blackouts: vec![BlackoutWindow {
                start_ms: 0,
                end_ms: 100,
            }],
            ..FaultConfig::none(19)
        });
        let sender = UdpSocket::bind(loopback()).unwrap();
        sender
            .send_to(&WireHeader::data(1, 0, 1).encode(&[0]), addr)
            .unwrap();
        let mut ring = RecvRing::new();
        let start = Instant::now();
        let mut during = 0;
        while start.elapsed() < Duration::from_millis(90) {
            during += io.recv_batch(&mut ring).unwrap();
        }
        assert_eq!(during, 0, "blackout eats the datagram");
        assert_eq!(stats.snapshot().rx_blackholed, 1);
        std::thread::sleep(Duration::from_millis(30));
        sender
            .send_to(&WireHeader::data(1, 1, 1).encode(&[0]), addr)
            .unwrap();
        let got = recv_until(&mut io, &mut ring, Duration::from_millis(500));
        assert_eq!(got, 1, "traffic flows after the window");
    }

    #[test]
    fn synthetic_recv_errors_are_transient_kinds() {
        let (mut io, stats, _addr) = faulted(FaultConfig {
            synth: SynthErrors {
                recv_again: 1.0,
                ..SynthErrors::none()
            },
            ..FaultConfig::none(23)
        });
        let mut ring = RecvRing::new();
        let err = io.recv_batch(&mut ring).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(stats.snapshot().synth_recv_errors >= 1);
    }

    #[test]
    fn tx_drop_counts_by_class() {
        let (mut io, stats, _addr) = faulted(FaultConfig {
            tx: DirectionFaults {
                drop: 1.0,
                ..DirectionFaults::none()
            },
            ..FaultConfig::none(29)
        });
        let peer = UdpSocket::bind(loopback()).unwrap();
        let peer_addr = peer.local_addr().unwrap();
        let mut ring = RecvRing::new();
        let mut queue = SendQueue::new();
        let (slot, len) = ring
            .stage(|buf| WireHeader::data(1, 0, 1).encode_into(buf, &[0]))
            .unwrap();
        queue.push_slot(slot, len, peer_addr);
        queue.push_nack(1, 5, peer_addr);
        let out = io.send_batch(&ring, &queue).unwrap();
        assert_eq!(out.sent, 2, "drops are 'accepted' from the caller's view");
        let snap = stats.snapshot();
        assert_eq!(snap.tx_dropped_data, 1);
        assert_eq!(snap.tx_dropped_ctrl, 1);
    }

    #[test]
    fn tx_delay_releases_to_the_wire() {
        let (mut io, stats, _addr) = faulted(FaultConfig {
            tx: DirectionFaults {
                delay: 1.0,
                delay_ms: 10,
                ..DirectionFaults::none()
            },
            ..FaultConfig::none(31)
        });
        let peer = UdpSocket::bind(loopback()).unwrap();
        peer.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let peer_addr = peer.local_addr().unwrap();
        let mut ring = RecvRing::new();
        let mut queue = SendQueue::new();
        let (slot, len) = ring
            .stage(|buf| WireHeader::data(9, 3, 1).encode_into(buf, &[7]))
            .unwrap();
        queue.push_slot(slot, len, peer_addr);
        io.send_batch(&ring, &queue).unwrap();
        assert_eq!(stats.snapshot().tx_delayed_data, 1);
        // Pump the shim until the hold expires and the release flushes.
        let mut buf = [0u8; 2048];
        let start = Instant::now();
        loop {
            let mut scratch = RecvRing::new();
            let _ = io.recv_batch(&mut scratch);
            peer.set_read_timeout(Some(Duration::from_millis(5)))
                .unwrap();
            if let Ok((n, _)) = peer.recv_from(&mut buf) {
                let (h, p) = WireHeader::decode(&buf[..n]).unwrap();
                assert_eq!((h.flow, h.seq), (9, 3));
                assert_eq!(p, &[7]);
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "delayed datagram never released"
            );
        }
        assert_eq!(stats.snapshot().tx_delay_released_data, 1);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        // Deterministic replay: feed two shims the same traffic shape and
        // seed; their fault decisions must be identical.
        let cfg = FaultConfig {
            rx: DirectionFaults {
                drop: 0.5,
                ..DirectionFaults::none()
            },
            ..FaultConfig::none(42)
        };
        let mut survivors = Vec::new();
        for _run in 0..2 {
            let (mut io, stats, addr) = faulted(cfg.clone());
            let sender = UdpSocket::bind(loopback()).unwrap();
            // One datagram per recv call so both runs batch identically.
            let mut kept = Vec::new();
            let mut ring = RecvRing::new();
            for seq in 0..50u64 {
                sender
                    .send_to(&WireHeader::data(1, seq, 1).encode(&[0]), addr)
                    .unwrap();
                let start = Instant::now();
                loop {
                    let got = io.recv_batch(&mut ring).unwrap();
                    if got > 0 {
                        assert_eq!(got, 1);
                        let v = DatagramView::parse(ring.datagram(0)).unwrap();
                        kept.push(v.seq());
                        break;
                    }
                    // A dropped datagram never shows up: detect via the
                    // counter moving instead of waiting out the clock.
                    if stats.snapshot().rx_dropped + kept.len() as u64 == seq + 1 {
                        break;
                    }
                    assert!(start.elapsed() < Duration::from_secs(2), "stuck at {seq}");
                }
            }
            assert!(stats.snapshot().rx_dropped > 5, "seeded drops happened");
            survivors.push(kept);
        }
        assert_eq!(survivors[0], survivors[1], "same seed, same schedule");
    }
}
