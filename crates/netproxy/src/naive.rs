//! The Naive split-connection proxy (user-space TCP relay).
//!
//! For each accepted sender connection the proxy dials the receiver and
//! relays bytes in both directions — the full send/receive logic the paper
//! blames for the Figure 4 overhead. Every relayed chunk records one
//! latency sample (read completion → write completion through user
//! space) into a shared [`LatencyRecorder`].

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;
use trace::LatencyRecorder;

/// Relay chunk size. 16 KiB matches common user-space proxy buffers.
const CHUNK: usize = 16 * 1024;

/// A running Naive proxy instance.
pub struct NaiveProxy {
    local_addr: SocketAddr,
    recorder: LatencyRecorder,
    bytes_relayed: Arc<AtomicU64>,
    connections: Arc<AtomicU64>,
    relay_errors: Arc<AtomicU64>,
    shutdown: watch::Sender<bool>,
}

impl NaiveProxy {
    /// Binds a listener on `listen` and relays every accepted connection
    /// to `upstream`. Returns once the listener is ready.
    pub async fn start(listen: SocketAddr, upstream: SocketAddr) -> io::Result<NaiveProxy> {
        let listener = TcpListener::bind(listen).await?;
        let local_addr = listener.local_addr()?;
        let recorder = LatencyRecorder::new();
        let bytes_relayed = Arc::new(AtomicU64::new(0));
        let connections = Arc::new(AtomicU64::new(0));
        let relay_errors = Arc::new(AtomicU64::new(0));
        let (shutdown, shutdown_rx) = watch::channel(false);

        let rec = recorder.clone();
        let bytes = bytes_relayed.clone();
        let conns = connections.clone();
        let errors = relay_errors.clone();
        tokio::spawn(async move {
            let mut shutdown_rx = shutdown_rx;
            loop {
                tokio::select! {
                    accepted = listener.accept() => {
                        let Ok((inbound, _peer)) = accepted else { break };
                        // ordering: Relaxed — monotone stats counter.
                        conns.fetch_add(1, Ordering::Relaxed);
                        let rec = rec.clone();
                        let bytes = bytes.clone();
                        let errors = errors.clone();
                        let mut conn_shutdown = shutdown_rx.clone();
                        tokio::spawn(async move {
                            tokio::select! {
                                r = relay_connection(inbound, upstream, rec, bytes) => {
                                    // Connection errors are per-flow events, not
                                    // proxy failures — but an operator must see
                                    // them, so they are counted, not swallowed.
                                    if r.is_err() {
                                        // ordering: Relaxed — monotone stats counter.
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                _ = conn_shutdown.changed() => {}
                            }
                        });
                    }
                    _ = shutdown_rx.changed() => break,
                }
            }
        });

        Ok(NaiveProxy {
            local_addr,
            recorder,
            bytes_relayed,
            connections,
            relay_errors,
            shutdown,
        })
    }

    /// The bound listen address (with the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The per-chunk relay-latency recorder (nanosecond samples).
    pub fn recorder(&self) -> &LatencyRecorder {
        &self.recorder
    }

    /// Total bytes relayed sender→receiver so far.
    pub fn bytes_relayed(&self) -> u64 {
        // ordering: Relaxed — live snapshot of a monotone counter.
        self.bytes_relayed.load(Ordering::Relaxed)
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        // ordering: Relaxed — live snapshot of a monotone counter.
        self.connections.load(Ordering::Relaxed)
    }

    /// Relays that ended with an error (upstream dial failures, resets).
    pub fn relay_errors(&self) -> u64 {
        // ordering: Relaxed — live snapshot of a monotone counter.
        self.relay_errors.load(Ordering::Relaxed)
    }

    /// Stops accepting and tears down active relays.
    pub fn shutdown(&self) {
        let _ = self.shutdown.send(true);
    }
}

impl Drop for NaiveProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Relays one sender connection through a fresh upstream connection,
/// recording per-chunk user-space latency on the forward direction.
async fn relay_connection(
    inbound: TcpStream,
    upstream: SocketAddr,
    recorder: LatencyRecorder,
    bytes_relayed: Arc<AtomicU64>,
) -> io::Result<()> {
    inbound.set_nodelay(true)?;
    let outbound = TcpStream::connect(upstream).await?;
    outbound.set_nodelay(true)?;
    let (mut in_r, mut in_w) = inbound.into_split();
    let (mut out_r, mut out_w) = outbound.into_split();

    // Forward path (instrumented): sender -> proxy -> receiver.
    let fwd = async move {
        let mut buf = vec![0u8; CHUNK];
        loop {
            let start = Instant::now();
            let n = in_r.read(&mut buf).await?;
            if n == 0 {
                out_w.shutdown().await?;
                return io::Result::Ok(());
            }
            out_w.write_all(&buf[..n]).await?;
            // One sample per relayed chunk: kernel->user copy, user-space
            // handling, user->kernel copy.
            recorder.record_nanos(start.elapsed().as_nanos() as u64);
            // ordering: Relaxed — monotone byte counter, no payload published.
            bytes_relayed.fetch_add(n as u64, Ordering::Relaxed);
        }
    };
    // Reverse path (acks/responses), uninstrumented.
    let rev = async move {
        let mut buf = vec![0u8; CHUNK];
        loop {
            let n = out_r.read(&mut buf).await?;
            if n == 0 {
                in_w.shutdown().await?;
                return io::Result::Ok(());
            }
            in_w.write_all(&buf[..n]).await?;
        }
    };
    let (a, b) = tokio::join!(fwd, rev);
    a.and(b)
}

// Socket tests are skipped under Miri (real sockets need real syscalls).
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::testutil::loopback;
    use tokio::net::TcpListener;

    async fn echo_server() -> (SocketAddr, tokio::task::JoinHandle<()>) {
        let listener = TcpListener::bind(loopback()).await.unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = tokio::spawn(async move {
            while let Ok((mut s, _)) = listener.accept().await {
                tokio::spawn(async move {
                    let (mut r, mut w) = s.split();
                    let _ = tokio::io::copy(&mut r, &mut w).await;
                });
            }
        });
        (addr, handle)
    }

    #[tokio::test]
    async fn relays_bytes_transparently() {
        let (upstream, _server) = echo_server().await;
        let proxy = NaiveProxy::start(loopback(), upstream).await.unwrap();

        let mut client = TcpStream::connect(proxy.local_addr()).await.unwrap();
        let msg = b"hello through the proxy";
        client.write_all(msg).await.unwrap();
        let mut echoed = vec![0u8; msg.len()];
        client.read_exact(&mut echoed).await.unwrap();
        assert_eq!(&echoed, msg);
        assert_eq!(proxy.connections(), 1);
        assert!(proxy.bytes_relayed() >= msg.len() as u64);
    }

    #[tokio::test]
    async fn records_per_chunk_latency() {
        let (upstream, _server) = echo_server().await;
        let proxy = NaiveProxy::start(loopback(), upstream).await.unwrap();

        let mut client = TcpStream::connect(proxy.local_addr()).await.unwrap();
        for _ in 0..10 {
            client.write_all(&[7u8; 1024]).await.unwrap();
            let mut back = [0u8; 1024];
            client.read_exact(&mut back).await.unwrap();
        }
        assert!(proxy.recorder().count() >= 1, "latency samples recorded");
    }

    #[tokio::test]
    async fn bidirectional_large_transfer() {
        let (upstream, _server) = echo_server().await;
        let proxy = NaiveProxy::start(loopback(), upstream).await.unwrap();

        let client = TcpStream::connect(proxy.local_addr()).await.unwrap();
        let blob = vec![0x5Au8; 1_000_000];
        let (mut r, mut w) = client.into_split();
        let send = tokio::spawn(async move {
            w.write_all(&blob).await.unwrap();
            w.shutdown().await.unwrap();
        });
        let mut received = Vec::new();
        r.read_to_end(&mut received).await.unwrap();
        send.await.unwrap();
        assert_eq!(received.len(), 1_000_000);
        assert!(received.iter().all(|&b| b == 0x5A));
    }

    #[tokio::test]
    async fn multiple_concurrent_connections() {
        let (upstream, _server) = echo_server().await;
        let proxy = NaiveProxy::start(loopback(), upstream).await.unwrap();
        let addr = proxy.local_addr();

        let mut handles = Vec::new();
        for i in 0..8u8 {
            handles.push(tokio::spawn(async move {
                let mut c = TcpStream::connect(addr).await.unwrap();
                let msg = vec![i; 4096];
                c.write_all(&msg).await.unwrap();
                let mut back = vec![0u8; 4096];
                c.read_exact(&mut back).await.unwrap();
                assert_eq!(back, msg);
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        assert_eq!(proxy.connections(), 8);
    }

    #[tokio::test]
    async fn failed_relays_are_counted_not_swallowed() {
        // An upstream that refuses connections: bind, learn the port, drop.
        let upstream = {
            let dead = TcpListener::bind(loopback()).await.unwrap();
            dead.local_addr().unwrap()
        };
        let proxy = NaiveProxy::start(loopback(), upstream).await.unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).await.unwrap();
        client.write_all(b"doomed").await.ok();
        let start = std::time::Instant::now();
        while proxy.relay_errors() == 0 {
            assert!(
                start.elapsed() < std::time::Duration::from_secs(2),
                "relay error never surfaced"
            );
            tokio::time::sleep(std::time::Duration::from_millis(10)).await;
        }
        assert_eq!(proxy.relay_errors(), 1);
    }

    #[tokio::test]
    async fn shutdown_stops_accepting() {
        let (upstream, _server) = echo_server().await;
        let proxy = NaiveProxy::start(loopback(), upstream).await.unwrap();
        let addr = proxy.local_addr();
        proxy.shutdown();
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;
        // Either connect fails outright or the connection is never served.
        if let Ok(mut c) = TcpStream::connect(addr).await {
            c.write_all(b"x").await.ok();
            let mut buf = [0u8; 1];
            let read =
                tokio::time::timeout(std::time::Duration::from_millis(200), c.read(&mut buf)).await;
            match read {
                Ok(Ok(0)) | Err(_) | Ok(Err(_)) => {} // closed or timed out: fine
                Ok(Ok(_)) => panic!("proxy still relaying after shutdown"),
            }
        }
    }
}
