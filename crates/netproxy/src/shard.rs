//! Per-core sharded relay: N worker threads, no cross-shard locks.
//!
//! Each shard owns an `SO_REUSEPORT` socket bound to the same port (the
//! kernel steers every 4-tuple consistently to one shard), a *private*
//! flow table, and a private loss detector — per-flow state never
//! crosses a shard boundary on the hot path. Per-shard counters are
//! plain thread-local accumulators flushed once per batch into that
//! shard's own atomics; merging across shards happens only in
//! [`ShardedRelay::stats`] snapshots.
//!
//! The one cross-shard wrinkle is the reverse path: receiver feedback
//! arrives on the *receiver's* 4-tuple, which the kernel may steer to a
//! different shard than the one that learned the flow's sender. The
//! [`FlowDirectory`] covers that case: a fixed-size, lock-free
//! (CAS-insert, load-lookup) flow→sender map that the owning shard
//! publishes into once per flow, and foreign shards consult only on a
//! private-table miss. No locks, no `Arc<Mutex>`, writes happen once
//! per flow rather than once per packet.
//!
//! On platforms without `SO_REUSEPORT` the relay clamps itself to a
//! single shard over the portable socket layer — same behavior, less
//! parallelism (see `batch.rs`).
//!
//! Three relay variants run on this engine (all over both socket
//! layers):
//!
//! * [`RelayKind::Streamlined`] — the paper's §3 relay: trimmed header →
//!   NACK rewritten **in place** (one flags-byte store) and bounced to
//!   the sender; data forwarded to the receiver straight out of the
//!   receive ring; feedback reversed.
//! * [`RelayKind::Naive`] — the no-insight baseline on the same UDP
//!   datapath: forwards everything (trimmed headers included) to the
//!   receiver and reverses feedback, generating no NACKs. This isolates
//!   the streamlined *decision* from the datapath speed, at line rate.
//! * [`RelayKind::Detecting`] — FW#1: no trimming support assumed; per-
//!   shard bounded-memory gap inference NACKs inferred losses, plus a
//!   quiescence sweep for tail losses.

use crate::batch::{self, BatchIo, RecvRing, SendOutcome, SendQueue, SocketLayer, BATCH};
use crate::fault::{FaultConfig, FaultSnapshot, FaultStats, FaultedIo};
use crate::supervisor::{
    self, ChaosKind, ShardSlot, SupervisorConfig, SupervisorShared, SupervisorStats,
};
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use crate::wire::{
    rewrite_data_to_nack, rewrite_trimmed_to_nack, DatagramView, Flags, WIRE_HEADER_LEN,
};
use incast_core::lossdetect::{LossDetector, LossDetectorConfig};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use trace::LatencyRecorder;

/// Which relay logic the sharded engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayKind {
    /// Blind bidirectional forwarding (no NACK generation).
    Naive,
    /// Trim-aware: trimmed header → in-place NACK to the sender.
    Streamlined,
    /// Gap inference: NACKs from per-shard loss detection + sweep.
    Detecting,
}

impl RelayKind {
    /// Short name for logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RelayKind::Naive => "naive",
            RelayKind::Streamlined => "streamlined",
            RelayKind::Detecting => "detecting",
        }
    }
}

/// Configuration of a [`ShardedRelay`].
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Relay logic.
    pub kind: RelayKind,
    /// Worker threads / sockets. 0 = one per available core. Clamped to
    /// 1 on platforms without `SO_REUSEPORT`.
    pub shards: usize,
    /// Socket layer (mmsg or portable fallback).
    pub layer: SocketLayer,
    /// Where data packets are relayed to.
    pub receiver: SocketAddr,
    /// Loss-detector tuning ([`RelayKind::Detecting`] only).
    pub detector: LossDetectorConfig,
    /// Quiescence-sweep period ([`RelayKind::Detecting`] only).
    pub sweep_interval: Duration,
    /// Fault injection wrapped around every shard socket (`None` = the
    /// clean datapath; the hot path pays nothing). Blackout offsets are
    /// measured from [`ShardedRelay::start`].
    pub faults: Option<FaultConfig>,
    /// Overload admission control (`None` = forward everything, the
    /// pre-shedding behavior; the hot path pays nothing).
    pub overload: Option<OverloadConfig>,
    /// Crash/wedge supervision tuning.
    pub supervisor: SupervisorConfig,
}

impl RelayConfig {
    /// A streamlined relay toward `receiver` with auto shard count.
    pub fn streamlined(receiver: SocketAddr) -> Self {
        RelayConfig {
            kind: RelayKind::Streamlined,
            shards: 0,
            layer: SocketLayer::Auto,
            receiver,
            detector: LossDetectorConfig::default(),
            sweep_interval: Duration::from_millis(50),
            faults: None,
            overload: None,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Per-shard token-bucket admission control: the shed ladder's budgets.
///
/// The ladder degrades saturation gracefully instead of amplifying it
/// (DESIGN.md §15): a data datagram that finds the **forward** bucket
/// empty is not forwarded but answered with a NACK (explicit overload
/// notification, the Pulser insight from PAPERS.md) — and when the
/// **nack** bucket is empty too, it is dropped *with a counter*, never
/// silently. NACK-storm suppression coalesces duplicate NACKs per flow
/// per batch so feedback volume stays bounded under incast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Sustained forward budget, datagrams/second.
    pub forward_pps: f64,
    /// Forward burst capacity, datagrams.
    pub forward_burst: f64,
    /// Sustained NACK budget, datagrams/second (shed-NACKs and
    /// trim-NACKs share it).
    pub nack_pps: f64,
    /// NACK burst capacity, datagrams.
    pub nack_burst: f64,
    /// Coalesce duplicate NACKs per flow per batch.
    pub coalesce_nacks: bool,
}

impl OverloadConfig {
    /// A ladder that sheds above `forward_pps` per shard, with NACK
    /// budget at a quarter of the forward budget and coalescing on.
    pub fn shed_at(forward_pps: f64) -> Self {
        OverloadConfig {
            forward_pps,
            forward_burst: (2 * BATCH) as f64,
            nack_pps: forward_pps / 4.0,
            nack_burst: BATCH as f64,
            coalesce_nacks: true,
        }
    }

    fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("forward_pps", self.forward_pps),
            ("forward_burst", self.forward_burst),
            ("nack_pps", self.nack_pps),
            ("nack_burst", self.nack_burst),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("overload.{name} must be finite and > 0"));
            }
        }
        Ok(())
    }
}

/// A standard token bucket over wall-clock time (per shard, no atomics:
/// admission state never crosses threads).
#[derive(Debug)]
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64, burst: f64, now: Instant) -> Self {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
    }

    fn take(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// What the NACK budget says about one would-be NACK.
enum NackVerdict {
    /// Queue it.
    Send,
    /// Suppressed: this flow was already NACKed in this batch.
    Coalesced,
    /// Suppressed: NACK budget exhausted.
    Shed,
}

/// Per-shard shed-ladder state (thread-private, refilled once per
/// batch so the per-datagram cost is a float compare).
struct OverloadState {
    forward: TokenBucket,
    nack: TokenBucket,
    coalesce: bool,
    /// Flows NACKed in the current batch (≤ [`BATCH`] entries; linear
    /// scan beats hashing at this size).
    nacked_flows: Vec<u64>,
}

impl OverloadState {
    fn new(cfg: OverloadConfig) -> Self {
        let now = Instant::now();
        OverloadState {
            forward: TokenBucket::new(cfg.forward_pps, cfg.forward_burst, now),
            nack: TokenBucket::new(cfg.nack_pps, cfg.nack_burst, now),
            coalesce: cfg.coalesce_nacks,
            nacked_flows: Vec::with_capacity(BATCH),
        }
    }

    fn begin_batch(&mut self, now: Instant) {
        self.forward.refill(now);
        self.nack.refill(now);
        self.nacked_flows.clear();
    }

    fn nack_verdict(&mut self, flow: u64) -> NackVerdict {
        if self.coalesce && self.nacked_flows.contains(&flow) {
            return NackVerdict::Coalesced;
        }
        if self.nack.take() {
            self.nacked_flows.push(flow);
            NackVerdict::Send
        } else {
            NackVerdict::Shed
        }
    }
}

/// One shard's counters. Written (flushed once per batch) only by the
/// owning shard thread; read by snapshots.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Data datagrams forwarded to the receiver.
    pub forwarded: AtomicU64,
    /// NACKs produced (in-place rewrites + generated).
    pub nacks: AtomicU64,
    /// Feedback datagrams forwarded back to a sender.
    pub reversed: AtomicU64,
    /// Malformed / unroutable datagrams dropped.
    pub dropped: AtomicU64,
    /// Outbound datagrams the kernel refused (previously silently
    /// swallowed by the single-datagram relays).
    pub send_errors: AtomicU64,
    /// Receive batches processed.
    pub batches: AtomicU64,
    /// Datagrams received.
    pub received: AtomicU64,
    /// Largest single receive batch seen.
    pub max_batch: AtomicU64,
    /// Data datagrams the shed ladder answered with a NACK instead of
    /// forwarding (subset of `nacks`).
    pub shed_nacked: AtomicU64,
    /// Datagrams the shed ladder dropped outright (budget exhausted on
    /// every rung) — counted, never silent.
    pub shed_dropped: AtomicU64,
    /// NACKs suppressed because the flow was already NACKed in the same
    /// batch (storm suppression).
    pub nacks_coalesced: AtomicU64,
    /// Transient socket errors absorbed by retrying (EAGAIN/ENOBUFS,
    /// synthetic or real) instead of killing the shard.
    pub io_retries: AtomicU64,
    /// Data datagrams lost to a whole-batch send failure (classified
    /// from the unsent queue; subset of `send_errors`).
    pub send_err_data: AtomicU64,
    /// Control datagrams (NACK/ACK) lost to a whole-batch send failure
    /// (subset of `send_errors`).
    pub send_err_ctrl: AtomicU64,
}

/// A merged snapshot of every shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Data datagrams forwarded to the receiver.
    pub forwarded: u64,
    /// NACKs produced.
    pub nacks: u64,
    /// Feedback datagrams forwarded back to a sender.
    pub reversed: u64,
    /// Malformed / unroutable datagrams dropped.
    pub dropped: u64,
    /// Outbound datagrams the kernel refused.
    pub send_errors: u64,
    /// Receive batches processed.
    pub batches: u64,
    /// Datagrams received.
    pub received: u64,
    /// Largest single receive batch across shards.
    pub max_batch: u64,
    /// Data datagrams shed as NACKs (subset of `nacks`).
    pub shed_nacked: u64,
    /// Datagrams dropped by the shed ladder.
    pub shed_dropped: u64,
    /// NACKs suppressed by per-flow-per-batch coalescing.
    pub nacks_coalesced: u64,
    /// Transient socket errors absorbed by retrying.
    pub io_retries: u64,
    /// Data datagrams lost to whole-batch send failures.
    pub send_err_data: u64,
    /// Control datagrams lost to whole-batch send failures.
    pub send_err_ctrl: u64,
}

impl RelayStats {
    /// Folds one shard's counters into this snapshot. Public so the
    /// loom model (`tests/loom.rs`) can check flush/snapshot races.
    pub fn merge(&mut self, s: &ShardStats) {
        // ordering: Relaxed — monotone counters, each a freestanding
        // u64; a snapshot may mix per-counter values from different
        // batches (e.g. `received` ahead of `batches`) but never reads
        // a value that was not written. No non-atomic data rides on
        // these loads, so no acquire edge is needed.
        self.forwarded += s.forwarded.load(Ordering::Relaxed);
        self.nacks += s.nacks.load(Ordering::Relaxed);
        self.reversed += s.reversed.load(Ordering::Relaxed);
        self.dropped += s.dropped.load(Ordering::Relaxed);
        self.send_errors += s.send_errors.load(Ordering::Relaxed);
        self.batches += s.batches.load(Ordering::Relaxed);
        self.received += s.received.load(Ordering::Relaxed);
        self.max_batch = self.max_batch.max(s.max_batch.load(Ordering::Relaxed));
        self.shed_nacked += s.shed_nacked.load(Ordering::Relaxed);
        self.shed_dropped += s.shed_dropped.load(Ordering::Relaxed);
        self.nacks_coalesced += s.nacks_coalesced.load(Ordering::Relaxed);
        self.io_retries += s.io_retries.load(Ordering::Relaxed);
        self.send_err_data += s.send_err_data.load(Ordering::Relaxed);
        self.send_err_ctrl += s.send_err_ctrl.load(Ordering::Relaxed);
    }
}

/// Fixed-size lock-free flow→sender directory for the cross-shard
/// reverse path. CAS-insert once per flow, plain loads on lookup;
/// linear probing, never resized, never locked.
///
/// Keys are stored as `flow + 1` so 0 can mean "empty"; flow
/// `u64::MAX` is therefore not publishable (its feedback still works on
/// the flow's home shard via the private table). Values pack an IPv4
/// `addr:port` into a u64; IPv6 senders likewise stay private-table
/// only. Both limits are irrelevant on the loopback testbed and
/// documented in DESIGN.md §13 — but no longer *silent*: every publish
/// that falls off one of them (sentinel key, IPv6, table saturation)
/// increments [`FlowDirectory::publish_failed`], so an operator can see
/// a directory that stopped absorbing new flows.
///
/// Public (and built on the `crate::sync` atomic shim) so the loom
/// models in `tests/loom.rs` can explore every interleaving of
/// `publish` against `publish` and `lookup`; the memory-ordering
/// choices below are justified per-site for simlint's
/// `unjustified-atomic-ordering` rule and cross-checked by TSAN in CI.
pub struct FlowDirectory {
    keys: Box<[AtomicU64]>,
    vals: Box<[AtomicU64]>,
    mask: usize,
    publish_failed: AtomicU64,
}

/// Probe limit before an insert gives up (lookups stop at the first
/// empty slot anyway).
const DIR_MAX_PROBES: usize = 64;

fn pack_v4(addr: SocketAddr) -> Option<u64> {
    match addr {
        SocketAddr::V4(v4) => Some(((u32::from(*v4.ip()) as u64) << 16) | v4.port() as u64),
        SocketAddr::V6(_) => None,
    }
}

fn unpack_v4(packed: u64) -> SocketAddr {
    let ip = (packed >> 16) as u32;
    let port = (packed & 0xFFFF) as u16;
    SocketAddr::from((ip.to_be_bytes(), port))
}

impl FlowDirectory {
    /// A directory with room for `capacity` flows (rounded up to a
    /// power of two).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two();
        FlowDirectory {
            keys: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            vals: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
            publish_failed: AtomicU64::new(0),
        }
    }

    /// Publishes that could not land: sentinel flow id, IPv6 sender, or
    /// table saturation. The flow still works on its home shard via the
    /// private table; what's lost is only cross-shard feedback routing.
    pub fn publish_failed(&self) -> u64 {
        // ordering: Relaxed — monotone counter read by snapshots; no
        // non-atomic data rides on it.
        self.publish_failed.load(Ordering::Relaxed)
    }

    fn note_publish_failed(&self) {
        // ordering: Relaxed — see `publish_failed`.
        self.publish_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes `flow → sender`. Lock-free; loses the race gracefully
    /// (first writer wins, same-flow re-publish updates the value).
    ///
    /// The protocol carries no non-atomic payload: a slot's value is
    /// the single u64 in `vals`, and a slot's key never changes once
    /// claimed. `lookup` treats `vals == 0` as "insert in flight", so
    /// no ordering edge between `keys` and `vals` is required for
    /// safety — the orderings below are the weakest that keep the
    /// claim→value publication sequenced (audited in PR 9; the
    /// pre-audit AcqRel/Acquire on the key probes was stronger than
    /// the protocol needs).
    pub fn publish(&self, flow: u64, sender: SocketAddr) {
        let key = flow.wrapping_add(1);
        if key == 0 {
            self.note_publish_failed(); // flow u64::MAX: private-table only
            return;
        }
        let Some(val) = pack_v4(sender) else {
            self.note_publish_failed(); // IPv6 sender: private-table only
            return;
        };
        let mut idx = (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & self.mask;
        for _ in 0..DIR_MAX_PROBES {
            // ordering: Relaxed — the key is only compared for
            // equality; no data is read through it and a stale 0 just
            // falls through to the CAS, which re-checks atomically.
            let cur = self.keys[idx].load(Ordering::Relaxed);
            if cur == key {
                // ordering: Release — pairs with the Acquire load in
                // `lookup`; a reader that sees this value sees a fully
                // published (key, value) slot.
                self.vals[idx].store(val, Ordering::Release);
                return;
            }
            if cur == 0 {
                // ordering: (Release, Relaxed) — success Release keeps
                // the slot claim ordered before the value store for
                // any observer; failure only routes control flow (the
                // returned key is compared for equality), so Relaxed.
                match self.keys[idx].compare_exchange(0, key, Ordering::Release, Ordering::Relaxed)
                {
                    Ok(_) => {
                        // ordering: Release — pairs with the Acquire
                        // load in `lookup` (see above).
                        self.vals[idx].store(val, Ordering::Release);
                        return;
                    }
                    Err(raced) if raced == key => {
                        // ordering: Release — same-flow race: both
                        // writers store a valid value for this key.
                        self.vals[idx].store(val, Ordering::Release);
                        return;
                    }
                    Err(_) => {} // someone else's flow took the slot; probe on
                }
            }
            idx = (idx + 1) & self.mask;
        }
        // Table saturated: flow stays private-table only.
        self.note_publish_failed();
    }

    /// Looks up a flow's sender, if any shard has published it.
    pub fn lookup(&self, flow: u64) -> Option<SocketAddr> {
        let key = flow.wrapping_add(1);
        if key == 0 {
            return None;
        }
        let mut idx = (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & self.mask;
        for _ in 0..DIR_MAX_PROBES {
            // ordering: Relaxed — equality-only probe; a stale 0 or
            // stale key misroutes this lookup to a miss at worst (the
            // caller falls back to dropping the datagram, same as a
            // genuinely unpublished flow), never to a wrong sender.
            let cur = self.keys[idx].load(Ordering::Relaxed);
            if cur == 0 {
                return None;
            }
            if cur == key {
                // ordering: Acquire — pairs with the Release stores in
                // `publish`; nonzero means the publication completed.
                let val = self.vals[idx].load(Ordering::Acquire);
                if val == 0 {
                    return None; // insert in flight
                }
                return Some(unpack_v4(val));
            }
            idx = (idx + 1) & self.mask;
        }
        None
    }
}

/// A running sharded relay.
///
/// Shard threads are owned by a supervisor thread ([`crate::supervisor`]):
/// a crashed or wedged shard is restarted on a fresh socket bound to the
/// same `SO_REUSEPORT` port, under the same [`ShardStats`] handle (so
/// counters stay monotone across restarts) and against the same shared
/// [`FlowDirectory`] (so cross-shard feedback routing for in-flight flows
/// survives; the replacement re-learns private-table entries from each
/// flow's next data packet).
pub struct ShardedRelay {
    local_addr: SocketAddr,
    shard_stats: Vec<Arc<ShardStats>>,
    fault_stats: Arc<FaultStats>,
    directory: Arc<FlowDirectory>,
    recorder: LatencyRecorder,
    stop: Arc<AtomicBool>,
    supervisor: Option<thread::JoinHandle<()>>,
    slots: Vec<Arc<ShardSlot>>,
    shared: Arc<SupervisorShared>,
    layer: SocketLayer,
    kind: RelayKind,
}

impl ShardedRelay {
    /// Binds `config.shards` sockets on `listen` (one port, kernel
    /// flow steering) and starts one relay thread per shard, plus the
    /// supervisor thread that owns them.
    ///
    /// # Errors
    /// Socket/bind errors, `Unsupported` for a forced-mmsg layer off
    /// Linux, or `InvalidInput` for an invalid fault/overload config.
    pub fn start(listen: SocketAddr, config: RelayConfig) -> io::Result<ShardedRelay> {
        if let Some(fc) = &config.faults {
            fc.validate()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        }
        if let Some(ov) = &config.overload {
            ov.validate()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        }
        let shards = effective_shards(config.shards);
        // The blackout schedule (and every shard's fault clock) is
        // anchored here, not per worker spawn, so restarted shards stay
        // on the relay-wide schedule.
        let epoch = Instant::now();
        let first = batch::bind_reuseport(listen)?;
        let local_addr = first.local_addr()?;
        let mut prebound: Vec<Option<std::net::UdpSocket>> = vec![Some(first)];
        for _ in 1..shards {
            prebound.push(Some(batch::bind_reuseport(local_addr)?));
        }

        let directory = Arc::new(FlowDirectory::new(64 * 1024));
        let recorder = LatencyRecorder::new();
        let stop = Arc::new(AtomicBool::new(false));
        let fault_stats = Arc::new(FaultStats::default());
        let shared = Arc::new(SupervisorShared::default());
        let layer = config.layer.resolved();
        let shard_stats: Vec<Arc<ShardStats>> = (0..shards)
            .map(|_| Arc::new(ShardStats::default()))
            .collect();
        let slots: Vec<Arc<ShardSlot>> = (0..shards).map(|_| Arc::new(ShardSlot::new())).collect();

        // The one spawner, used for the initial generation (prebound
        // sockets) and for every supervisor restart (fresh bind to the
        // same port). Everything a worker needs outlives the worker:
        // stats, slots, the directory.
        let mut spawn = {
            let config = config.clone();
            let directory = directory.clone();
            let recorder = recorder.clone();
            let stop = stop.clone();
            let fault_stats = fault_stats.clone();
            let shard_stats = shard_stats.clone();
            let slots = slots.clone();
            move |shard_id: usize, generation: u64| -> io::Result<thread::JoinHandle<()>> {
                let socket = match prebound[shard_id].take() {
                    Some(s) => s,
                    None => bind_with_retry(local_addr)?,
                };
                let inner = batch::open(socket, config.layer)?;
                let io: Box<dyn BatchIo> = match &config.faults {
                    Some(fc) => {
                        // Per shard × generation fault stream: a restart
                        // never replays the exact fault sequence that
                        // killed (or starved) the previous incarnation,
                        // while the run stays seed-reproducible.
                        let seed =
                            trace::derive_seed(fc.seed, ((shard_id as u64) << 32) | generation);
                        Box::new(FaultedIo::new(
                            inner,
                            fc.clone(),
                            seed,
                            epoch,
                            fault_stats.clone(),
                        ))
                    }
                    None => inner,
                };
                let worker = ShardWorker {
                    io,
                    kind: config.kind,
                    receiver: config.receiver,
                    detector: LossDetector::new(config.detector),
                    sweep_interval: config.sweep_interval,
                    directory: directory.clone(),
                    stats: shard_stats[shard_id].clone(),
                    stop: stop.clone(),
                    recorder: recorder.clone(),
                    slot: slots[shard_id].clone(),
                    my_gen: generation,
                    overload: config.overload.map(OverloadState::new),
                };
                thread::Builder::new()
                    .name(format!("relay-shard-{shard_id}.g{generation}"))
                    .spawn(move || worker.run())
            }
        };

        let mut handles = Vec::with_capacity(shards);
        for shard_id in 0..shards {
            handles.push(spawn(shard_id, 0)?);
        }
        // The supervisor always runs (single code path); when disabled
        // it only joins the workers on shutdown.
        let supervisor = {
            let cfg = config.supervisor;
            let slots = slots.clone();
            let stop = stop.clone();
            let shared = shared.clone();
            thread::Builder::new()
                .name("relay-supervisor".into())
                .spawn(move || supervisor::supervise(cfg, slots, handles, stop, shared, spawn))?
        };

        Ok(ShardedRelay {
            local_addr,
            shard_stats,
            fault_stats,
            directory,
            recorder,
            stop,
            supervisor: Some(supervisor),
            slots,
            shared,
            layer,
            kind: config.kind,
        })
    }

    /// The shared bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of running shards.
    pub fn shards(&self) -> usize {
        self.shard_stats.len()
    }

    /// The socket layer in use.
    pub fn layer(&self) -> SocketLayer {
        self.layer
    }

    /// The relay logic in use.
    pub fn kind(&self) -> RelayKind {
        self.kind
    }

    /// Merged counters across shards (the only cross-shard read).
    pub fn stats(&self) -> RelayStats {
        let mut merged = RelayStats::default();
        for s in &self.shard_stats {
            merged.merge(s);
        }
        merged
    }

    /// Per-shard counter handles, for load-balance inspection.
    pub fn shard_stats(&self) -> &[Arc<ShardStats>] {
        &self.shard_stats
    }

    /// Fault-injection counters (all zero when `faults` was `None`).
    pub fn fault_stats(&self) -> FaultSnapshot {
        self.fault_stats.snapshot()
    }

    /// The shared cross-shard flow directory (survives shard restarts).
    pub fn directory(&self) -> &FlowDirectory {
        &self.directory
    }

    /// Supervision activity so far: restarts, crash/wedge detections,
    /// abandoned shards.
    pub fn supervisor_stats(&self) -> SupervisorStats {
        SupervisorStats {
            restarts: self.slots.iter().map(|s| s.restarts()).sum(),
            // ordering: Relaxed — monotone event counters for
            // snapshots; no non-atomic data rides on them.
            crashes_detected: self.shared.crashes.load(Ordering::Relaxed),
            wedges_detected: self.shared.wedges.load(Ordering::Relaxed),
            gave_up: self.shared.gave_up.load(Ordering::Relaxed),
        }
    }

    /// Injects a simulated crash into `shard` (consumed at its next
    /// loop iteration): the worker thread exits, dropping its socket.
    pub fn inject_crash(&self, shard: usize) {
        self.slots[shard].inject(ChaosKind::Crash);
    }

    /// Injects a simulated wedge into `shard`: the worker stops beating
    /// but holds its socket open until the supervisor supersedes it.
    pub fn inject_wedge(&self, shard: usize) {
        self.slots[shard].inject(ChaosKind::Wedge);
    }

    /// The generation `shard` is (supposed to be) running; bumps count
    /// completed supersessions.
    pub fn shard_generation(&self, shard: usize) -> u64 {
        self.slots[shard].generation()
    }

    /// `shard`'s liveness counter (advances once per relay-loop
    /// iteration).
    pub fn shard_heartbeat(&self, shard: usize) -> u64 {
        self.slots[shard].heartbeat()
    }

    /// Amortized per-datagram processing latency (batch time / batch
    /// size — the Figure 5b analogue at batch granularity).
    pub fn recorder(&self) -> &LatencyRecorder {
        &self.recorder
    }

    /// Signals every shard to stop and waits (via the supervisor, which
    /// owns the worker handles) for them to exit. Idempotent.
    pub fn shutdown(&mut self) {
        // ordering: Release — pairs with the Acquire polls in
        // `ShardWorker::run` and `supervisor::supervise`, so a thread
        // that observes the flag also observes everything the
        // shutting-down thread did before it.
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedRelay {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds a replacement `SO_REUSEPORT` socket for a restarted shard.
///
/// On Linux this succeeds immediately (the port is shared). On the
/// portable single-shard path there is no `SO_REUSEPORT`, so the port
/// only frees up once the previous incarnation's socket is fully
/// closed — a wedged orphan may hold it for a poll or two. A short
/// bounded retry covers that window; a persistent failure surfaces to
/// the supervisor, which burns restart budget and eventually gives up.
fn bind_with_retry(addr: SocketAddr) -> io::Result<std::net::UdpSocket> {
    const ATTEMPTS: usize = 3;
    let mut last_err = None;
    for attempt in 0..ATTEMPTS {
        if attempt > 0 {
            thread::sleep(Duration::from_millis(5));
        }
        match batch::bind_reuseport(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one bind attempt"))
}

/// Shard count after platform clamping: 0 = one per core; >1 requires
/// `SO_REUSEPORT`.
pub fn effective_shards(requested: usize) -> usize {
    let want = if requested == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    if batch::reuseport_available() {
        want.max(1)
    } else {
        1
    }
}

/// One shard's state: everything here is private to its thread.
struct ShardWorker {
    io: Box<dyn BatchIo>,
    kind: RelayKind,
    receiver: SocketAddr,
    detector: LossDetector,
    sweep_interval: Duration,
    directory: Arc<FlowDirectory>,
    stats: Arc<ShardStats>,
    stop: Arc<AtomicBool>,
    recorder: LatencyRecorder,
    /// Supervision slot shared with the supervisor thread.
    slot: Arc<ShardSlot>,
    /// The generation this incarnation was spawned as; a bumped slot
    /// generation means we have been superseded and must exit.
    my_gen: u64,
    /// Shed-ladder state (`None` = admission control off, zero cost).
    overload: Option<OverloadState>,
}

/// Per-batch counter accumulator, flushed to the shard atomics once per
/// batch (keeps atomics off the per-packet path).
#[derive(Default)]
struct Local {
    forwarded: u64,
    nacks: u64,
    reversed: u64,
    dropped: u64,
    shed_nacked: u64,
    shed_dropped: u64,
    nacks_coalesced: u64,
    send_err_data: u64,
    send_err_ctrl: u64,
}

/// Errors a shard absorbs by retrying instead of dying: the
/// EAGAIN family (`WouldBlock` / `TimedOut` / `Interrupted`) and ENOBUFS
/// (`OutOfMemory`), whether real or synthesized by the fault shim.
fn is_transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
            | io::ErrorKind::OutOfMemory
    )
}

impl ShardWorker {
    fn run(mut self) {
        let mut ring = RecvRing::new();
        let mut queue = SendQueue::new();
        // Private flow table: flow → sender address. netproxy is exempt
        // from the simlint hash-collection rule (wall-clock crate, no
        // sim-path determinism contract).
        let mut senders: HashMap<u64, SocketAddr> = HashMap::new();
        let mut last_activity: HashMap<u64, Instant> = HashMap::new();
        let mut next_sweep = Instant::now() + self.sweep_interval;
        loop {
            // ordering: Acquire — pairs with the Release store in
            // `ShardedRelay::shutdown`.
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            // Superseded (wedge recovery): exit and release the socket,
            // which is what actually ends the blackhole.
            if self.slot.generation() != self.my_gen {
                return;
            }
            self.slot.beat();
            match self.slot.take_chaos() {
                None => {}
                // Simulated crash: die as after a hard socket error.
                Some(ChaosKind::Crash) => return,
                // Simulated wedge: stop servicing the socket but keep
                // it open — flows steered here blackhole until the
                // supervisor notices the stale heartbeat.
                Some(ChaosKind::Wedge) => {
                    self.wedge_stall();
                    return;
                }
            }
            let got = match self.io.recv_batch(&mut ring) {
                Ok(n) => n,
                Err(e) if is_transient_io(&e) => {
                    // ordering: Relaxed — monotone counter, as in the
                    // batch flush below.
                    self.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Err(_) => return, // socket died; the supervisor restarts us
            };
            if got == 0 {
                if self.kind == RelayKind::Detecting && Instant::now() >= next_sweep {
                    self.sweep(&senders, &mut last_activity, &mut queue);
                    next_sweep = Instant::now() + self.sweep_interval;
                }
                continue;
            }
            let start = Instant::now();
            let mut local = Local::default();
            if let Some(ov) = self.overload.as_mut() {
                ov.begin_batch(start);
            }
            for i in 0..got {
                self.classify(
                    &mut ring,
                    i,
                    &mut queue,
                    &mut senders,
                    &mut last_activity,
                    &mut local,
                );
            }
            let send_result = self.io.send_batch(&ring, &queue);
            let outcome = match &send_result {
                Ok(o) => *o,
                Err(_) => {
                    // Whole-batch send failure: everything queued was
                    // lost. Classify the unsent queue (data vs control)
                    // so the soak ledger can account for each datagram
                    // even on this path.
                    for qi in 0..queue.len() {
                        let (bytes, _) = queue.resolve(&ring, qi);
                        let is_data = DatagramView::parse(bytes)
                            .map(|v| v.flags().contains(Flags::DATA))
                            .unwrap_or(false);
                        if is_data {
                            local.send_err_data += 1;
                        } else {
                            local.send_err_ctrl += 1;
                        }
                    }
                    SendOutcome {
                        sent: 0,
                        errors: queue.len() as u64,
                    }
                }
            };
            queue.clear();
            // Flush the batch's counters in one go — unconditionally,
            // *before* any error return, so a dying shard never loses a
            // processed batch from the ledger.
            let s = &self.stats;
            // ordering: Relaxed — monotone counters read only by
            // `RelayStats::merge` snapshots, which tolerate mixed
            // per-counter staleness; no non-atomic data is published.
            s.forwarded.fetch_add(local.forwarded, Ordering::Relaxed);
            s.nacks.fetch_add(local.nacks, Ordering::Relaxed);
            s.reversed.fetch_add(local.reversed, Ordering::Relaxed);
            s.dropped.fetch_add(local.dropped, Ordering::Relaxed);
            s.send_errors.fetch_add(outcome.errors, Ordering::Relaxed);
            s.batches.fetch_add(1, Ordering::Relaxed);
            s.received.fetch_add(got as u64, Ordering::Relaxed);
            s.max_batch.fetch_max(got as u64, Ordering::Relaxed);
            s.shed_nacked
                .fetch_add(local.shed_nacked, Ordering::Relaxed);
            s.shed_dropped
                .fetch_add(local.shed_dropped, Ordering::Relaxed);
            s.nacks_coalesced
                .fetch_add(local.nacks_coalesced, Ordering::Relaxed);
            s.send_err_data
                .fetch_add(local.send_err_data, Ordering::Relaxed);
            s.send_err_ctrl
                .fetch_add(local.send_err_ctrl, Ordering::Relaxed);
            self.recorder
                .record_nanos(start.elapsed().as_nanos() as u64 / got as u64);
            if self.kind == RelayKind::Detecting && Instant::now() >= next_sweep {
                self.sweep(&senders, &mut last_activity, &mut queue);
                next_sweep = Instant::now() + self.sweep_interval;
            }
            match send_result {
                Ok(_) => {}
                Err(e) if is_transient_io(&e) => {
                    // ordering: Relaxed — monotone counter, as above.
                    self.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => return, // counters flushed above; let the supervisor act
            }
        }
    }

    /// Simulated wedge: hold the socket open without servicing it until
    /// shutdown or supersession. Mirrors a worker stuck in a syscall or
    /// an infinite loop — the kernel keeps steering our share of flows
    /// into the unserviced receive queue the whole time.
    fn wedge_stall(&self) {
        loop {
            // ordering: Acquire — pairs with the Release stores in
            // `ShardedRelay::shutdown` / `ShardSlot::bump_generation`.
            if self.stop.load(Ordering::Acquire) || self.slot.generation() != self.my_gen {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Rung 1 of the shed ladder: may this datagram be forwarded?
    fn forward_ok(&mut self) -> bool {
        self.overload.as_mut().is_none_or(|ov| ov.forward.take())
    }

    /// Rungs 2–3: may a NACK for `flow` be emitted (or is it coalesced
    /// / shed)?
    fn nack_verdict(&mut self, flow: u64) -> NackVerdict {
        match self.overload.as_mut() {
            None => NackVerdict::Send,
            Some(ov) => ov.nack_verdict(flow),
        }
    }

    /// Classifies ring slot `i` and queues its output datagrams.
    fn classify(
        &mut self,
        ring: &mut RecvRing,
        i: usize,
        queue: &mut SendQueue,
        senders: &mut HashMap<u64, SocketAddr>,
        last_activity: &mut HashMap<u64, Instant>,
        local: &mut Local,
    ) {
        let from = ring.source(i);
        let (flags, flow, seq, wire_len) = match DatagramView::parse(ring.datagram(i)) {
            Ok(v) => (v.flags(), v.flow(), v.seq(), v.wire_bytes().len()),
            Err(_) => {
                local.dropped += 1;
                return;
            }
        };
        if flags.contains(Flags::DATA) {
            // Learn (and publish once) the flow's sender address.
            if senders.insert(flow, from) != Some(from) {
                self.directory.publish(flow, from);
            }
            match self.kind {
                RelayKind::Streamlined if flags.contains(Flags::TRIMMED) => {
                    // Trim-NACKs share the NACK budget: a NACK storm is
                    // a NACK storm regardless of what provoked it.
                    match self.nack_verdict(flow) {
                        NackVerdict::Send => {
                            // The NACK shares flow and seq with the
                            // trimmed header: rewrite the one differing
                            // byte in place and bounce the buffer back
                            // whence it came.
                            rewrite_trimmed_to_nack(ring.datagram_mut(i)).expect("parsed trimmed");
                            queue.push_slot(i, WIRE_HEADER_LEN, from);
                            local.nacks += 1;
                        }
                        NackVerdict::Coalesced => local.nacks_coalesced += 1,
                        NackVerdict::Shed => local.shed_dropped += 1,
                    }
                }
                RelayKind::Detecting => {
                    if !self.forward_ok() {
                        // Shed *before* the detector observes the seq: a
                        // shed datagram must look like network loss
                        // downstream, and observing it would suppress
                        // the very NACK that gets it retransmitted.
                        local.shed_dropped += 1;
                        return;
                    }
                    last_activity.insert(flow, Instant::now());
                    for loss in self.detector.observe(detector_flow(flow), seq) {
                        // Generated NACKs ride the same budget (note:
                        // detecting is not datagram-conserving — one
                        // arrival can yield several NACKs).
                        match self.nack_verdict(flow) {
                            NackVerdict::Send => {
                                queue.push_nack(flow, loss.seq, from);
                                local.nacks += 1;
                            }
                            NackVerdict::Coalesced => local.nacks_coalesced += 1,
                            NackVerdict::Shed => local.shed_dropped += 1,
                        }
                    }
                    queue.push_slot(i, wire_len, self.receiver);
                    local.forwarded += 1;
                }
                // Naive forwards everything — trimmed headers included —
                // and Streamlined forwards untrimmed data.
                _ => {
                    if self.forward_ok() {
                        queue.push_slot(i, wire_len, self.receiver);
                        local.forwarded += 1;
                    } else if self.kind == RelayKind::Naive {
                        // Naive has no NACK concept: over budget is a
                        // plain (counted) drop.
                        local.shed_dropped += 1;
                    } else {
                        // Ladder rung 2: no forward budget → tell the
                        // sender *now* with a NACK (in-place rewrite,
                        // header-only bounce) instead of dropping
                        // silently and waiting out an RTO.
                        match self.nack_verdict(flow) {
                            NackVerdict::Send => {
                                rewrite_data_to_nack(ring.datagram_mut(i)).expect("parsed data");
                                queue.push_slot(i, WIRE_HEADER_LEN, from);
                                local.nacks += 1;
                                local.shed_nacked += 1;
                            }
                            NackVerdict::Coalesced => local.nacks_coalesced += 1,
                            // Rung 3: both buckets dry — drop, counted.
                            NackVerdict::Shed => local.shed_dropped += 1,
                        }
                    }
                }
            }
        } else {
            // Feedback (ACK/NACK): reverse toward the flow's sender.
            // Private table first; the lock-free directory covers flows
            // whose feedback was steered to a foreign shard.
            let dest = senders.get(&flow).copied().or_else(|| {
                let found = self.directory.lookup(flow);
                if let Some(addr) = found {
                    senders.insert(flow, addr); // cache for next time
                }
                found
            });
            match dest {
                Some(sender) => {
                    queue.push_slot(i, wire_len, sender);
                    local.reversed += 1;
                }
                None => local.dropped += 1,
            }
        }
    }

    /// Quiescence sweep ([`RelayKind::Detecting`]): re-NACK tail losses
    /// of flows with no recent arrivals. Sends only scratch-ring NACKs,
    /// so it can flush against an empty receive ring.
    ///
    /// Sweep NACKs are deliberately *not* run through the shed ladder:
    /// they fire on quiescence (so never during a storm), are the last
    /// recovery line for tail losses, and are bounded by the detector's
    /// own pending-loss memory.
    fn sweep(
        &mut self,
        senders: &HashMap<u64, SocketAddr>,
        last_activity: &mut HashMap<u64, Instant>,
        queue: &mut SendQueue,
    ) {
        let now = Instant::now();
        let mut nacks = 0u64;
        for (&flow, &sender) in senders {
            let quiet = last_activity
                .get(&flow)
                .is_none_or(|&t| now.duration_since(t) >= self.sweep_interval);
            if !quiet {
                continue;
            }
            for loss in self.detector.sweep(detector_flow(flow)) {
                queue.push_nack(flow, loss.seq, sender);
                nacks += 1;
            }
        }
        if queue.is_empty() {
            return;
        }
        let ring = RecvRing::new();
        if let Ok(outcome) = self.io.send_batch(&ring, queue) {
            // ordering: Relaxed — monotone counters, as in the batch
            // flush above.
            self.stats.nacks.fetch_add(nacks, Ordering::Relaxed);
            self.stats
                .send_errors
                .fetch_add(outcome.errors, Ordering::Relaxed);
        }
        queue.clear();
    }
}

/// Maps the 64-bit wire flow id into the detector's flow key space.
fn detector_flow(flow: u64) -> dcsim::packet::FlowId {
    dcsim::packet::FlowId(flow as u32)
}

// The FlowDirectory tests below are pure (threads + atomics, no sockets)
// and run under Miri, which checks the lock-free probe/publish protocol
// for undefined behavior; loom explores its interleavings exhaustively
// (tests/loom.rs). Socket-driven relay tests live in `tests` and are
// skipped under Miri.
#[cfg(test)]
mod directory_tests {
    use super::*;
    use std::net::SocketAddr;
    use std::sync::Arc;

    #[test]
    fn directory_publish_lookup_roundtrip() {
        let dir = FlowDirectory::new(64);
        let addr: SocketAddr = "127.0.0.1:4567".parse().unwrap();
        for flow in 0..100u64 {
            dir.publish(flow, addr);
        }
        for flow in 0..100u64 {
            // Capacity 64 < 100 inserts: saturated probes may miss, but
            // hits must be exact.
            if let Some(got) = dir.lookup(flow) {
                assert_eq!(got, addr);
            }
        }
        assert_eq!(dir.lookup(u64::MAX), None, "sentinel flow never published");
    }

    #[test]
    fn directory_counts_failed_publishes() {
        // Capacity 1 → one slot, mask 0: every probe lands on index 0,
        // so a second distinct flow saturates after DIR_MAX_PROBES.
        let dir = FlowDirectory::new(1);
        let v4: SocketAddr = "127.0.0.1:1000".parse().unwrap();
        assert_eq!(dir.publish_failed(), 0);

        // Sentinel: flow u64::MAX maps to key 0 ("empty").
        dir.publish(u64::MAX, v4);
        assert_eq!(dir.publish_failed(), 1, "sentinel flow counted");

        // IPv6 senders can't be packed into the value word.
        dir.publish(7, "[::1]:1000".parse().unwrap());
        assert_eq!(dir.publish_failed(), 2, "ipv6 sender counted");

        // Successful publish (and same-flow re-publish) never counts.
        dir.publish(7, v4);
        dir.publish(7, v4);
        assert_eq!(dir.publish_failed(), 2);
        assert_eq!(dir.lookup(7), Some(v4));

        // Saturation: a second flow finds every probe occupied.
        dir.publish(8, v4);
        assert_eq!(dir.publish_failed(), 3, "saturated table counted");
        assert_eq!(dir.lookup(8), None, "saturated flow stays private");
        assert_eq!(dir.lookup(7), Some(v4), "existing entry untouched");
    }

    #[test]
    fn directory_survives_concurrent_publishers() {
        let dir = Arc::new(FlowDirectory::new(1024));
        let mut joins = Vec::new();
        for t in 0..4u16 {
            let dir = dir.clone();
            joins.push(std::thread::spawn(move || {
                let addr: SocketAddr = format!("127.0.0.{}:1000", t + 1).parse().unwrap();
                for flow in 0..500u64 {
                    dir.publish(flow, addr);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut found = 0;
        for flow in 0..500u64 {
            if dir.lookup(flow).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, 500, "every flow resolvable after the race");
    }
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::wire::WireHeader;
    use std::net::UdpSocket;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("addr")
    }

    fn recv_one(sock: &UdpSocket) -> (WireHeader, Vec<u8>, SocketAddr) {
        let mut buf = [0u8; 2048];
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let (n, from) = sock.recv_from(&mut buf).expect("timely datagram");
        let (h, p) = WireHeader::decode(&buf[..n]).expect("wire");
        (h, p.to_vec(), from)
    }

    fn layers() -> Vec<SocketLayer> {
        if cfg!(target_os = "linux") {
            vec![SocketLayer::Mmsg, SocketLayer::Fallback]
        } else {
            vec![SocketLayer::Fallback]
        }
    }

    fn start(kind: RelayKind, layer: SocketLayer, receiver: SocketAddr) -> ShardedRelay {
        ShardedRelay::start(
            loopback(),
            RelayConfig {
                kind,
                shards: 2,
                layer,
                detector: LossDetectorConfig {
                    reorder_threshold: 3,
                    max_pending: 1024,
                    ..Default::default()
                },
                sweep_interval: Duration::from_millis(30),
                ..RelayConfig::streamlined(receiver)
            },
        )
        .expect("relay starts")
    }

    #[test]
    fn streamlined_forwards_data_both_layers() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(
                RelayKind::Streamlined,
                layer,
                receiver.local_addr().unwrap(),
            );
            let sender = UdpSocket::bind(loopback()).unwrap();
            let wire = WireHeader::data(3, 1, 4).encode(&[9, 9, 9, 9]);
            sender.send_to(&wire, relay.local_addr()).unwrap();
            let (h, p, _) = recv_one(&receiver);
            assert_eq!(h.flow, 3);
            assert_eq!(p, vec![9, 9, 9, 9]);
            wait_for(|| relay.stats().forwarded == 1);
        }
    }

    #[test]
    fn streamlined_nacks_trimmed_both_layers() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(
                RelayKind::Streamlined,
                layer,
                receiver.local_addr().unwrap(),
            );
            let sender = UdpSocket::bind(loopback()).unwrap();
            sender
                .send_to(&WireHeader::trimmed(3, 42).encode(&[]), relay.local_addr())
                .unwrap();
            let (h, _, from) = recv_one(&sender);
            assert_eq!(from, relay.local_addr());
            assert_eq!(h, WireHeader::nack(3, 42));
            wait_for(|| relay.stats().nacks == 1);
        }
    }

    #[test]
    fn reverse_path_crosses_shards_via_directory() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(
                RelayKind::Streamlined,
                layer,
                receiver.local_addr().unwrap(),
            );
            let sender = UdpSocket::bind(loopback()).unwrap();
            // Teach the relay flow 8's sender with a data packet.
            sender
                .send_to(&WireHeader::data(8, 0, 1).encode(&[1]), relay.local_addr())
                .unwrap();
            recv_one(&receiver);
            // The receiver's ACK may land on either shard; the flow
            // directory must route it back regardless.
            receiver
                .send_to(&WireHeader::ack(8, 0).encode(&[]), relay.local_addr())
                .unwrap();
            let (h, _, _) = recv_one(&sender);
            assert!(h.flags.contains(Flags::ACK));
            wait_for(|| relay.stats().reversed == 1);
        }
    }

    #[test]
    fn garbage_dropped_and_counted() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(
                RelayKind::Streamlined,
                layer,
                receiver.local_addr().unwrap(),
            );
            let sender = UdpSocket::bind(loopback()).unwrap();
            sender.send_to(&[0xAB; 50], relay.local_addr()).unwrap();
            wait_for(|| relay.stats().dropped == 1);
            assert_eq!(relay.stats().forwarded, 0);
        }
    }

    #[test]
    fn naive_forwards_trimmed_without_nacking() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(RelayKind::Naive, layer, receiver.local_addr().unwrap());
            let sender = UdpSocket::bind(loopback()).unwrap();
            sender
                .send_to(&WireHeader::trimmed(3, 42).encode(&[]), relay.local_addr())
                .unwrap();
            let (h, _, _) = recv_one(&receiver);
            assert!(h.flags.contains(Flags::TRIMMED), "trimmed forwarded as-is");
            let stats = relay.stats();
            assert_eq!(stats.nacks, 0, "naive never NACKs");
        }
    }

    #[test]
    fn detecting_nacks_inferred_gap() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let recv_addr = receiver.local_addr().unwrap();
            std::thread::spawn(move || {
                let mut buf = [0u8; 2048];
                while receiver.recv_from(&mut buf).is_ok() {}
            });
            let relay = start(RelayKind::Detecting, layer, recv_addr);
            let sender = UdpSocket::bind(loopback()).unwrap();
            let payload = vec![0u8; 64];
            for seq in [0u64, 2, 3, 4, 5] {
                sender
                    .send_to(
                        &WireHeader::data(7, seq, 64).encode(&payload),
                        relay.local_addr(),
                    )
                    .unwrap();
            }
            let (h, _, _) = recv_one(&sender);
            assert!(h.flags.contains(Flags::NACK));
            assert_eq!(h.seq, 1);
        }
    }

    #[test]
    fn detecting_sweep_catches_tail_loss() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let recv_addr = receiver.local_addr().unwrap();
            std::thread::spawn(move || {
                let mut buf = [0u8; 2048];
                while receiver.recv_from(&mut buf).is_ok() {}
            });
            let relay = start(RelayKind::Detecting, layer, recv_addr);
            let sender = UdpSocket::bind(loopback()).unwrap();
            let payload = vec![0u8; 64];
            for seq in [0u64, 2] {
                sender
                    .send_to(
                        &WireHeader::data(9, seq, 64).encode(&payload),
                        relay.local_addr(),
                    )
                    .unwrap();
            }
            let (h, _, _) = recv_one(&sender);
            assert!(h.flags.contains(Flags::NACK));
            assert_eq!(h.seq, 1);
        }
    }

    #[test]
    fn records_processing_latency() {
        let receiver = UdpSocket::bind(loopback()).unwrap();
        let relay = start(
            RelayKind::Streamlined,
            SocketLayer::Auto,
            receiver.local_addr().unwrap(),
        );
        let sender = UdpSocket::bind(loopback()).unwrap();
        for seq in 0..20 {
            sender
                .send_to(
                    &WireHeader::data(1, seq, 8).encode(&[0; 8]),
                    relay.local_addr(),
                )
                .unwrap();
        }
        let mut buf = [0u8; 2048];
        receiver
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut got = 0;
        while got < 20 {
            let (n, _) = receiver.recv_from(&mut buf).expect("forwarded");
            got += usize::from(n > 0);
        }
        wait_for(|| relay.recorder().count() >= 1);
        wait_for(|| relay.stats().max_batch >= 1);
    }

    #[test]
    fn shutdown_stops_all_shards() {
        let receiver = UdpSocket::bind(loopback()).unwrap();
        let mut relay = start(
            RelayKind::Streamlined,
            SocketLayer::Auto,
            receiver.local_addr().unwrap(),
        );
        assert!(relay.shards() >= 1);
        relay.shutdown();
        // Idempotent, and Drop after shutdown is fine too.
        relay.shutdown();
    }

    /// Polls `cond` for up to 2 s (counter flushes are per batch, so a
    /// moment behind the socket observations).
    fn wait_for(cond: impl Fn() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "condition not reached in time"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
