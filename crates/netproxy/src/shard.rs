//! Per-core sharded relay: N worker threads, no cross-shard locks.
//!
//! Each shard owns an `SO_REUSEPORT` socket bound to the same port (the
//! kernel steers every 4-tuple consistently to one shard), a *private*
//! flow table, and a private loss detector — per-flow state never
//! crosses a shard boundary on the hot path. Per-shard counters are
//! plain thread-local accumulators flushed once per batch into that
//! shard's own atomics; merging across shards happens only in
//! [`ShardedRelay::stats`] snapshots.
//!
//! The one cross-shard wrinkle is the reverse path: receiver feedback
//! arrives on the *receiver's* 4-tuple, which the kernel may steer to a
//! different shard than the one that learned the flow's sender. The
//! [`FlowDirectory`] covers that case: a fixed-size, lock-free
//! (CAS-insert, load-lookup) flow→sender map that the owning shard
//! publishes into once per flow, and foreign shards consult only on a
//! private-table miss. No locks, no `Arc<Mutex>`, writes happen once
//! per flow rather than once per packet.
//!
//! On platforms without `SO_REUSEPORT` the relay clamps itself to a
//! single shard over the portable socket layer — same behavior, less
//! parallelism (see `batch.rs`).
//!
//! Three relay variants run on this engine (all over both socket
//! layers):
//!
//! * [`RelayKind::Streamlined`] — the paper's §3 relay: trimmed header →
//!   NACK rewritten **in place** (one flags-byte store) and bounced to
//!   the sender; data forwarded to the receiver straight out of the
//!   receive ring; feedback reversed.
//! * [`RelayKind::Naive`] — the no-insight baseline on the same UDP
//!   datapath: forwards everything (trimmed headers included) to the
//!   receiver and reverses feedback, generating no NACKs. This isolates
//!   the streamlined *decision* from the datapath speed, at line rate.
//! * [`RelayKind::Detecting`] — FW#1: no trimming support assumed; per-
//!   shard bounded-memory gap inference NACKs inferred losses, plus a
//!   quiescence sweep for tail losses.

use crate::batch::{self, BatchIo, RecvRing, SendQueue, SocketLayer};
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use crate::wire::{rewrite_trimmed_to_nack, DatagramView, Flags, WIRE_HEADER_LEN};
use incast_core::lossdetect::{LossDetector, LossDetectorConfig};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use trace::LatencyRecorder;

/// Which relay logic the sharded engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayKind {
    /// Blind bidirectional forwarding (no NACK generation).
    Naive,
    /// Trim-aware: trimmed header → in-place NACK to the sender.
    Streamlined,
    /// Gap inference: NACKs from per-shard loss detection + sweep.
    Detecting,
}

impl RelayKind {
    /// Short name for logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RelayKind::Naive => "naive",
            RelayKind::Streamlined => "streamlined",
            RelayKind::Detecting => "detecting",
        }
    }
}

/// Configuration of a [`ShardedRelay`].
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Relay logic.
    pub kind: RelayKind,
    /// Worker threads / sockets. 0 = one per available core. Clamped to
    /// 1 on platforms without `SO_REUSEPORT`.
    pub shards: usize,
    /// Socket layer (mmsg or portable fallback).
    pub layer: SocketLayer,
    /// Where data packets are relayed to.
    pub receiver: SocketAddr,
    /// Loss-detector tuning ([`RelayKind::Detecting`] only).
    pub detector: LossDetectorConfig,
    /// Quiescence-sweep period ([`RelayKind::Detecting`] only).
    pub sweep_interval: Duration,
}

impl RelayConfig {
    /// A streamlined relay toward `receiver` with auto shard count.
    pub fn streamlined(receiver: SocketAddr) -> Self {
        RelayConfig {
            kind: RelayKind::Streamlined,
            shards: 0,
            layer: SocketLayer::Auto,
            receiver,
            detector: LossDetectorConfig::default(),
            sweep_interval: Duration::from_millis(50),
        }
    }
}

/// One shard's counters. Written (flushed once per batch) only by the
/// owning shard thread; read by snapshots.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Data datagrams forwarded to the receiver.
    pub forwarded: AtomicU64,
    /// NACKs produced (in-place rewrites + generated).
    pub nacks: AtomicU64,
    /// Feedback datagrams forwarded back to a sender.
    pub reversed: AtomicU64,
    /// Malformed / unroutable datagrams dropped.
    pub dropped: AtomicU64,
    /// Outbound datagrams the kernel refused (previously silently
    /// swallowed by the single-datagram relays).
    pub send_errors: AtomicU64,
    /// Receive batches processed.
    pub batches: AtomicU64,
    /// Datagrams received.
    pub received: AtomicU64,
    /// Largest single receive batch seen.
    pub max_batch: AtomicU64,
}

/// A merged snapshot of every shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Data datagrams forwarded to the receiver.
    pub forwarded: u64,
    /// NACKs produced.
    pub nacks: u64,
    /// Feedback datagrams forwarded back to a sender.
    pub reversed: u64,
    /// Malformed / unroutable datagrams dropped.
    pub dropped: u64,
    /// Outbound datagrams the kernel refused.
    pub send_errors: u64,
    /// Receive batches processed.
    pub batches: u64,
    /// Datagrams received.
    pub received: u64,
    /// Largest single receive batch across shards.
    pub max_batch: u64,
}

impl RelayStats {
    /// Folds one shard's counters into this snapshot. Public so the
    /// loom model (`tests/loom.rs`) can check flush/snapshot races.
    pub fn merge(&mut self, s: &ShardStats) {
        // ordering: Relaxed — monotone counters, each a freestanding
        // u64; a snapshot may mix per-counter values from different
        // batches (e.g. `received` ahead of `batches`) but never reads
        // a value that was not written. No non-atomic data rides on
        // these loads, so no acquire edge is needed.
        self.forwarded += s.forwarded.load(Ordering::Relaxed);
        self.nacks += s.nacks.load(Ordering::Relaxed);
        self.reversed += s.reversed.load(Ordering::Relaxed);
        self.dropped += s.dropped.load(Ordering::Relaxed);
        self.send_errors += s.send_errors.load(Ordering::Relaxed);
        self.batches += s.batches.load(Ordering::Relaxed);
        self.received += s.received.load(Ordering::Relaxed);
        self.max_batch = self.max_batch.max(s.max_batch.load(Ordering::Relaxed));
    }
}

/// Fixed-size lock-free flow→sender directory for the cross-shard
/// reverse path. CAS-insert once per flow, plain loads on lookup;
/// linear probing, never resized, never locked.
///
/// Keys are stored as `flow + 1` so 0 can mean "empty"; flow
/// `u64::MAX` is therefore not publishable (its feedback still works on
/// the flow's home shard via the private table). Values pack an IPv4
/// `addr:port` into a u64; IPv6 senders likewise stay private-table
/// only. Both limits are irrelevant on the loopback testbed and
/// documented in DESIGN.md §13.
///
/// Public (and built on the `crate::sync` atomic shim) so the loom
/// models in `tests/loom.rs` can explore every interleaving of
/// `publish` against `publish` and `lookup`; the memory-ordering
/// choices below are justified per-site for simlint's
/// `unjustified-atomic-ordering` rule and cross-checked by TSAN in CI.
pub struct FlowDirectory {
    keys: Box<[AtomicU64]>,
    vals: Box<[AtomicU64]>,
    mask: usize,
}

/// Probe limit before an insert gives up (lookups stop at the first
/// empty slot anyway).
const DIR_MAX_PROBES: usize = 64;

fn pack_v4(addr: SocketAddr) -> Option<u64> {
    match addr {
        SocketAddr::V4(v4) => Some(((u32::from(*v4.ip()) as u64) << 16) | v4.port() as u64),
        SocketAddr::V6(_) => None,
    }
}

fn unpack_v4(packed: u64) -> SocketAddr {
    let ip = (packed >> 16) as u32;
    let port = (packed & 0xFFFF) as u16;
    SocketAddr::from((ip.to_be_bytes(), port))
}

impl FlowDirectory {
    /// A directory with room for `capacity` flows (rounded up to a
    /// power of two).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two();
        FlowDirectory {
            keys: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            vals: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Publishes `flow → sender`. Lock-free; loses the race gracefully
    /// (first writer wins, same-flow re-publish updates the value).
    ///
    /// The protocol carries no non-atomic payload: a slot's value is
    /// the single u64 in `vals`, and a slot's key never changes once
    /// claimed. `lookup` treats `vals == 0` as "insert in flight", so
    /// no ordering edge between `keys` and `vals` is required for
    /// safety — the orderings below are the weakest that keep the
    /// claim→value publication sequenced (audited in PR 9; the
    /// pre-audit AcqRel/Acquire on the key probes was stronger than
    /// the protocol needs).
    pub fn publish(&self, flow: u64, sender: SocketAddr) {
        let key = flow.wrapping_add(1);
        if key == 0 {
            return; // flow u64::MAX: private-table only
        }
        let Some(val) = pack_v4(sender) else {
            return; // IPv6 sender: private-table only
        };
        let mut idx = (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & self.mask;
        for _ in 0..DIR_MAX_PROBES {
            // ordering: Relaxed — the key is only compared for
            // equality; no data is read through it and a stale 0 just
            // falls through to the CAS, which re-checks atomically.
            let cur = self.keys[idx].load(Ordering::Relaxed);
            if cur == key {
                // ordering: Release — pairs with the Acquire load in
                // `lookup`; a reader that sees this value sees a fully
                // published (key, value) slot.
                self.vals[idx].store(val, Ordering::Release);
                return;
            }
            if cur == 0 {
                // ordering: (Release, Relaxed) — success Release keeps
                // the slot claim ordered before the value store for
                // any observer; failure only routes control flow (the
                // returned key is compared for equality), so Relaxed.
                match self.keys[idx].compare_exchange(0, key, Ordering::Release, Ordering::Relaxed)
                {
                    Ok(_) => {
                        // ordering: Release — pairs with the Acquire
                        // load in `lookup` (see above).
                        self.vals[idx].store(val, Ordering::Release);
                        return;
                    }
                    Err(raced) if raced == key => {
                        // ordering: Release — same-flow race: both
                        // writers store a valid value for this key.
                        self.vals[idx].store(val, Ordering::Release);
                        return;
                    }
                    Err(_) => {} // someone else's flow took the slot; probe on
                }
            }
            idx = (idx + 1) & self.mask;
        }
        // Table saturated: flow stays private-table only.
    }

    /// Looks up a flow's sender, if any shard has published it.
    pub fn lookup(&self, flow: u64) -> Option<SocketAddr> {
        let key = flow.wrapping_add(1);
        if key == 0 {
            return None;
        }
        let mut idx = (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & self.mask;
        for _ in 0..DIR_MAX_PROBES {
            // ordering: Relaxed — equality-only probe; a stale 0 or
            // stale key misroutes this lookup to a miss at worst (the
            // caller falls back to dropping the datagram, same as a
            // genuinely unpublished flow), never to a wrong sender.
            let cur = self.keys[idx].load(Ordering::Relaxed);
            if cur == 0 {
                return None;
            }
            if cur == key {
                // ordering: Acquire — pairs with the Release stores in
                // `publish`; nonzero means the publication completed.
                let val = self.vals[idx].load(Ordering::Acquire);
                if val == 0 {
                    return None; // insert in flight
                }
                return Some(unpack_v4(val));
            }
            idx = (idx + 1) & self.mask;
        }
        None
    }
}

/// A running sharded relay.
pub struct ShardedRelay {
    local_addr: SocketAddr,
    shard_stats: Vec<Arc<ShardStats>>,
    recorder: LatencyRecorder,
    stop: Arc<AtomicBool>,
    handles: Vec<thread::JoinHandle<()>>,
    layer: SocketLayer,
    kind: RelayKind,
}

impl ShardedRelay {
    /// Binds `config.shards` sockets on `listen` (one port, kernel
    /// flow steering) and starts one relay thread per shard.
    ///
    /// # Errors
    /// Socket/bind errors, or `Unsupported` for a forced-mmsg layer off
    /// Linux.
    pub fn start(listen: SocketAddr, config: RelayConfig) -> io::Result<ShardedRelay> {
        let shards = effective_shards(config.shards);
        let first = batch::bind_reuseport(listen)?;
        let local_addr = first.local_addr()?;
        let mut sockets = vec![first];
        for _ in 1..shards {
            sockets.push(batch::bind_reuseport(local_addr)?);
        }

        let directory = Arc::new(FlowDirectory::new(64 * 1024));
        let recorder = LatencyRecorder::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut shard_stats = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let layer = config.layer.resolved();
        for (shard_id, socket) in sockets.into_iter().enumerate() {
            let io = batch::open(socket, config.layer)?;
            let stats = Arc::new(ShardStats::default());
            shard_stats.push(stats.clone());
            let worker = ShardWorker {
                io,
                kind: config.kind,
                receiver: config.receiver,
                detector: LossDetector::new(config.detector),
                sweep_interval: config.sweep_interval,
                directory: directory.clone(),
                stats,
                stop: stop.clone(),
                recorder: recorder.clone(),
            };
            handles.push(
                thread::Builder::new()
                    .name(format!("relay-shard-{shard_id}"))
                    .spawn(move || worker.run())
                    .expect("spawn relay shard"),
            );
        }

        Ok(ShardedRelay {
            local_addr,
            shard_stats,
            recorder,
            stop,
            handles,
            layer,
            kind: config.kind,
        })
    }

    /// The shared bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of running shards.
    pub fn shards(&self) -> usize {
        self.shard_stats.len()
    }

    /// The socket layer in use.
    pub fn layer(&self) -> SocketLayer {
        self.layer
    }

    /// The relay logic in use.
    pub fn kind(&self) -> RelayKind {
        self.kind
    }

    /// Merged counters across shards (the only cross-shard read).
    pub fn stats(&self) -> RelayStats {
        let mut merged = RelayStats::default();
        for s in &self.shard_stats {
            merged.merge(s);
        }
        merged
    }

    /// Per-shard counter handles, for load-balance inspection.
    pub fn shard_stats(&self) -> &[Arc<ShardStats>] {
        &self.shard_stats
    }

    /// Amortized per-datagram processing latency (batch time / batch
    /// size — the Figure 5b analogue at batch granularity).
    pub fn recorder(&self) -> &LatencyRecorder {
        &self.recorder
    }

    /// Signals every shard to stop and waits for them to exit.
    pub fn shutdown(&mut self) {
        // ordering: Release — pairs with the Acquire poll in
        // `ShardWorker::run`, so a worker that observes the flag also
        // observes everything the shutting-down thread did before it.
        self.stop.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ShardedRelay {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shard count after platform clamping: 0 = one per core; >1 requires
/// `SO_REUSEPORT`.
pub fn effective_shards(requested: usize) -> usize {
    let want = if requested == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    if batch::reuseport_available() {
        want.max(1)
    } else {
        1
    }
}

/// One shard's state: everything here is private to its thread.
struct ShardWorker {
    io: Box<dyn BatchIo>,
    kind: RelayKind,
    receiver: SocketAddr,
    detector: LossDetector,
    sweep_interval: Duration,
    directory: Arc<FlowDirectory>,
    stats: Arc<ShardStats>,
    stop: Arc<AtomicBool>,
    recorder: LatencyRecorder,
}

/// Per-batch counter accumulator, flushed to the shard atomics once per
/// batch (keeps atomics off the per-packet path).
#[derive(Default)]
struct Local {
    forwarded: u64,
    nacks: u64,
    reversed: u64,
    dropped: u64,
}

impl ShardWorker {
    fn run(mut self) {
        let mut ring = RecvRing::new();
        let mut queue = SendQueue::new();
        // Private flow table: flow → sender address. netproxy is exempt
        // from the simlint hash-collection rule (wall-clock crate, no
        // sim-path determinism contract).
        let mut senders: HashMap<u64, SocketAddr> = HashMap::new();
        let mut last_activity: HashMap<u64, Instant> = HashMap::new();
        let mut next_sweep = Instant::now() + self.sweep_interval;
        // ordering: Acquire — pairs with the Release store in
        // `ShardedRelay::shutdown`.
        while !self.stop.load(Ordering::Acquire) {
            let got = match self.io.recv_batch(&mut ring) {
                Ok(n) => n,
                Err(_) => break, // socket died; shard exits, others continue
            };
            if got == 0 {
                if self.kind == RelayKind::Detecting && Instant::now() >= next_sweep {
                    self.sweep(&senders, &mut last_activity, &mut queue);
                    next_sweep = Instant::now() + self.sweep_interval;
                }
                continue;
            }
            let start = Instant::now();
            let mut local = Local::default();
            for i in 0..got {
                self.classify(
                    &mut ring,
                    i,
                    &mut queue,
                    &mut senders,
                    &mut last_activity,
                    &mut local,
                );
            }
            let outcome = match self.io.send_batch(&ring, &queue) {
                Ok(o) => o,
                Err(_) => break,
            };
            queue.clear();
            // Flush the batch's counters in one go.
            let s = &self.stats;
            // ordering: Relaxed — monotone counters read only by
            // `RelayStats::merge` snapshots, which tolerate mixed
            // per-counter staleness; no non-atomic data is published.
            s.forwarded.fetch_add(local.forwarded, Ordering::Relaxed);
            s.nacks.fetch_add(local.nacks, Ordering::Relaxed);
            s.reversed.fetch_add(local.reversed, Ordering::Relaxed);
            s.dropped.fetch_add(local.dropped, Ordering::Relaxed);
            s.send_errors.fetch_add(outcome.errors, Ordering::Relaxed);
            s.batches.fetch_add(1, Ordering::Relaxed);
            s.received.fetch_add(got as u64, Ordering::Relaxed);
            s.max_batch.fetch_max(got as u64, Ordering::Relaxed);
            self.recorder
                .record_nanos(start.elapsed().as_nanos() as u64 / got as u64);
            if self.kind == RelayKind::Detecting && Instant::now() >= next_sweep {
                self.sweep(&senders, &mut last_activity, &mut queue);
                next_sweep = Instant::now() + self.sweep_interval;
            }
        }
    }

    /// Classifies ring slot `i` and queues its output datagrams.
    fn classify(
        &mut self,
        ring: &mut RecvRing,
        i: usize,
        queue: &mut SendQueue,
        senders: &mut HashMap<u64, SocketAddr>,
        last_activity: &mut HashMap<u64, Instant>,
        local: &mut Local,
    ) {
        let from = ring.source(i);
        let (flags, flow, seq, wire_len) = match DatagramView::parse(ring.datagram(i)) {
            Ok(v) => (v.flags(), v.flow(), v.seq(), v.wire_bytes().len()),
            Err(_) => {
                local.dropped += 1;
                return;
            }
        };
        if flags.contains(Flags::DATA) {
            // Learn (and publish once) the flow's sender address.
            if senders.insert(flow, from) != Some(from) {
                self.directory.publish(flow, from);
            }
            match self.kind {
                RelayKind::Streamlined if flags.contains(Flags::TRIMMED) => {
                    // The NACK shares flow and seq with the trimmed
                    // header: rewrite the one differing byte in place and
                    // bounce the buffer back whence it came.
                    rewrite_trimmed_to_nack(ring.datagram_mut(i)).expect("parsed trimmed");
                    queue.push_slot(i, WIRE_HEADER_LEN, from);
                    local.nacks += 1;
                }
                RelayKind::Detecting => {
                    last_activity.insert(flow, Instant::now());
                    for loss in self.detector.observe(detector_flow(flow), seq) {
                        queue.push_nack(flow, loss.seq, from);
                        local.nacks += 1;
                    }
                    queue.push_slot(i, wire_len, self.receiver);
                    local.forwarded += 1;
                }
                // Naive forwards everything — trimmed headers included —
                // and Streamlined forwards untrimmed data.
                _ => {
                    queue.push_slot(i, wire_len, self.receiver);
                    local.forwarded += 1;
                }
            }
        } else {
            // Feedback (ACK/NACK): reverse toward the flow's sender.
            // Private table first; the lock-free directory covers flows
            // whose feedback was steered to a foreign shard.
            let dest = senders.get(&flow).copied().or_else(|| {
                let found = self.directory.lookup(flow);
                if let Some(addr) = found {
                    senders.insert(flow, addr); // cache for next time
                }
                found
            });
            match dest {
                Some(sender) => {
                    queue.push_slot(i, wire_len, sender);
                    local.reversed += 1;
                }
                None => local.dropped += 1,
            }
        }
    }

    /// Quiescence sweep ([`RelayKind::Detecting`]): re-NACK tail losses
    /// of flows with no recent arrivals. Sends only scratch-ring NACKs,
    /// so it can flush against an empty receive ring.
    fn sweep(
        &mut self,
        senders: &HashMap<u64, SocketAddr>,
        last_activity: &mut HashMap<u64, Instant>,
        queue: &mut SendQueue,
    ) {
        let now = Instant::now();
        let mut nacks = 0u64;
        for (&flow, &sender) in senders {
            let quiet = last_activity
                .get(&flow)
                .is_none_or(|&t| now.duration_since(t) >= self.sweep_interval);
            if !quiet {
                continue;
            }
            for loss in self.detector.sweep(detector_flow(flow)) {
                queue.push_nack(flow, loss.seq, sender);
                nacks += 1;
            }
        }
        if queue.is_empty() {
            return;
        }
        let ring = RecvRing::new();
        if let Ok(outcome) = self.io.send_batch(&ring, queue) {
            // ordering: Relaxed — monotone counters, as in the batch
            // flush above.
            self.stats.nacks.fetch_add(nacks, Ordering::Relaxed);
            self.stats
                .send_errors
                .fetch_add(outcome.errors, Ordering::Relaxed);
        }
        queue.clear();
    }
}

/// Maps the 64-bit wire flow id into the detector's flow key space.
fn detector_flow(flow: u64) -> dcsim::packet::FlowId {
    dcsim::packet::FlowId(flow as u32)
}

// The FlowDirectory tests below are pure (threads + atomics, no sockets)
// and run under Miri, which checks the lock-free probe/publish protocol
// for undefined behavior; loom explores its interleavings exhaustively
// (tests/loom.rs). Socket-driven relay tests live in `tests` and are
// skipped under Miri.
#[cfg(test)]
mod directory_tests {
    use super::*;
    use std::net::SocketAddr;
    use std::sync::Arc;

    #[test]
    fn directory_publish_lookup_roundtrip() {
        let dir = FlowDirectory::new(64);
        let addr: SocketAddr = "127.0.0.1:4567".parse().unwrap();
        for flow in 0..100u64 {
            dir.publish(flow, addr);
        }
        for flow in 0..100u64 {
            // Capacity 64 < 100 inserts: saturated probes may miss, but
            // hits must be exact.
            if let Some(got) = dir.lookup(flow) {
                assert_eq!(got, addr);
            }
        }
        assert_eq!(dir.lookup(u64::MAX), None, "sentinel flow never published");
    }

    #[test]
    fn directory_survives_concurrent_publishers() {
        let dir = Arc::new(FlowDirectory::new(1024));
        let mut joins = Vec::new();
        for t in 0..4u16 {
            let dir = dir.clone();
            joins.push(std::thread::spawn(move || {
                let addr: SocketAddr = format!("127.0.0.{}:1000", t + 1).parse().unwrap();
                for flow in 0..500u64 {
                    dir.publish(flow, addr);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut found = 0;
        for flow in 0..500u64 {
            if dir.lookup(flow).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, 500, "every flow resolvable after the race");
    }
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::wire::WireHeader;
    use std::net::UdpSocket;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("addr")
    }

    fn recv_one(sock: &UdpSocket) -> (WireHeader, Vec<u8>, SocketAddr) {
        let mut buf = [0u8; 2048];
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let (n, from) = sock.recv_from(&mut buf).expect("timely datagram");
        let (h, p) = WireHeader::decode(&buf[..n]).expect("wire");
        (h, p.to_vec(), from)
    }

    fn layers() -> Vec<SocketLayer> {
        if cfg!(target_os = "linux") {
            vec![SocketLayer::Mmsg, SocketLayer::Fallback]
        } else {
            vec![SocketLayer::Fallback]
        }
    }

    fn start(kind: RelayKind, layer: SocketLayer, receiver: SocketAddr) -> ShardedRelay {
        ShardedRelay::start(
            loopback(),
            RelayConfig {
                kind,
                shards: 2,
                layer,
                receiver,
                detector: LossDetectorConfig {
                    reorder_threshold: 3,
                    max_pending: 1024,
                    ..Default::default()
                },
                sweep_interval: Duration::from_millis(30),
            },
        )
        .expect("relay starts")
    }

    #[test]
    fn streamlined_forwards_data_both_layers() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(
                RelayKind::Streamlined,
                layer,
                receiver.local_addr().unwrap(),
            );
            let sender = UdpSocket::bind(loopback()).unwrap();
            let wire = WireHeader::data(3, 1, 4).encode(&[9, 9, 9, 9]);
            sender.send_to(&wire, relay.local_addr()).unwrap();
            let (h, p, _) = recv_one(&receiver);
            assert_eq!(h.flow, 3);
            assert_eq!(p, vec![9, 9, 9, 9]);
            wait_for(|| relay.stats().forwarded == 1);
        }
    }

    #[test]
    fn streamlined_nacks_trimmed_both_layers() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(
                RelayKind::Streamlined,
                layer,
                receiver.local_addr().unwrap(),
            );
            let sender = UdpSocket::bind(loopback()).unwrap();
            sender
                .send_to(&WireHeader::trimmed(3, 42).encode(&[]), relay.local_addr())
                .unwrap();
            let (h, _, from) = recv_one(&sender);
            assert_eq!(from, relay.local_addr());
            assert_eq!(h, WireHeader::nack(3, 42));
            wait_for(|| relay.stats().nacks == 1);
        }
    }

    #[test]
    fn reverse_path_crosses_shards_via_directory() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(
                RelayKind::Streamlined,
                layer,
                receiver.local_addr().unwrap(),
            );
            let sender = UdpSocket::bind(loopback()).unwrap();
            // Teach the relay flow 8's sender with a data packet.
            sender
                .send_to(&WireHeader::data(8, 0, 1).encode(&[1]), relay.local_addr())
                .unwrap();
            recv_one(&receiver);
            // The receiver's ACK may land on either shard; the flow
            // directory must route it back regardless.
            receiver
                .send_to(&WireHeader::ack(8, 0).encode(&[]), relay.local_addr())
                .unwrap();
            let (h, _, _) = recv_one(&sender);
            assert!(h.flags.contains(Flags::ACK));
            wait_for(|| relay.stats().reversed == 1);
        }
    }

    #[test]
    fn garbage_dropped_and_counted() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(
                RelayKind::Streamlined,
                layer,
                receiver.local_addr().unwrap(),
            );
            let sender = UdpSocket::bind(loopback()).unwrap();
            sender.send_to(&[0xAB; 50], relay.local_addr()).unwrap();
            wait_for(|| relay.stats().dropped == 1);
            assert_eq!(relay.stats().forwarded, 0);
        }
    }

    #[test]
    fn naive_forwards_trimmed_without_nacking() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let relay = start(RelayKind::Naive, layer, receiver.local_addr().unwrap());
            let sender = UdpSocket::bind(loopback()).unwrap();
            sender
                .send_to(&WireHeader::trimmed(3, 42).encode(&[]), relay.local_addr())
                .unwrap();
            let (h, _, _) = recv_one(&receiver);
            assert!(h.flags.contains(Flags::TRIMMED), "trimmed forwarded as-is");
            let stats = relay.stats();
            assert_eq!(stats.nacks, 0, "naive never NACKs");
        }
    }

    #[test]
    fn detecting_nacks_inferred_gap() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let recv_addr = receiver.local_addr().unwrap();
            std::thread::spawn(move || {
                let mut buf = [0u8; 2048];
                while receiver.recv_from(&mut buf).is_ok() {}
            });
            let relay = start(RelayKind::Detecting, layer, recv_addr);
            let sender = UdpSocket::bind(loopback()).unwrap();
            let payload = vec![0u8; 64];
            for seq in [0u64, 2, 3, 4, 5] {
                sender
                    .send_to(
                        &WireHeader::data(7, seq, 64).encode(&payload),
                        relay.local_addr(),
                    )
                    .unwrap();
            }
            let (h, _, _) = recv_one(&sender);
            assert!(h.flags.contains(Flags::NACK));
            assert_eq!(h.seq, 1);
        }
    }

    #[test]
    fn detecting_sweep_catches_tail_loss() {
        for layer in layers() {
            let receiver = UdpSocket::bind(loopback()).unwrap();
            let recv_addr = receiver.local_addr().unwrap();
            std::thread::spawn(move || {
                let mut buf = [0u8; 2048];
                while receiver.recv_from(&mut buf).is_ok() {}
            });
            let relay = start(RelayKind::Detecting, layer, recv_addr);
            let sender = UdpSocket::bind(loopback()).unwrap();
            let payload = vec![0u8; 64];
            for seq in [0u64, 2] {
                sender
                    .send_to(
                        &WireHeader::data(9, seq, 64).encode(&payload),
                        relay.local_addr(),
                    )
                    .unwrap();
            }
            let (h, _, _) = recv_one(&sender);
            assert!(h.flags.contains(Flags::NACK));
            assert_eq!(h.seq, 1);
        }
    }

    #[test]
    fn records_processing_latency() {
        let receiver = UdpSocket::bind(loopback()).unwrap();
        let relay = start(
            RelayKind::Streamlined,
            SocketLayer::Auto,
            receiver.local_addr().unwrap(),
        );
        let sender = UdpSocket::bind(loopback()).unwrap();
        for seq in 0..20 {
            sender
                .send_to(
                    &WireHeader::data(1, seq, 8).encode(&[0; 8]),
                    relay.local_addr(),
                )
                .unwrap();
        }
        let mut buf = [0u8; 2048];
        receiver
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut got = 0;
        while got < 20 {
            let (n, _) = receiver.recv_from(&mut buf).expect("forwarded");
            got += usize::from(n > 0);
        }
        wait_for(|| relay.recorder().count() >= 1);
        wait_for(|| relay.stats().max_batch >= 1);
    }

    #[test]
    fn shutdown_stops_all_shards() {
        let receiver = UdpSocket::bind(loopback()).unwrap();
        let mut relay = start(
            RelayKind::Streamlined,
            SocketLayer::Auto,
            receiver.local_addr().unwrap(),
        );
        assert!(relay.shards() >= 1);
        relay.shutdown();
        // Idempotent, and Drop after shutdown is fine too.
        relay.shutdown();
    }

    /// Polls `cond` for up to 2 s (counter flushes are per batch, so a
    /// moment behind the socket observations).
    fn wait_for(cond: impl Fn() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "condition not reached in time"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
