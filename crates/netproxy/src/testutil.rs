//! Shared test helpers, hoisted from per-module copies (`loopback`,
//! `recv_with_timeout`, and common socket setup used to be duplicated
//! across the streamlined / detecting / transport test modules).

use std::net::SocketAddr;
use std::time::Duration;
use tokio::net::UdpSocket;

/// How long a test waits for a datagram before declaring failure.
pub const RECV_DEADLINE: Duration = Duration::from_secs(2);

/// An ephemeral loopback bind address.
pub fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("valid addr")
}

/// Binds a fresh ephemeral loopback UDP socket.
pub async fn bind_udp() -> UdpSocket {
    UdpSocket::bind(loopback())
        .await
        .expect("bind loopback udp")
}

/// Receives one datagram or panics after [`RECV_DEADLINE`].
pub async fn recv_with_timeout(sock: &UdpSocket, buf: &mut [u8]) -> (usize, SocketAddr) {
    tokio::time::timeout(RECV_DEADLINE, sock.recv_from(buf))
        .await
        .expect("timed out")
        .expect("recv failed")
}

/// Receives and wire-decodes one datagram, panicking on timeout or a
/// malformed frame; returns the header, payload copy, and source.
pub async fn recv_decoded(
    sock: &UdpSocket,
    buf: &mut [u8],
) -> (crate::wire::WireHeader, Vec<u8>, SocketAddr) {
    let (n, from) = recv_with_timeout(sock, buf).await;
    let (header, payload) = crate::wire::WireHeader::decode(&buf[..n]).expect("wire frame");
    (header, payload.to_vec(), from)
}
