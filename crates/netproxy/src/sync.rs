//! Atomic-type shim for model checking the lock-free datapath.
//!
//! Concurrency-critical modules import atomics from here instead of
//! `std::sync::atomic`. A normal build re-exports `std` types with zero
//! overhead; building with `RUSTFLAGS="--cfg loom"` swaps in the
//! vendored `loom` model checker's instrumented atomics, whose every
//! operation is a scheduling point for exhaustive interleaving
//! exploration (see `crates/loom` and `tests/loom.rs`).
//!
//! Only the types the loom models exercise are shimmed; modules with
//! plain counter atomics and no cross-thread protocol keep `std`
//! imports directly.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64};

pub(crate) use std::sync::atomic::Ordering;
