//! Shard supervision: crash/wedge detection and bounded-loss restart.
//!
//! The sharded relay's original failure mode was silent: any hard socket
//! error made the shard thread exit, and its share of the
//! `SO_REUSEPORT` steering kept blackholing packets until process exit.
//! This module adds the missing control loop — the datapath twin of the
//! control plane's lease/health machinery (DESIGN.md §11):
//!
//! * every shard owns a [`ShardSlot`] and bumps its **heartbeat** once
//!   per relay-loop iteration;
//! * a dedicated supervisor thread polls the slots, classifying a shard
//!   as **crashed** when its thread finished while `stop` is clear, and
//!   as **wedged** when the thread is alive but the heartbeat has not
//!   moved for [`SupervisorConfig::wedge_timeout`];
//! * recovery bumps the slot's **generation** (which tells a wedged
//!   orphan to exit and release its socket) and spawns a replacement
//!   worker on a fresh `SO_REUSEPORT` socket bound to the same port.
//!
//! Recovery is **bounded-loss** by construction: packets the kernel had
//! already steered into the dead socket's receive queue are gone (that
//! is the `crash_lost` budget the soak ledger accounts), but everything
//! after the replacement binds flows again. Counters stay **monotone**
//! across restarts because the replacement worker adopts the same
//! `ShardStats` atomics, and in-flight flows survive because the shared
//! [`crate::shard::FlowDirectory`] (and each private table, re-learned
//! from the next data packet) persists outside the worker thread.
//!
//! [`ShardSlot`] is built on the `crate::sync` atomic shim so its
//! heartbeat/generation/chaos protocol can be loom-modeled; the
//! supervisor loop itself uses real threads and wall-clock timeouts.

use crate::sync::{AtomicBool, AtomicU64, Ordering};
use std::io;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const CHAOS_NONE: u64 = 0;
const CHAOS_CRASH: u64 = 1;
const CHAOS_WEDGE: u64 = 2;

/// A fault to inject into a running shard (test/soak API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// The worker returns immediately, dropping its socket — a clean
    /// thread death, as after a hard socket error.
    Crash,
    /// The worker stops beating but keeps its socket open — the
    /// nastier failure, where the kernel keeps steering flows into a
    /// blackhole until the supervisor notices the stale heartbeat.
    Wedge,
}

/// Per-shard supervision state: heartbeat, generation, pending chaos,
/// restart budget. One per shard, shared between the worker thread, the
/// supervisor, and snapshot readers.
#[derive(Debug, Default)]
pub struct ShardSlot {
    heartbeat: AtomicU64,
    generation: AtomicU64,
    chaos: AtomicU64,
    restarts: AtomicU64,
    failed: AtomicBool,
}

impl ShardSlot {
    /// Fresh slot at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker liveness signal, once per relay-loop iteration.
    #[inline]
    pub fn beat(&self) {
        // ordering: Relaxed — a monotone liveness counter compared only
        // against its own previous value; no data is published with it.
        self.heartbeat.fetch_add(1, Ordering::Relaxed);
    }

    /// Current heartbeat value.
    pub fn heartbeat(&self) -> u64 {
        // ordering: Relaxed — see `beat`.
        self.heartbeat.load(Ordering::Relaxed)
    }

    /// The generation the slot's *current* worker should be running.
    pub fn generation(&self) -> u64 {
        // ordering: Acquire — pairs with the Release in
        // `bump_generation`, so a worker observing its supersession also
        // observes everything the supervisor wrote before bumping.
        self.generation.load(Ordering::Acquire)
    }

    /// Supersedes the current worker; returns the new generation. Any
    /// worker still running an older generation exits at its next
    /// generation check and drops its socket.
    pub(crate) fn bump_generation(&self) -> u64 {
        // ordering: Release — pairs with the Acquire in `generation`.
        self.generation.fetch_add(1, Ordering::Release) + 1
    }

    /// Requests chaos on this shard (consumed by the worker at its next
    /// loop iteration). Last writer wins if called twice before the
    /// worker looks.
    pub fn inject(&self, kind: ChaosKind) {
        let v = match kind {
            ChaosKind::Crash => CHAOS_CRASH,
            ChaosKind::Wedge => CHAOS_WEDGE,
        };
        // ordering: Relaxed — a control-flow-only flag; the worker acts
        // on whatever value it reads, no payload accompanies it.
        self.chaos.store(v, Ordering::Relaxed);
    }

    /// Consumes a pending chaos request. Single consumer (the slot's
    /// worker), so load-then-clear does not race with itself; an inject
    /// landing between the two is overwritten, which for a test API is
    /// an acceptable (and documented) last-writer-wins.
    pub(crate) fn take_chaos(&self) -> Option<ChaosKind> {
        // ordering: Relaxed — control-flow-only, see `inject`. (The
        // vendored loom AtomicU64 has no `swap`; load+store is the
        // modelable equivalent under the single-consumer contract.)
        let c = self.chaos.load(Ordering::Relaxed);
        if c == CHAOS_NONE {
            return None;
        }
        // ordering: Relaxed — same control-flow-only contract as the
        // load above; the sole consumer clears its own mailbox.
        self.chaos.store(CHAOS_NONE, Ordering::Relaxed);
        Some(if c == CHAOS_CRASH {
            ChaosKind::Crash
        } else {
            ChaosKind::Wedge
        })
    }

    /// Times this shard has been restarted (or had a restart attempted).
    pub fn restarts(&self) -> u64 {
        // ordering: Relaxed — monotone counter for snapshots.
        self.restarts.load(Ordering::Relaxed)
    }

    fn note_restart_attempt(&self) {
        // ordering: Relaxed — monotone counter for snapshots.
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// True once the supervisor has given up on this shard
    /// ([`SupervisorConfig::max_restarts`] exhausted).
    pub fn failed(&self) -> bool {
        // ordering: Relaxed — a sticky flag read for reporting; the
        // supervisor is the only writer and acts on its own state.
        self.failed.load(Ordering::Relaxed)
    }

    fn mark_failed(&self) {
        // ordering: Relaxed — see `failed`.
        self.failed.store(true, Ordering::Relaxed);
    }
}

/// Supervisor tuning.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// When false the supervisor thread still runs (single code path)
    /// but never restarts anything — pre-supervision behavior.
    pub enabled: bool,
    /// How often slots are polled.
    pub poll: Duration,
    /// A live thread whose heartbeat is older than this is wedged.
    /// Must comfortably exceed the socket poll timeout
    /// ([`crate::batch::RECV_POLL`]) plus worst-case batch processing.
    pub wedge_timeout: Duration,
    /// Restart attempts per shard before giving up on it.
    pub max_restarts: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: true,
            poll: Duration::from_millis(20),
            wedge_timeout: Duration::from_millis(500),
            max_restarts: 8,
        }
    }
}

/// Supervisor-side event counters (restarts live on the slots).
#[derive(Debug, Default)]
pub(crate) struct SupervisorShared {
    pub(crate) crashes: AtomicU64,
    pub(crate) wedges: AtomicU64,
    pub(crate) gave_up: AtomicU64,
}

/// Snapshot of supervision activity, merged across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Restart attempts across all shards (successful or not).
    pub restarts: u64,
    /// Dead-thread detections.
    pub crashes_detected: u64,
    /// Stale-heartbeat detections.
    pub wedges_detected: u64,
    /// Shards abandoned after exhausting the restart budget.
    pub gave_up: u64,
}

/// The supervisor loop: owns the worker handles, restarts on
/// crash/wedge, joins everything on shutdown. `spawn(shard, generation)`
/// must start a replacement worker for `shard` running `generation`.
pub(crate) fn supervise<F>(
    cfg: SupervisorConfig,
    slots: Vec<Arc<ShardSlot>>,
    mut handles: Vec<thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shared: Arc<SupervisorShared>,
    mut spawn: F,
) where
    F: FnMut(usize, u64) -> io::Result<thread::JoinHandle<()>>,
{
    debug_assert_eq!(slots.len(), handles.len());
    let mut last_beat: Vec<(u64, Instant)> = slots
        .iter()
        .map(|s| (s.heartbeat(), Instant::now()))
        .collect();
    loop {
        thread::sleep(cfg.poll);
        // ordering: Acquire — pairs with the Release store in
        // `ShardedRelay::shutdown`; re-checked after the sleep so a
        // shard that exited *because of* shutdown is never "recovered".
        if stop.load(Ordering::Acquire) {
            break;
        }
        if !cfg.enabled {
            continue;
        }
        let now = Instant::now();
        for (i, slot) in slots.iter().enumerate() {
            if slot.failed() {
                continue;
            }
            let hb = slot.heartbeat();
            if hb != last_beat[i].0 {
                last_beat[i] = (hb, now);
            }
            let finished = handles[i].is_finished();
            let wedged = !finished && now.duration_since(last_beat[i].1) >= cfg.wedge_timeout;
            if !finished && !wedged {
                continue;
            }
            if finished {
                // ordering: Relaxed — monotone event counters read only
                // by `SupervisorStats` snapshots.
                shared.crashes.fetch_add(1, Ordering::Relaxed);
            } else {
                // ordering: Relaxed — as above.
                shared.wedges.fetch_add(1, Ordering::Relaxed);
            }
            if slot.restarts() >= cfg.max_restarts {
                slot.mark_failed();
                // ordering: Relaxed — as above.
                shared.gave_up.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Supersede first: a wedged orphan exits at its next
            // generation check and only then releases its socket (the
            // kernel keeps steering to a wedged socket until it closes,
            // so this ordering is what ends the blackhole).
            let generation = slot.bump_generation();
            slot.note_restart_attempt();
            match spawn(i, generation) {
                Ok(h) => {
                    let old = std::mem::replace(&mut handles[i], h);
                    if finished {
                        let _ = old.join();
                    }
                    // Wedged: detach the orphan — it exits on its own
                    // via the generation (or stop) check.
                    last_beat[i] = (slot.heartbeat(), Instant::now());
                }
                Err(_) => {
                    // The attempt consumed restart budget; the shard is
                    // still dead/superseded, so the next poll retries
                    // (or gives up) — no silent infinite bind loop.
                }
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_heartbeat_and_generation_are_monotone() {
        let slot = ShardSlot::new();
        assert_eq!(slot.heartbeat(), 0);
        slot.beat();
        slot.beat();
        assert_eq!(slot.heartbeat(), 2);
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.bump_generation(), 1);
        assert_eq!(slot.generation(), 1);
    }

    #[test]
    fn chaos_is_consumed_once() {
        let slot = ShardSlot::new();
        assert_eq!(slot.take_chaos(), None);
        slot.inject(ChaosKind::Crash);
        assert_eq!(slot.take_chaos(), Some(ChaosKind::Crash));
        assert_eq!(slot.take_chaos(), None);
        slot.inject(ChaosKind::Wedge);
        assert_eq!(slot.take_chaos(), Some(ChaosKind::Wedge));
        assert_eq!(slot.take_chaos(), None);
    }

    #[test]
    fn supervisor_restarts_a_finished_worker() {
        let slots = vec![Arc::new(ShardSlot::new())];
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(SupervisorShared::default());
        let respawns = Arc::new(std::sync::atomic::AtomicU64::new(0));
        // First worker dies immediately.
        let h0 = thread::spawn(|| {});
        let cfg = SupervisorConfig {
            poll: Duration::from_millis(5),
            wedge_timeout: Duration::from_millis(200),
            ..SupervisorConfig::default()
        };
        let sup = {
            let slots = slots.clone();
            let stop = stop.clone();
            let shared = shared.clone();
            let respawns = respawns.clone();
            let stop_worker = stop.clone();
            let slot = slots[0].clone();
            thread::spawn(move || {
                supervise(cfg, slots, vec![h0], stop, shared, move |_, generation| {
                    // ordering: Relaxed — test counter.
                    respawns.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let stop = stop_worker.clone();
                    let slot = slot.clone();
                    thread::Builder::new().spawn(move || {
                        // A healthy replacement: beat until stop or superseded.
                        // ordering: Acquire — mirrors the real worker loop.
                        while !stop.load(Ordering::Acquire) && slot.generation() == generation {
                            slot.beat();
                            thread::sleep(Duration::from_millis(1));
                        }
                    })
                })
            })
        };
        let start = Instant::now();
        // ordering: Relaxed — test counter.
        while respawns.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            assert!(start.elapsed() < Duration::from_secs(2), "no restart");
            thread::sleep(Duration::from_millis(5));
        }
        // The replacement must be healthy: heartbeat advances, no second
        // restart is triggered.
        let hb0 = slots[0].heartbeat();
        let t = Instant::now();
        while slots[0].heartbeat() == hb0 {
            assert!(
                t.elapsed() < Duration::from_secs(2),
                "replacement not beating"
            );
            thread::sleep(Duration::from_millis(2));
        }
        // ordering: Release — mirrors ShardedRelay::shutdown.
        stop.store(true, Ordering::Release);
        sup.join().unwrap();
        assert_eq!(slots[0].restarts(), 1);
        // ordering: Relaxed — monotone event counter snapshot.
        assert_eq!(shared.crashes.load(Ordering::Relaxed), 1);
        assert_eq!(shared.gave_up.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn supervisor_gives_up_after_budget() {
        let slots = vec![Arc::new(ShardSlot::new())];
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(SupervisorShared::default());
        let h0 = thread::spawn(|| {});
        let cfg = SupervisorConfig {
            poll: Duration::from_millis(2),
            max_restarts: 3,
            ..SupervisorConfig::default()
        };
        let sup = {
            let slots = slots.clone();
            let stop = stop.clone();
            let shared = shared.clone();
            thread::spawn(move || {
                supervise(cfg, slots, vec![h0], stop, shared, |_, _| {
                    // Every replacement dies instantly too.
                    thread::Builder::new().spawn(|| {})
                })
            })
        };
        let start = Instant::now();
        while !slots[0].failed() {
            assert!(start.elapsed() < Duration::from_secs(2), "never gave up");
            thread::sleep(Duration::from_millis(5));
        }
        // ordering: Release — mirrors ShardedRelay::shutdown.
        stop.store(true, Ordering::Release);
        sup.join().unwrap();
        assert_eq!(slots[0].restarts(), 3, "budget fully consumed");
        // ordering: Relaxed — monotone event counter snapshot.
        assert_eq!(shared.gave_up.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disabled_supervisor_never_restarts() {
        let slots = vec![Arc::new(ShardSlot::new())];
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(SupervisorShared::default());
        let h0 = thread::spawn(|| {});
        let cfg = SupervisorConfig {
            enabled: false,
            poll: Duration::from_millis(2),
            ..SupervisorConfig::default()
        };
        let sup = {
            let slots = slots.clone();
            let stop = stop.clone();
            let shared = shared.clone();
            thread::spawn(move || {
                supervise(cfg, slots, vec![h0], stop, shared, |_, _| {
                    panic!("disabled supervisor must not spawn");
                })
            })
        };
        thread::sleep(Duration::from_millis(50));
        assert_eq!(slots[0].restarts(), 0);
        // ordering: Release — mirrors ShardedRelay::shutdown.
        stop.store(true, Ordering::Release);
        sup.join().unwrap();
    }
}
