//! The UDP wire format of the streamlined proxy.
//!
//! A fixed 24-byte header followed by an optional payload. Switch trimming
//! (which the paper borrows from NDP/EQDS/Ultra Ethernet) is represented
//! by the [`Flags::TRIMMED`] bit: a trimming hop cuts the payload and sets
//! the bit; the proxy answers such headers with a NACK.
//!
//! ```text
//!  0        2        3        4            12           20      22
//!  +--------+--------+--------+------------+------------+-------+
//!  | magic  | flags  |  rsvd  |  flow id   |    seq     |  len  |
//!  +--------+--------+--------+------------+------------+-------+
//!  |              payload (len bytes, absent if trimmed)        |
//!  +------------------------------------------------------------+
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Wire magic ("IC" for incast).
pub const MAGIC: u16 = 0x4943;
/// Encoded header length in bytes.
pub const WIRE_HEADER_LEN: usize = 24;
/// Largest payload carried per datagram (fits a 1500 B MTU with headroom).
pub const MAX_PAYLOAD: usize = 1400;

/// Packet-type flags. Exactly one of DATA/ACK/NACK is set; TRIMMED may
/// accompany DATA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flags(pub u8);

impl Flags {
    /// Payload-bearing data packet.
    pub const DATA: Flags = Flags(0b0001);
    /// Acknowledgment.
    pub const ACK: Flags = Flags(0b0010);
    /// Negative acknowledgment (loss signal).
    pub const NACK: Flags = Flags(0b0100);
    /// Payload was trimmed by a (virtual) switch.
    pub const TRIMMED: Flags = Flags(0b1000);

    /// Tests whether all bits of `other` are set.
    pub fn contains(&self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(&self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }

    /// Exactly one primary type bit (DATA/ACK/NACK) is set.
    pub fn is_valid(&self) -> bool {
        let primary = self.0 & 0b0111;
        primary.count_ones() == 1 && (self.0 & !0b1111) == 0
            // TRIMMED only makes sense on DATA.
            && (!self.contains(Flags::TRIMMED) || self.contains(Flags::DATA))
    }
}

/// A decoded packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Packet-type flags.
    pub flags: Flags,
    /// Flow identifier (assigned by the load generator / application).
    pub flow: u64,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Payload length in bytes (0 for control and trimmed packets).
    pub payload_len: u16,
}

/// Decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Datagram shorter than a header.
    Truncated,
    /// Magic mismatch (not our protocol).
    BadMagic,
    /// Flag combination invalid.
    BadFlags,
    /// Header claims more payload than the datagram carries.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "datagram shorter than header",
            WireError::BadMagic => "bad magic",
            WireError::BadFlags => "invalid flag combination",
            WireError::BadLength => "payload length exceeds datagram",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

impl WireHeader {
    /// A data header for `payload_len` bytes.
    pub fn data(flow: u64, seq: u64, payload_len: u16) -> Self {
        WireHeader {
            flags: Flags::DATA,
            flow,
            seq,
            payload_len,
        }
    }

    /// A trimmed-data header (payload removed by a switch).
    pub fn trimmed(flow: u64, seq: u64) -> Self {
        WireHeader {
            flags: Flags::DATA.union(Flags::TRIMMED),
            flow,
            seq,
            payload_len: 0,
        }
    }

    /// An ACK for `seq`.
    pub fn ack(flow: u64, seq: u64) -> Self {
        WireHeader {
            flags: Flags::ACK,
            flow,
            seq,
            payload_len: 0,
        }
    }

    /// A NACK for `seq`.
    pub fn nack(flow: u64, seq: u64) -> Self {
        WireHeader {
            flags: Flags::NACK,
            flow,
            seq,
            payload_len: 0,
        }
    }

    /// Encodes the header (and payload, if any) into a datagram.
    pub fn encode(&self, payload: &[u8]) -> Bytes {
        debug_assert_eq!(payload.len(), self.payload_len as usize);
        let mut buf = BytesMut::with_capacity(WIRE_HEADER_LEN + payload.len());
        buf.put_u16(MAGIC);
        buf.put_u8(self.flags.0);
        buf.put_u8(0); // reserved
        buf.put_u64(self.flow);
        buf.put_u64(self.seq);
        buf.put_u16(self.payload_len);
        buf.put_u16(0); // reserved / padding to 24
        buf.put_slice(payload);
        buf.freeze()
    }

    /// Decodes a datagram into a header and its payload slice.
    pub fn decode(datagram: &[u8]) -> Result<(WireHeader, &[u8]), WireError> {
        if datagram.len() < WIRE_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut buf = datagram;
        if buf.get_u16() != MAGIC {
            return Err(WireError::BadMagic);
        }
        let flags = Flags(buf.get_u8());
        if !flags.is_valid() {
            return Err(WireError::BadFlags);
        }
        let _reserved = buf.get_u8();
        let flow = buf.get_u64();
        let seq = buf.get_u64();
        let payload_len = buf.get_u16();
        let _pad = buf.get_u16();
        let payload = &datagram[WIRE_HEADER_LEN..];
        if payload.len() < payload_len as usize {
            return Err(WireError::BadLength);
        }
        Ok((
            WireHeader {
                flags,
                flow,
                seq,
                payload_len,
            },
            &payload[..payload_len as usize],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_data() {
        let payload = vec![0xAB; 100];
        let h = WireHeader::data(7, 42, 100);
        let wire = h.encode(&payload);
        assert_eq!(wire.len(), WIRE_HEADER_LEN + 100);
        let (decoded, p) = WireHeader::decode(&wire).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(p, &payload[..]);
    }

    #[test]
    fn roundtrip_control() {
        for h in [
            WireHeader::ack(1, 2),
            WireHeader::nack(3, 4),
            WireHeader::trimmed(5, 6),
        ] {
            let wire = h.encode(&[]);
            assert_eq!(wire.len(), WIRE_HEADER_LEN);
            let (decoded, p) = WireHeader::decode(&wire).unwrap();
            assert_eq!(decoded, h);
            assert!(p.is_empty());
        }
    }

    #[test]
    fn rejects_truncated() {
        let wire = WireHeader::ack(1, 2).encode(&[]);
        assert_eq!(
            WireHeader::decode(&wire[..WIRE_HEADER_LEN - 1]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut wire = WireHeader::ack(1, 2).encode(&[]).to_vec();
        wire[0] ^= 0xFF;
        assert_eq!(WireHeader::decode(&wire), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_bad_flags() {
        // DATA|ACK set together.
        let mut wire = WireHeader::ack(1, 2).encode(&[]).to_vec();
        wire[2] = 0b0011;
        assert_eq!(WireHeader::decode(&wire), Err(WireError::BadFlags));
        // TRIMMED without DATA.
        wire[2] = 0b1010;
        assert_eq!(WireHeader::decode(&wire), Err(WireError::BadFlags));
        // No primary bit.
        wire[2] = 0b1000;
        assert_eq!(WireHeader::decode(&wire), Err(WireError::BadFlags));
    }

    #[test]
    fn rejects_short_payload() {
        let h = WireHeader::data(1, 2, 50);
        let wire = h.encode(&[0u8; 50]);
        // Chop ten payload bytes off.
        assert_eq!(
            WireHeader::decode(&wire[..wire.len() - 10]),
            Err(WireError::BadLength)
        );
    }

    #[test]
    fn extra_bytes_beyond_len_ignored() {
        let h = WireHeader::data(1, 2, 3);
        let mut wire = h.encode(&[9, 9, 9]).to_vec();
        wire.extend_from_slice(&[7; 20]); // trailing junk
        let (decoded, p) = WireHeader::decode(&wire).unwrap();
        assert_eq!(decoded.payload_len, 3);
        assert_eq!(p, &[9, 9, 9]);
    }

    #[test]
    fn flag_predicates() {
        assert!(Flags::DATA.is_valid());
        assert!(Flags::DATA.union(Flags::TRIMMED).is_valid());
        assert!(!Flags::DATA.union(Flags::ACK).is_valid());
        assert!(Flags::DATA.union(Flags::TRIMMED).contains(Flags::TRIMMED));
        assert!(!Flags::ACK.contains(Flags::DATA));
    }
}
