//! The UDP wire format of the streamlined proxy.
//!
//! A fixed 24-byte header followed by an optional payload. Switch trimming
//! (which the paper borrows from NDP/EQDS/Ultra Ethernet) is represented
//! by the [`Flags::TRIMMED`] bit: a trimming hop cuts the payload and sets
//! the bit; the proxy answers such headers with a NACK.
//!
//! ```text
//!  0        2        3        4            12           20      22
//!  +--------+--------+--------+------------+------------+-------+
//!  | magic  | flags  |  rsvd  |  flow id   |    seq     |  len  |
//!  +--------+--------+--------+------------+------------+-------+
//!  |              payload (len bytes, absent if trimmed)        |
//!  +------------------------------------------------------------+
//! ```

use bytes::{BufMut, Bytes, BytesMut};

/// Wire magic ("IC" for incast).
pub const MAGIC: u16 = 0x4943;
/// Encoded header length in bytes.
pub const WIRE_HEADER_LEN: usize = 24;
/// Largest payload carried per datagram (fits a 1500 B MTU with headroom).
pub const MAX_PAYLOAD: usize = 1400;
/// Largest whole datagram (header + payload).
pub const MAX_DATAGRAM: usize = WIRE_HEADER_LEN + MAX_PAYLOAD;

// Fixed header byte offsets (see the layout diagram above).
const OFF_MAGIC: usize = 0;
const OFF_FLAGS: usize = 2;
const OFF_FLOW: usize = 4;
const OFF_SEQ: usize = 12;
const OFF_LEN: usize = 20;

/// Packet-type flags. Exactly one of DATA/ACK/NACK is set; TRIMMED may
/// accompany DATA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flags(pub u8);

impl Flags {
    /// Payload-bearing data packet.
    pub const DATA: Flags = Flags(0b0001);
    /// Acknowledgment.
    pub const ACK: Flags = Flags(0b0010);
    /// Negative acknowledgment (loss signal).
    pub const NACK: Flags = Flags(0b0100);
    /// Payload was trimmed by a (virtual) switch.
    pub const TRIMMED: Flags = Flags(0b1000);

    /// Tests whether all bits of `other` are set.
    pub fn contains(&self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(&self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }

    /// Exactly one primary type bit (DATA/ACK/NACK) is set.
    pub fn is_valid(&self) -> bool {
        let primary = self.0 & 0b0111;
        primary.count_ones() == 1 && (self.0 & !0b1111) == 0
            // TRIMMED only makes sense on DATA.
            && (!self.contains(Flags::TRIMMED) || self.contains(Flags::DATA))
    }
}

/// A decoded packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Packet-type flags.
    pub flags: Flags,
    /// Flow identifier (assigned by the load generator / application).
    pub flow: u64,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Payload length in bytes (0 for control and trimmed packets).
    pub payload_len: u16,
}

/// Decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Datagram shorter than a header.
    Truncated,
    /// Magic mismatch (not our protocol).
    BadMagic,
    /// Flag combination invalid.
    BadFlags,
    /// Header claims more payload than the datagram carries.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "datagram shorter than header",
            WireError::BadMagic => "bad magic",
            WireError::BadFlags => "invalid flag combination",
            WireError::BadLength => "payload length exceeds datagram",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// A zero-copy view of a validated datagram: header fields read in place
/// from the receive buffer, payload borrowed, nothing materialized.
///
/// This is the batched datapath's parse path: one bounds check and five
/// unaligned big-endian loads, no allocation. The owned [`WireHeader`]
/// path stays for senders and tests; [`DatagramView::parse`] and
/// [`WireHeader::decode`] accept and reject exactly the same inputs
/// (property-tested in this module).
#[derive(Debug, Clone, Copy)]
pub struct DatagramView<'a> {
    bytes: &'a [u8],
    flags: Flags,
    flow: u64,
    seq: u64,
    payload_len: u16,
}

impl<'a> DatagramView<'a> {
    /// Validates `datagram` and reads the header fields in place.
    ///
    /// # Errors
    /// The same [`WireError`]s as [`WireHeader::decode`], on the same
    /// inputs.
    #[inline]
    pub fn parse(datagram: &'a [u8]) -> Result<DatagramView<'a>, WireError> {
        if datagram.len() < WIRE_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let magic = u16::from_be_bytes([datagram[OFF_MAGIC], datagram[OFF_MAGIC + 1]]);
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let flags = Flags(datagram[OFF_FLAGS]);
        if !flags.is_valid() {
            return Err(WireError::BadFlags);
        }
        let flow = u64::from_be_bytes(datagram[OFF_FLOW..OFF_FLOW + 8].try_into().expect("len"));
        let seq = u64::from_be_bytes(datagram[OFF_SEQ..OFF_SEQ + 8].try_into().expect("len"));
        let payload_len = u16::from_be_bytes([datagram[OFF_LEN], datagram[OFF_LEN + 1]]);
        if datagram.len() - WIRE_HEADER_LEN < payload_len as usize {
            return Err(WireError::BadLength);
        }
        Ok(DatagramView {
            bytes: datagram,
            flags,
            flow,
            seq,
            payload_len,
        })
    }

    /// Packet-type flags.
    #[inline]
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Flow identifier.
    #[inline]
    pub fn flow(&self) -> u64 {
        self.flow
    }

    /// Sequence number.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Payload length claimed by the header.
    #[inline]
    pub fn payload_len(&self) -> u16 {
        self.payload_len
    }

    /// The payload bytes (empty for control and trimmed packets).
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[WIRE_HEADER_LEN..WIRE_HEADER_LEN + self.payload_len as usize]
    }

    /// The full datagram as received — what a zero-copy forward sends
    /// (header + payload, excluding any trailing junk past `payload_len`).
    #[inline]
    pub fn wire_bytes(&self) -> &'a [u8] {
        &self.bytes[..WIRE_HEADER_LEN + self.payload_len as usize]
    }

    /// Materializes the owned header (for interop with the owned path).
    #[inline]
    pub fn header(&self) -> WireHeader {
        WireHeader {
            flags: self.flags,
            flow: self.flow,
            seq: self.seq,
            payload_len: self.payload_len,
        }
    }
}

/// Rewrites a trimmed-data header **in place** into the NACK the proxy
/// answers it with. Flow and sequence are already right; only the flags
/// byte changes — this is the "rewrite only the bytes that differ"
/// forwarding path (one store instead of a 24-byte re-serialization).
///
/// # Errors
/// [`WireError`] if `datagram` is not a valid trimmed-data header
/// (`BadFlags` when valid but not TRIMMED).
#[inline]
pub fn rewrite_trimmed_to_nack(datagram: &mut [u8]) -> Result<(), WireError> {
    let view = DatagramView::parse(datagram)?;
    if !view.flags().contains(Flags::TRIMMED) {
        return Err(WireError::BadFlags);
    }
    datagram[OFF_FLAGS] = Flags::NACK.0;
    Ok(())
}

/// Rewrites a full (untrimmed) data datagram **in place** into the NACK
/// the overload shed ladder answers it with: the relay has no forwarding
/// budget left, so instead of forwarding the payload it tells the sender
/// to retransmit later — the Pulser-style "explicit notification beats
/// silent loss" rung. Flow and sequence are already right; the flags byte
/// and the payload-length field change (the length must be zeroed so the
/// header-only send parses as a well-formed NACK). The caller sends only
/// the first [`WIRE_HEADER_LEN`] bytes.
///
/// # Errors
/// [`WireError`] if `datagram` is not a valid data datagram (`BadFlags`
/// when valid but not DATA).
#[inline]
pub fn rewrite_data_to_nack(datagram: &mut [u8]) -> Result<(), WireError> {
    let view = DatagramView::parse(datagram)?;
    if !view.flags().contains(Flags::DATA) {
        return Err(WireError::BadFlags);
    }
    datagram[OFF_FLAGS] = Flags::NACK.0;
    datagram[OFF_LEN] = 0;
    datagram[OFF_LEN + 1] = 0;
    Ok(())
}

/// Serializes a NACK header into a caller-provided buffer without
/// allocating (the batched datapath's NACK scratch ring).
#[inline]
pub fn write_nack_into(buf: &mut [u8; WIRE_HEADER_LEN], flow: u64, seq: u64) {
    buf[OFF_MAGIC..OFF_MAGIC + 2].copy_from_slice(&MAGIC.to_be_bytes());
    buf[OFF_FLAGS] = Flags::NACK.0;
    buf[OFF_FLAGS + 1] = 0;
    buf[OFF_FLOW..OFF_FLOW + 8].copy_from_slice(&flow.to_be_bytes());
    buf[OFF_SEQ..OFF_SEQ + 8].copy_from_slice(&seq.to_be_bytes());
    buf[OFF_LEN..OFF_LEN + 2].copy_from_slice(&0u16.to_be_bytes());
    buf[OFF_LEN + 2..OFF_LEN + 4].copy_from_slice(&0u16.to_be_bytes());
}

impl WireHeader {
    /// A data header for `payload_len` bytes.
    pub fn data(flow: u64, seq: u64, payload_len: u16) -> Self {
        WireHeader {
            flags: Flags::DATA,
            flow,
            seq,
            payload_len,
        }
    }

    /// A trimmed-data header (payload removed by a switch).
    pub fn trimmed(flow: u64, seq: u64) -> Self {
        WireHeader {
            flags: Flags::DATA.union(Flags::TRIMMED),
            flow,
            seq,
            payload_len: 0,
        }
    }

    /// An ACK for `seq`.
    pub fn ack(flow: u64, seq: u64) -> Self {
        WireHeader {
            flags: Flags::ACK,
            flow,
            seq,
            payload_len: 0,
        }
    }

    /// A NACK for `seq`.
    pub fn nack(flow: u64, seq: u64) -> Self {
        WireHeader {
            flags: Flags::NACK,
            flow,
            seq,
            payload_len: 0,
        }
    }

    /// Encodes the header (and payload, if any) into a datagram.
    pub fn encode(&self, payload: &[u8]) -> Bytes {
        debug_assert_eq!(payload.len(), self.payload_len as usize);
        let mut buf = BytesMut::with_capacity(WIRE_HEADER_LEN + payload.len());
        buf.put_u16(MAGIC);
        buf.put_u8(self.flags.0);
        buf.put_u8(0); // reserved
        buf.put_u64(self.flow);
        buf.put_u64(self.seq);
        buf.put_u16(self.payload_len);
        buf.put_u16(0); // reserved / padding to 24
        buf.put_slice(payload);
        buf.freeze()
    }

    /// Serializes the header and `payload` into `out` without
    /// allocating (the batched sender's staging path); returns the wire
    /// length written.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `WIRE_HEADER_LEN + payload.len()`.
    pub fn encode_into(&self, out: &mut [u8], payload: &[u8]) -> usize {
        debug_assert_eq!(payload.len(), self.payload_len as usize);
        out[OFF_MAGIC..OFF_MAGIC + 2].copy_from_slice(&MAGIC.to_be_bytes());
        out[OFF_FLAGS] = self.flags.0;
        out[OFF_FLAGS + 1] = 0;
        out[OFF_FLOW..OFF_FLOW + 8].copy_from_slice(&self.flow.to_be_bytes());
        out[OFF_SEQ..OFF_SEQ + 8].copy_from_slice(&self.seq.to_be_bytes());
        out[OFF_LEN..OFF_LEN + 2].copy_from_slice(&self.payload_len.to_be_bytes());
        out[OFF_LEN + 2..OFF_LEN + 4].copy_from_slice(&0u16.to_be_bytes());
        out[WIRE_HEADER_LEN..WIRE_HEADER_LEN + payload.len()].copy_from_slice(payload);
        WIRE_HEADER_LEN + payload.len()
    }

    /// Decodes a datagram into a header and its payload slice.
    pub fn decode(datagram: &[u8]) -> Result<(WireHeader, &[u8]), WireError> {
        let view = DatagramView::parse(datagram)?;
        Ok((view.header(), view.payload()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_data() {
        let payload = vec![0xAB; 100];
        let h = WireHeader::data(7, 42, 100);
        let wire = h.encode(&payload);
        assert_eq!(wire.len(), WIRE_HEADER_LEN + 100);
        let (decoded, p) = WireHeader::decode(&wire).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(p, &payload[..]);
    }

    #[test]
    fn roundtrip_control() {
        for h in [
            WireHeader::ack(1, 2),
            WireHeader::nack(3, 4),
            WireHeader::trimmed(5, 6),
        ] {
            let wire = h.encode(&[]);
            assert_eq!(wire.len(), WIRE_HEADER_LEN);
            let (decoded, p) = WireHeader::decode(&wire).unwrap();
            assert_eq!(decoded, h);
            assert!(p.is_empty());
        }
    }

    #[test]
    fn rejects_truncated() {
        let wire = WireHeader::ack(1, 2).encode(&[]);
        assert_eq!(
            WireHeader::decode(&wire[..WIRE_HEADER_LEN - 1]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut wire = WireHeader::ack(1, 2).encode(&[]).to_vec();
        wire[0] ^= 0xFF;
        assert_eq!(WireHeader::decode(&wire), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_bad_flags() {
        // DATA|ACK set together.
        let mut wire = WireHeader::ack(1, 2).encode(&[]).to_vec();
        wire[2] = 0b0011;
        assert_eq!(WireHeader::decode(&wire), Err(WireError::BadFlags));
        // TRIMMED without DATA.
        wire[2] = 0b1010;
        assert_eq!(WireHeader::decode(&wire), Err(WireError::BadFlags));
        // No primary bit.
        wire[2] = 0b1000;
        assert_eq!(WireHeader::decode(&wire), Err(WireError::BadFlags));
    }

    #[test]
    fn rejects_short_payload() {
        let h = WireHeader::data(1, 2, 50);
        let wire = h.encode(&[0u8; 50]);
        // Chop ten payload bytes off.
        assert_eq!(
            WireHeader::decode(&wire[..wire.len() - 10]),
            Err(WireError::BadLength)
        );
    }

    #[test]
    fn extra_bytes_beyond_len_ignored() {
        let h = WireHeader::data(1, 2, 3);
        let mut wire = h.encode(&[9, 9, 9]).to_vec();
        wire.extend_from_slice(&[7; 20]); // trailing junk
        let (decoded, p) = WireHeader::decode(&wire).unwrap();
        assert_eq!(decoded.payload_len, 3);
        assert_eq!(p, &[9, 9, 9]);
    }

    #[test]
    fn view_matches_decode_on_valid_datagrams() {
        let payload = vec![0x5A; 300];
        for h in [
            WireHeader::data(7, 42, 300),
            WireHeader::trimmed(1, 2),
            WireHeader::ack(3, 4),
            WireHeader::nack(u64::MAX, u64::MAX),
        ] {
            let wire = h.encode(&payload[..h.payload_len as usize]);
            let view = DatagramView::parse(&wire).unwrap();
            assert_eq!(view.header(), h);
            let (decoded, p) = WireHeader::decode(&wire).unwrap();
            assert_eq!(view.header(), decoded);
            assert_eq!(view.payload(), p);
            assert_eq!(view.wire_bytes(), &wire[..]);
        }
    }

    #[test]
    fn view_wire_bytes_excludes_trailing_junk() {
        let mut wire = WireHeader::data(1, 2, 3).encode(&[9, 9, 9]).to_vec();
        wire.extend_from_slice(&[7; 20]);
        let view = DatagramView::parse(&wire).unwrap();
        assert_eq!(view.wire_bytes().len(), WIRE_HEADER_LEN + 3);
        assert_eq!(view.payload(), &[9, 9, 9]);
    }

    #[test]
    fn rewrite_trimmed_to_nack_in_place() {
        let mut wire = WireHeader::trimmed(9, 77).encode(&[]).to_vec();
        rewrite_trimmed_to_nack(&mut wire).unwrap();
        let (h, p) = WireHeader::decode(&wire).unwrap();
        assert_eq!(h, WireHeader::nack(9, 77));
        assert!(p.is_empty());
        // Only the flags byte moved.
        let orig = WireHeader::trimmed(9, 77).encode(&[]);
        let diff: Vec<usize> = (0..WIRE_HEADER_LEN)
            .filter(|&i| wire[i] != orig[i])
            .collect();
        assert_eq!(diff, vec![OFF_FLAGS]);
    }

    #[test]
    fn rewrite_rejects_untrimmed_and_garbage() {
        let mut data = WireHeader::data(1, 2, 1).encode(&[0]).to_vec();
        assert_eq!(rewrite_trimmed_to_nack(&mut data), Err(WireError::BadFlags));
        let mut junk = vec![0u8; 50];
        assert_eq!(rewrite_trimmed_to_nack(&mut junk), Err(WireError::BadMagic));
        let mut short = vec![0u8; 3];
        assert_eq!(
            rewrite_trimmed_to_nack(&mut short),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn rewrite_data_to_nack_yields_valid_header_only_nack() {
        let mut wire = WireHeader::data(9, 77, 5).encode(&[1, 2, 3, 4, 5]).to_vec();
        rewrite_data_to_nack(&mut wire).unwrap();
        // The shed ladder sends only the header prefix.
        let (h, p) = WireHeader::decode(&wire[..WIRE_HEADER_LEN]).unwrap();
        assert_eq!(h, WireHeader::nack(9, 77));
        assert!(p.is_empty());
        // Trimmed data is still DATA — the rewrite accepts it too.
        let mut trimmed = WireHeader::trimmed(3, 4).encode(&[]).to_vec();
        rewrite_data_to_nack(&mut trimmed).unwrap();
        let (h, _) = WireHeader::decode(&trimmed).unwrap();
        assert_eq!(h, WireHeader::nack(3, 4));
    }

    #[test]
    fn rewrite_data_to_nack_rejects_control_and_garbage() {
        let mut ack = WireHeader::ack(1, 2).encode(&[]).to_vec();
        assert_eq!(rewrite_data_to_nack(&mut ack), Err(WireError::BadFlags));
        let mut junk = vec![0u8; 50];
        assert_eq!(rewrite_data_to_nack(&mut junk), Err(WireError::BadMagic));
    }

    #[test]
    fn write_nack_into_matches_owned_encoding() {
        let mut buf = [0u8; WIRE_HEADER_LEN];
        write_nack_into(&mut buf, 1234, 5678);
        assert_eq!(&buf[..], &WireHeader::nack(1234, 5678).encode(&[])[..]);
    }

    /// Fuzz equivalence: on arbitrary random valid headers the borrowed
    /// and owned parse paths agree field-for-field; encode∘parse is the
    /// identity on both.
    #[test]
    fn fuzz_view_owned_equivalence_on_valid_headers() {
        let mut rng = trace::SplitMix64::new(0xD15EA5E);
        for _ in 0..2000 {
            let flow = rng.next_u64();
            let seq = rng.next_u64();
            let kind = rng.next_u64() % 4;
            let h = match kind {
                0 => WireHeader::data(
                    flow,
                    seq,
                    (rng.next_u64() % (MAX_PAYLOAD as u64 + 1)) as u16,
                ),
                1 => WireHeader::trimmed(flow, seq),
                2 => WireHeader::ack(flow, seq),
                _ => WireHeader::nack(flow, seq),
            };
            let payload: Vec<u8> = (0..h.payload_len).map(|_| rng.next_u64() as u8).collect();
            let wire = h.encode(&payload);
            let view = DatagramView::parse(&wire).expect("valid header parses");
            let (decoded, p) = WireHeader::decode(&wire).expect("valid header decodes");
            assert_eq!(view.header(), h);
            assert_eq!(decoded, h);
            assert_eq!(view.payload(), &payload[..]);
            assert_eq!(p, &payload[..]);
        }
    }

    /// Fuzz rejection: truncated, garbage, and single-byte-mutated
    /// datagrams never panic, and both paths return the identical verdict
    /// (same error or same success) on every input.
    #[test]
    fn fuzz_mutations_rejected_identically_without_panic() {
        let mut rng = trace::SplitMix64::new(0xBADC0DE);
        for round in 0..2000u32 {
            let base = match round % 3 {
                0 => WireHeader::data(rng.next_u64(), rng.next_u64(), 64)
                    .encode(&[0xAB; 64])
                    .to_vec(),
                1 => WireHeader::trimmed(rng.next_u64(), rng.next_u64())
                    .encode(&[])
                    .to_vec(),
                _ => (0..(rng.next_u64() % 100) as usize)
                    .map(|_| rng.next_u64() as u8)
                    .collect(),
            };
            let mut mutated = base.clone();
            if !mutated.is_empty() {
                match rng.next_u64() % 3 {
                    0 => {
                        let i = (rng.next_u64() as usize) % mutated.len();
                        mutated[i] ^= (rng.next_u64() as u8) | 1;
                    }
                    1 => {
                        let cut = (rng.next_u64() as usize) % mutated.len();
                        mutated.truncate(cut);
                    }
                    _ => mutated.extend_from_slice(&[0xEE; 7]),
                }
            }
            let via_view =
                DatagramView::parse(&mutated).map(|v| (v.header(), v.payload().to_vec()));
            let via_owned = WireHeader::decode(&mutated).map(|(h, p)| (h, p.to_vec()));
            assert_eq!(via_view, via_owned, "paths disagree on {mutated:?}");
        }
    }

    #[test]
    fn flag_predicates() {
        assert!(Flags::DATA.is_valid());
        assert!(Flags::DATA.union(Flags::TRIMMED).is_valid());
        assert!(!Flags::DATA.union(Flags::ACK).is_valid());
        assert!(Flags::DATA.union(Flags::TRIMMED).contains(Flags::TRIMMED));
        assert!(!Flags::ACK.contains(Flags::DATA));
    }
}
