//! Exact percentile computation over in-memory samples.
//!
//! Used when the sample count is small enough to keep everything (simulation
//! completion times, per-run summaries). For millions of on-data-path
//! samples use [`crate::LogHistogram`] instead.

/// Returns the `p`-th percentile (0.0 ..= 100.0) of an ascending-sorted
/// slice using linear interpolation between closest ranks (the same method
/// as numpy's default).
///
/// # Panics
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

/// Sorts a copy of `samples` and returns the requested percentiles.
///
/// Convenience wrapper for report code; returns an empty vector when the
/// input is empty rather than panicking, since reports may legitimately have
/// no samples for a series.
pub fn percentiles_of(samples: &[f64], ps: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    ps.iter()
        .map(|&p| percentile_of_sorted(&sorted, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        assert_eq!(percentile_of_sorted(&[5.0], 0.0), 5.0);
        assert_eq!(percentile_of_sorted(&[5.0], 50.0), 5.0);
        assert_eq!(percentile_of_sorted(&[5.0], 100.0), 5.0);
    }

    #[test]
    fn endpoints_are_min_and_max() {
        let v = [1.0, 2.0, 3.0, 10.0];
        assert_eq!(percentile_of_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&v, 100.0), 10.0);
    }

    #[test]
    fn median_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile_of_sorted(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quartiles_of_known_set() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert!((percentile_of_sorted(&v, 25.0) - 20.0).abs() < 1e-9);
        assert!((percentile_of_sorted(&v, 50.0) - 35.0).abs() < 1e-9);
        assert!((percentile_of_sorted(&v, 75.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_of_unsorted_input() {
        let out = percentiles_of(&[3.0, 1.0, 2.0], &[0.0, 50.0, 100.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn percentiles_of_empty_is_empty() {
        assert!(percentiles_of(&[], &[50.0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_slice_panics() {
        percentile_of_sorted(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        percentile_of_sorted(&[1.0], 101.0);
    }
}
