//! Empirical cumulative distribution functions.
//!
//! Figures 4 and 5 of the paper are CDFs of per-packet latency. [`Cdf`] is
//! built once from a set of samples and then supports quantile lookup,
//! fraction-below lookup, and down-sampling to a fixed number of plot points
//! for the figure binaries.

use crate::percentile::percentile_of_sorted;
use serde::Serialize;

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Serialize)]
pub struct Cdf {
    /// Ascending-sorted samples.
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. NaN samples are rejected.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Cdf requires at least one sample");
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction requires ≥ 1 sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// Median, i.e. `quantile(0.5)`.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ `x` (the CDF evaluated at `x`).
    pub fn fraction_below(&self, x: f64) -> f64 {
        // partition_point: first index whose sample > x.
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Down-samples the CDF to at most `points` `(value, cumulative_fraction)`
    /// pairs, suitable for plotting or for the textual figure output.
    ///
    /// The first and last sample are always included.
    pub fn plot_points(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least 2 plot points");
        let n = self.sorted.len();
        if n <= points {
            return self
                .sorted
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
                .collect();
        }
        (0..points)
            .map(|i| {
                let idx = if i == points - 1 {
                    n - 1
                } else {
                    i * (n - 1) / (points - 1)
                };
                (self.sorted[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf() -> Cdf {
        Cdf::from_samples(vec![4.0, 1.0, 3.0, 2.0])
    }

    #[test]
    fn sorts_on_construction() {
        let c = cdf();
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 4.0);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn fraction_below_steps() {
        let c = cdf();
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(1.0), 0.25);
        assert_eq!(c.fraction_below(2.5), 0.5);
        assert_eq!(c.fraction_below(4.0), 1.0);
        assert_eq!(c.fraction_below(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let c = cdf();
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert!((c.median() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_is_arithmetic_mean() {
        assert!((cdf().mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn plot_points_small_input_returns_all() {
        let pts = cdf().plot_points(10);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], (1.0, 0.25));
        assert_eq!(pts[3], (4.0, 1.0));
    }

    #[test]
    fn plot_points_downsamples_and_keeps_extremes() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pts = Cdf::from_samples(samples).plot_points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 999.0);
        // Cumulative fractions must be non-decreasing.
        assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_panics() {
        Cdf::from_samples(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        Cdf::from_samples(vec![1.0, f64::NAN]);
    }
}
