//! Thread-safe latency recording for the live proxy data path.
//!
//! The tokio proxies record one sample per forwarded packet from multiple
//! tasks. [`LatencyRecorder`] wraps a [`LogHistogram`] in a `parking_lot`
//! mutex (uncontended lock ≈ one CAS, fine for the scaled-down rates we
//! drive in tests/benches) and offers [`LatencyRecorder::time`] for scoped
//! measurements.

use crate::histogram::LogHistogram;
use crate::Cdf;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// A cloneable, thread-safe latency recorder (nanosecond samples).
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    inner: Arc<Mutex<LogHistogram>>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a latency expressed in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.inner.lock().record(nanos);
    }

    /// Records the elapsed time of `f` and returns its result.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_nanos(start.elapsed().as_nanos() as u64);
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count()
    }

    /// Snapshot of the underlying histogram.
    pub fn snapshot(&self) -> LogHistogram {
        self.inner.lock().clone()
    }

    /// Builds a [`Cdf`] of the recorded samples in **microseconds** (the
    /// unit of Figs 4–5), one point per non-empty histogram bucket.
    ///
    /// Returns `None` when nothing was recorded.
    pub fn cdf_micros(&self) -> Option<Cdf> {
        let hist = self.inner.lock();
        if hist.is_empty() {
            return None;
        }
        let mut samples = Vec::new();
        for (nanos, _) in hist.cdf_points() {
            samples.push(nanos as f64 / 1000.0);
        }
        // cdf_points collapses duplicates; rebuild weighting by expanding the
        // cumulative fractions into proportional sample counts so quantiles
        // of the Cdf match the histogram.
        let pts = hist.cdf_points();
        let total = hist.count();
        let mut weighted = Vec::with_capacity(total.min(100_000) as usize);
        let mut prev = 0.0f64;
        for (nanos, cum) in pts {
            let weight = ((cum - prev) * total.min(100_000) as f64).round() as usize;
            for _ in 0..weight.max(1) {
                weighted.push(nanos as f64 / 1000.0);
            }
            prev = cum;
        }
        Some(Cdf::from_samples(weighted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_and_counts() {
        let r = LatencyRecorder::new();
        r.record_nanos(100);
        r.record_nanos(200);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn time_records_one_sample() {
        let r = LatencyRecorder::new();
        let v = r.time(|| 42);
        assert_eq!(v, 42);
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn concurrent_recording() {
        let r = LatencyRecorder::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        r.record_nanos(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.count(), 8000);
    }

    #[test]
    fn cdf_micros_converts_units() {
        let r = LatencyRecorder::new();
        for _ in 0..100 {
            r.record_nanos(5_000); // 5 us
        }
        let cdf = r.cdf_micros().unwrap();
        assert!((cdf.median() - 5.0).abs() / 5.0 < 0.02);
    }

    #[test]
    fn cdf_micros_empty_is_none() {
        assert!(LatencyRecorder::new().cdf_micros().is_none());
    }

    #[test]
    fn cdf_micros_quantiles_track_histogram() {
        let r = LatencyRecorder::new();
        let mut rng = crate::rng::SplitMix64::new(3);
        for _ in 0..50_000 {
            // Bimodal: fast path ~1us, slow path ~300us, 90/10 split.
            if rng.next_bounded(10) == 0 {
                r.record_nanos(300_000 + rng.next_bounded(50_000));
            } else {
                r.record_nanos(1_000 + rng.next_bounded(500));
            }
        }
        let cdf = r.cdf_micros().unwrap();
        // Median must be on the fast mode, p99 on the slow mode.
        assert!(cdf.median() < 5.0, "median {}", cdf.median());
        assert!(cdf.quantile(0.99) > 200.0, "p99 {}", cdf.quantile(0.99));
    }
}
