//! Step-function time-series utilities for queue-occupancy traces.
//!
//! A trace is a sequence of `(timestamp, value)` samples where each value
//! holds until the next sample (the shape produced by
//! `dcsim::sim::Simulator::port_trace`). These helpers compute the
//! summary statistics the congestion-point analyses report.

/// Maximum value observed in a step trace (0 for an empty trace).
pub fn step_max(trace: &[(u64, u64)]) -> u64 {
    trace.iter().map(|&(_, v)| v).max().unwrap_or(0)
}

/// Time-weighted mean of a step trace over `[0, end]`: each sample's value
/// holds from its timestamp to the next (the last holds until `end`), and
/// the value before the first sample is 0.
///
/// # Panics
/// Panics if timestamps are not non-decreasing or exceed `end`.
pub fn step_mean(trace: &[(u64, u64)], end: u64) -> f64 {
    if end == 0 || trace.is_empty() {
        return 0.0;
    }
    let mut weighted = 0u128;
    let mut prev_t = 0u64;
    let mut prev_v = 0u64;
    for &(t, v) in trace {
        assert!(t >= prev_t, "timestamps must be non-decreasing");
        assert!(t <= end, "sample beyond end");
        weighted += prev_v as u128 * (t - prev_t) as u128;
        prev_t = t;
        prev_v = v;
    }
    weighted += prev_v as u128 * (end - prev_t) as u128;
    weighted as f64 / end as f64
}

/// Bins a step trace into `bins` equal windows over `[0, end]`, returning
/// the maximum value in each (0 for windows without samples — suitable
/// for coarse occupancy timelines).
///
/// # Panics
/// Panics if `bins == 0` or `end == 0`.
pub fn step_bin_max(trace: &[(u64, u64)], end: u64, bins: usize) -> Vec<u64> {
    assert!(bins > 0, "need at least one bin");
    assert!(end > 0, "empty interval");
    let mut out = vec![0u64; bins];
    for &(t, v) in trace {
        let idx = ((t as u128 * bins as u128 / end as u128) as usize).min(bins - 1);
        out[idx] = out[idx].max(v);
    }
    out
}

/// Fraction of `[0, end]` during which the step trace is above
/// `threshold` (e.g. "how long was the queue effectively full?").
pub fn step_fraction_above(trace: &[(u64, u64)], end: u64, threshold: u64) -> f64 {
    if end == 0 {
        return 0.0;
    }
    let mut above = 0u128;
    let mut prev_t = 0u64;
    let mut prev_v = 0u64;
    for &(t, v) in trace {
        if prev_v > threshold {
            above += (t - prev_t) as u128;
        }
        prev_t = t;
        prev_v = v;
    }
    if prev_v > threshold {
        above += (end.saturating_sub(prev_t)) as u128;
    }
    above as f64 / end as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &[(u64, u64)] = &[(10, 100), (20, 50), (40, 0)];

    #[test]
    fn max_of_trace() {
        assert_eq!(step_max(TRACE), 100);
        assert_eq!(step_max(&[]), 0);
    }

    #[test]
    fn mean_is_time_weighted() {
        // 0 for t in [0,10), 100 for [10,20), 50 for [20,40), 0 for [40,100].
        // Mean over [0,100] = (100*10 + 50*20) / 100 = 20.
        assert!((step_mean(TRACE, 100) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mean_extends_last_value() {
        let trace = [(0u64, 10u64)];
        assert!((step_mean(&trace, 50) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(step_mean(&[], 100), 0.0);
        assert_eq!(step_mean(TRACE, 0), 0.0);
    }

    #[test]
    fn bin_max_places_samples() {
        let bins = step_bin_max(TRACE, 100, 10);
        assert_eq!(bins[1], 100); // t=10
        assert_eq!(bins[2], 50); // t=20
        assert_eq!(bins[4], 0); // t=40 sample has value 0
        assert_eq!(bins[9], 0);
    }

    #[test]
    fn bin_max_clamps_end_sample() {
        let trace = [(100u64, 7u64)];
        let bins = step_bin_max(&trace, 100, 4);
        assert_eq!(bins[3], 7, "sample at end lands in the last bin");
    }

    #[test]
    fn fraction_above_threshold() {
        // Above 60 only during [10,20) -> 10% of [0,100].
        assert!((step_fraction_above(TRACE, 100, 60) - 0.1).abs() < 1e-12);
        // Above 0 during [10,40) -> 30%.
        assert!((step_fraction_above(TRACE, 100, 0) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_trace_panics() {
        step_mean(&[(10, 1), (5, 2)], 100);
    }
}
