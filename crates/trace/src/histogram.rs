//! Bounded-memory logarithmic histogram for data-path latency capture.
//!
//! The live proxy records one latency sample per packet; keeping raw samples
//! for a 30-second line-rate run would be gigabytes. [`LogHistogram`] is an
//! HDR-style histogram: values are bucketed by (exponent, sub-bucket) with a
//! configurable number of sub-bucket bits, giving a fixed relative error
//! (1/2ⁿ for n sub-bucket bits) and O(1) recording with no allocation after
//! construction.

use serde::Serialize;

/// Default sub-bucket precision: 7 bits ⇒ ≤ 0.78% relative error.
pub const DEFAULT_SUB_BITS: u32 = 7;

/// A logarithmic histogram over `u64` values (typically nanoseconds).
#[derive(Debug, Clone, Serialize)]
pub struct LogHistogram {
    sub_bits: u32,
    /// counts[exponent * sub_buckets + sub] — exponent 0..64.
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl LogHistogram {
    /// Creates an empty histogram with the default precision.
    pub fn new() -> Self {
        Self::with_precision(DEFAULT_SUB_BITS)
    }

    /// Creates an empty histogram with `sub_bits` bits of sub-bucket
    /// precision (relative error ≤ 2^-sub_bits).
    ///
    /// # Panics
    /// Panics unless `1 <= sub_bits <= 16`.
    pub fn with_precision(sub_bits: u32) -> Self {
        assert!((1..=16).contains(&sub_bits), "sub_bits must be in 1..=16");
        let sub_buckets = 1usize << sub_bits;
        Self {
            sub_bits,
            counts: vec![0; 64 * sub_buckets],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    #[inline]
    fn sub_buckets(&self) -> usize {
        1usize << self.sub_bits
    }

    /// Index of the bucket containing `value`.
    #[inline]
    fn bucket_index(&self, value: u64) -> usize {
        // Values below 2^sub_bits are stored exactly in the low buckets.
        if value == 0 {
            return 0;
        }
        let v = value;
        let exp = 63 - v.leading_zeros();
        if exp < self.sub_bits {
            v as usize
        } else {
            let shift = exp - self.sub_bits;
            let sub = ((v >> shift) as usize) & (self.sub_buckets() - 1);
            ((exp - self.sub_bits + 1) as usize) * self.sub_buckets() + sub
        }
    }

    /// Representative (midpoint) value of bucket `idx`.
    fn bucket_value(&self, idx: usize) -> u64 {
        let sb = self.sub_buckets();
        if idx < sb {
            return idx as u64;
        }
        let exp_block = idx / sb - 1;
        let sub = idx % sb;
        let base = (sb as u64 + sub as u64) << exp_block;
        let width = 1u64 << exp_block;
        base + width / 2
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Records `count` occurrences of one value.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = self.bucket_index(value);
        self.counts[idx] += count;
        self.total += count;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128 * count as u128;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value (not bucketed).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`); error bounded by the bucket
    /// width at that value. Clamped to the exact observed min/max.
    ///
    /// # Panics
    /// Panics if the histogram is empty or q is out of range.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(self.total > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    /// Panics if precisions differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "precision mismatch");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Expands the histogram into `(value, cumulative_fraction)` plot points,
    /// one per non-empty bucket. Suitable for CDF-style textual plots.
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                self.bucket_value(idx).clamp(self.min, self.max),
                seen as f64 / self.total as f64,
            ));
        }
        out
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        // With 7 sub-bits, values < 128 are exact.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 99);
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LogHistogram::new();
        let vals: Vec<u64> = (0..10_000).map(|i| 1000 + i * 37).collect();
        for &v in &vals {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = h.quantile(q) as f64;
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let exact =
                sorted[((q * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)] as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.02, "q={q}: est={est} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(12345, 7);
        for _ in 0..7 {
            b.record(12345);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn cdf_points_monotone() {
        let mut h = LogHistogram::new();
        let mut rng = crate::rng::SplitMix64::new(5);
        for _ in 0..5000 {
            h.record(rng.next_bounded(1_000_000));
        }
        let pts = h.cdf_points();
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_value_is_recordable() {
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= h.min());
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn quantile_empty_panics() {
        LogHistogram::new().quantile(0.5);
    }
}
