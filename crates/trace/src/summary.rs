//! Run-level summary statistics.
//!
//! §4.1: "We run each setup 5 times and report the average, minimum and
//! maximum incast completion time." [`Summary`] is that triple plus count
//! and standard deviation, computed online with Welford's algorithm so it is
//! numerically stable for long series too.

use serde::Serialize;

/// Online mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finalizes into a [`Summary`].
    ///
    /// # Panics
    /// Panics if no observations were added.
    pub fn finish(&self) -> Summary {
        assert!(self.count > 0, "summary of zero observations");
        Summary {
            count: self.count,
            mean: self.mean,
            min: self.min,
            max: self.max,
            std: if self.count > 1 {
                (self.m2 / (self.count - 1) as f64).sqrt()
            } else {
                0.0
            },
        }
    }
}

/// Summary of a set of observations (e.g. the 5 repeated runs of one
/// experiment point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for a single observation).
    pub std: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        let mut w = Welford::new();
        for &x in xs {
            w.add(x);
        }
        w.finish()
    }

    /// Relative reduction of this summary's mean versus a baseline mean:
    /// `(baseline - self) / baseline`, e.g. 0.75 for a 75% reduction.
    ///
    /// This is the headline metric of Figures 2 and 3.
    pub fn reduction_vs(&self, baseline: &Summary) -> f64 {
        if baseline.mean == 0.0 {
            return 0.0;
        }
        (baseline.mean - self.mean) / baseline.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Sample std of that classic set is sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_observation_has_zero_std() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean - mean).abs() < 1e-9);
        assert!((s.std - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn reduction_vs_baseline() {
        let base = Summary::of(&[100.0]);
        let ours = Summary::of(&[25.0]);
        assert!((ours.reduction_vs(&base) - 0.75).abs() < 1e-12);
        // Degenerate baseline.
        let zero = Summary::of(&[0.0]);
        assert_eq!(ours.reduction_vs(&zero), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn empty_panics() {
        Summary::of(&[]);
    }
}
