//! Measurement and statistics utilities shared by the simulator, the live
//! proxy prototype, and the reproduction harness.
//!
//! The paper reports three kinds of numbers and this crate provides the
//! machinery for all of them:
//!
//! * **Incast completion times** over repeated seeded runs (mean/min/max) —
//!   [`Summary`] and [`summary::Welford`].
//! * **Per-packet latency CDFs** from the testbed experiments (Figs 4–5) —
//!   [`Cdf`] and the thread-safe [`LatencyRecorder`].
//! * **Bounded-memory latency distributions** captured on the data path —
//!   [`LogHistogram`], an HDR-style logarithmic histogram with ≤ ~1% relative
//!   error and O(1) record cost.
//!
//! Determinism helpers live in [`rng`]: every experiment run derives all of
//! its randomness from a single `u64` seed so that the "5 runs, report
//! mean/min/max" protocol of §4.1 is exactly repeatable.

pub mod cdf;
pub mod histogram;
pub mod percentile;
pub mod recorder;
pub mod rng;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use cdf::Cdf;
pub use histogram::LogHistogram;
pub use percentile::{percentile_of_sorted, percentiles_of};
pub use recorder::LatencyRecorder;
pub use rng::{derive_seed, SplitMix64};
pub use summary::{Summary, Welford};
pub use table::Table;
