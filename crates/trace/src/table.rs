//! Minimal aligned text tables for experiment output.
//!
//! Every figure binary prints its data both as a human-readable table (via
//! [`Table`]) and as JSON rows, so EXPERIMENTS.md entries can be regenerated
//! and diffed.

/// An aligned, pipe-separated text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push(' ');
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                line.push_str(" |");
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a duration given in seconds with an adaptive unit (us/ms/s),
/// matching the units the paper uses in its figures.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Formats a byte count with an adaptive unit (B/KB/MB/GB, decimal).
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b < 1e3 {
        format!("{bytes}B")
    } else if b < 1e6 {
        format!("{:.0}KB", b / 1e3)
    } else if b < 1e9 {
        format!("{:.0}MB", b / 1e6)
    } else {
        format!("{:.1}GB", b / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["degree", "ICT"]);
        t.row(vec!["4", "10.2ms"]);
        t.row(vec!["128", "3.1ms"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[0].contains("degree"));
        assert!(lines[3].contains("128"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn empty_table_renders_header() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    fn fmt_secs_units() {
        assert_eq!(fmt_secs(0.0000005), "0.50us");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(12.02), "12.02s");
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(20_000), "20KB");
        assert_eq!(fmt_bytes(100_000_000), "100MB");
        assert_eq!(fmt_bytes(2_500_000_000), "2.5GB");
    }
}
