//! Deterministic seed derivation.
//!
//! Every experiment in this repository takes a single base seed; all
//! randomness (workload start jitter, packet spraying, marking ramps, run
//! repetition) is derived from it through [`derive_seed`] so that runs are
//! bit-for-bit reproducible regardless of thread scheduling or iteration
//! order.

/// A tiny, fast, well-mixed 64-bit PRNG (Vigna's SplitMix64).
///
/// Used both as a stand-alone generator for hot paths that must not pay for
/// `rand`'s abstraction (the simulator's packet-spraying decisions) and as a
/// mixer for [`derive_seed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); bias is at most
    /// 2⁻⁶⁴·bound which is negligible for the bounds used here (≤ 2¹⁶ ports).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded requires bound > 0");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives an independent sub-seed from a base seed and a stream label.
///
/// Mixing is done by running SplitMix64 over the concatenation, so
/// `derive_seed(s, a) != derive_seed(s, b)` for `a != b` with overwhelming
/// probability, and nearby labels produce unrelated streams.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut mixer =
        SplitMix64::new(base ^ stream.rotate_left(17).wrapping_mul(0xA24B_AED4_963E_E407));
    // A couple of extra rounds so that low-entropy (base, stream) pairs such
    // as (0, 0) and (0, 1) still land far apart.
    mixer.next_u64();
    mixer.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_across_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 8, 1000] {
            for _ in 0..1000 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_covers_all_values() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.next_bounded(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 outcomes should appear");
    }

    #[test]
    #[should_panic(expected = "bound > 0")]
    fn bounded_zero_panics() {
        SplitMix64::new(0).next_bounded(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn derive_seed_distinguishes_streams() {
        let base = 123;
        let seeds: Vec<u64> = (0..100).map(|s| derive_seed(base, s)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "collision among derived seeds");
    }

    #[test]
    fn derive_seed_distinguishes_low_entropy_pairs() {
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
    }
}
