//! Property tests for the deterministic collections (`dcsim::det`).
//!
//! `DetMap`/`DetSet` are model-checked against `std::collections::BTreeMap`
//! / `BTreeSet` under random insert/remove interleavings: after every
//! operation the wrapper must agree with the model on length, membership,
//! and full iteration contents. A second family of properties checks the
//! *determinism* contract itself — iteration order is a pure function of
//! the key set, independent of insertion history — which is the invariant
//! the simulator's replay identity rests on.

use dcsim::det::{DetMap, DetSet, SeqMap};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Decodes one fuzzed word into (op, key, value). Keys live in a small
/// space (0..16) so inserts, overwrites, and removes of the *same* key
/// actually collide.
fn decode(word: u64) -> (u64, u16, u64) {
    (word % 4, ((word >> 2) % 16) as u16, word >> 8)
}

proptest! {
    /// DetMap agrees with a BTreeMap model after every operation of a
    /// random insert / overwrite / remove / entry-or-insert interleaving.
    #[test]
    fn detmap_matches_btreemap_model(ops in prop::collection::vec(any::<u64>(), 1..400)) {
        let mut map: DetMap<u16, u64> = DetMap::new();
        let mut model: BTreeMap<u16, u64> = BTreeMap::new();
        for &word in &ops {
            let (op, key, val) = decode(word);
            match op {
                0 | 1 => {
                    prop_assert_eq!(map.insert(key, val), model.insert(key, val));
                }
                2 => {
                    prop_assert_eq!(map.remove(&key), model.remove(&key));
                }
                _ => {
                    let got = *map.entry(key).or_insert(val);
                    let want = *model.entry(key).or_insert(val);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(map.len(), model.len());
            prop_assert_eq!(map.get(&key).copied(), model.get(&key).copied());
        }
        let got: Vec<(u16, u64)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// DetSet agrees with a BTreeSet model under random insert/remove.
    #[test]
    fn detset_matches_btreeset_model(ops in prop::collection::vec(any::<u64>(), 1..400)) {
        let mut set: DetSet<u16> = DetSet::new();
        let mut model: BTreeSet<u16> = BTreeSet::new();
        for &word in &ops {
            let (op, key, _) = decode(word);
            if op < 3 {
                prop_assert_eq!(set.insert(key), model.insert(key));
            } else {
                prop_assert_eq!(set.remove(&key), model.remove(&key));
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.contains(&key), model.contains(&key));
        }
        let got: Vec<u16> = set.iter().copied().collect();
        let want: Vec<u16> = model.iter().copied().collect();
        prop_assert_eq!(got, want);
    }

    /// Iteration order is a pure function of the key set: inserting the
    /// same pairs in forward, reverse, or interleaved order yields the
    /// identical key sequence. (This is exactly the property HashMap
    /// lacks, and the reason the NACK scheduler can iterate a DetMap
    /// without a sort step.)
    #[test]
    fn detmap_iteration_order_ignores_insertion_history(
        keys in prop::collection::vec(0u32..10_000, 1..200),
    ) {
        let forward: DetMap<u32, u32> = keys.iter().map(|&k| (k, k)).collect();
        let reverse: DetMap<u32, u32> = keys.iter().rev().map(|&k| (k, k)).collect();
        let mut interleaved: DetMap<u32, u32> = DetMap::new();
        for (i, &k) in keys.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            interleaved.insert(k, i as u32);
        }
        for (i, &k) in keys.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            interleaved.insert(k, i as u32);
        }
        for (i, &k) in keys.iter().enumerate() {
            interleaved.insert(k, i as u32); // restore k -> k via overwrite order
            interleaved.insert(k, k);
        }
        let a: Vec<u32> = forward.keys().copied().collect();
        let b: Vec<u32> = reverse.keys().copied().collect();
        let c: Vec<u32> = interleaved.keys().copied().collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        let mut sorted: Vec<u32> = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(a, sorted);
    }

    /// SeqMap iterates in first-insertion order, matching a Vec model
    /// under random insert / overwrite / remove: overwrites keep the
    /// original position, removals shift, re-inserts go to the back.
    #[test]
    fn seqmap_preserves_insertion_order(ops in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut map: SeqMap<u16, u64> = SeqMap::new();
        let mut model: Vec<(u16, u64)> = Vec::new();
        for &word in &ops {
            let (op, key, val) = decode(word);
            match op {
                0 | 1 => {
                    map.insert(key, val);
                    match model.iter_mut().find(|(k, _)| *k == key) {
                        Some(slot) => slot.1 = val,
                        None => model.push((key, val)),
                    }
                }
                2 => {
                    let expect = model.iter().position(|(k, _)| *k == key);
                    let removed = map.remove(&key);
                    match expect {
                        Some(pos) => {
                            let (_, v) = model.remove(pos);
                            prop_assert_eq!(removed, Some(v));
                        }
                        None => prop_assert_eq!(removed, None),
                    }
                }
                _ => {
                    let got = *map.get_or_insert_with(key, || val);
                    match model.iter().find(|(k, _)| *k == key) {
                        Some(&(_, v)) => prop_assert_eq!(got, v),
                        None => {
                            model.push((key, val));
                            prop_assert_eq!(got, val);
                        }
                    }
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }
        let got: Vec<(u16, u64)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, model);
    }
}

/// Entry-API smoke test: or_insert, or_insert_with, and_modify, and the
/// occupied/vacant split all behave like BTreeMap's (they *are*
/// BTreeMap's — the type is re-exported — but the wrapper must route to
/// it correctly).
#[test]
fn detmap_entry_api_smoke() {
    let mut map: DetMap<&str, u64> = DetMap::new();
    *map.entry("a").or_insert(1) += 10;
    assert_eq!(map.get("a"), Some(&11));
    map.entry("a").and_modify(|v| *v *= 2).or_insert(0);
    assert_eq!(map.get("a"), Some(&22));
    map.entry("b").and_modify(|v| *v *= 2).or_insert(7);
    assert_eq!(map.get("b"), Some(&7));
    let v = map.entry("c").or_insert_with(|| 3);
    assert_eq!(*v, 3);
    assert_eq!(map.len(), 3);
    assert_eq!(
        map.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
        vec![("a", 22), ("b", 7), ("c", 3)]
    );
}
