//! Packets and the identifier newtypes used across the simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(&self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A host (server) in the topology.
    HostId
);
id_type!(
    /// Any node: host or switch. Hosts and switches share one node space.
    NodeId
);
id_type!(
    /// An output port (queue + link) attached to a node.
    PortId
);
id_type!(
    /// A transport-level flow (one direction of one connection).
    FlowId
);
id_type!(
    /// A protocol agent (sender, receiver, or proxy endpoint).
    AgentId
);

/// On-the-wire packet kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// A data segment carrying payload bytes.
    Data,
    /// Per-packet acknowledgment (NDP-style: acks a specific sequence
    /// number, echoes the ECN mark seen on the data packet).
    Ack,
    /// Negative acknowledgment for a trimmed or otherwise lost packet.
    Nack,
}

/// ECN codepoint carried by a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ecn {
    /// ECN-capable transport, not marked.
    Ect,
    /// Congestion experienced (marked by a queue past its threshold).
    Ce,
}

/// Wire size of a full data packet (payload + headers), bytes.
pub const DATA_PKT_SIZE: u64 = 1500;
/// Wire size of a header-only (trimmed) packet or a control packet, bytes.
pub const HEADER_SIZE: u64 = 64;
/// Payload bytes carried by one full data packet.
pub const MSS: u64 = DATA_PKT_SIZE - HEADER_SIZE;

/// A simulated packet.
///
/// Packets are plain values: the simulator moves them by copy between
/// queues and agents. There is no payload buffer — only byte counts — since
/// the experiments measure timing, not content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Kind: data, ack or nack.
    pub kind: PacketKind,
    /// Sequence number (packet index within the flow for Data; the acked /
    /// nacked sequence for Ack/Nack).
    pub seq: u64,
    /// Host the packet is currently routed toward. Proxies rewrite this
    /// when forwarding.
    pub dst: HostId,
    /// Originating host (for returning feedback).
    pub src: HostId,
    /// Current wire size in bytes (shrinks to [`HEADER_SIZE`] on trimming).
    pub size: u64,
    /// ECN codepoint; queues set [`Ecn::Ce`] past their marking threshold.
    pub ecn: Ecn,
    /// True once the payload has been trimmed (header-only packet).
    pub trimmed: bool,
    /// For Ack packets: echoes whether the acked data packet was CE-marked.
    pub ece: bool,
    /// Timestamp echo: the data packet's send time, reflected in Acks for
    /// RTT measurement (picoseconds).
    pub ts_echo: u64,
    /// True when a proxied flow's sender deliberately routed this packet on
    /// the direct path (proxy failover). Feedback copies the flag so the
    /// receiver knows to reply directly instead of via the proxy, and so
    /// the sender can tell proxy-path feedback from direct-path feedback.
    pub direct: bool,
}

impl Packet {
    /// Builds a full-size data packet.
    pub fn data(flow: FlowId, seq: u64, src: HostId, dst: HostId, ts: u64) -> Self {
        Packet {
            flow,
            kind: PacketKind::Data,
            seq,
            dst,
            src,
            size: DATA_PKT_SIZE,
            ecn: Ecn::Ect,
            trimmed: false,
            ece: false,
            ts_echo: ts,
            direct: false,
        }
    }

    /// Builds an ACK for a received data packet: swaps src/dst, carries the
    /// acked seq, echoes ECN mark and the sender timestamp.
    pub fn ack_for(data: &Packet, from: HostId) -> Self {
        Packet {
            flow: data.flow,
            kind: PacketKind::Ack,
            seq: data.seq,
            dst: data.src,
            src: from,
            size: HEADER_SIZE,
            ecn: Ecn::Ect,
            trimmed: false,
            ece: data.ecn == Ecn::Ce,
            ts_echo: data.ts_echo,
            direct: data.direct,
        }
    }

    /// Builds a NACK for a trimmed data packet: swaps src/dst, carries the
    /// lost seq.
    pub fn nack_for(data: &Packet, from: HostId) -> Self {
        Packet {
            flow: data.flow,
            kind: PacketKind::Nack,
            seq: data.seq,
            dst: data.src,
            src: from,
            size: HEADER_SIZE,
            ecn: Ecn::Ect,
            trimmed: false,
            ece: false,
            ts_echo: data.ts_echo,
            direct: data.direct,
        }
    }

    /// Trims the payload, leaving a header-only packet (NDP-style).
    ///
    /// Idempotent: trimming a trimmed packet is a no-op.
    pub fn trim(&mut self) {
        self.size = HEADER_SIZE;
        self.trimmed = true;
    }

    /// True for small control packets (acks/nacks) and trimmed headers,
    /// which ride the switch priority queue.
    pub fn is_control(&self) -> bool {
        self.trimmed || self.kind != PacketKind::Data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::data(FlowId(1), 7, HostId(2), HostId(3), 123)
    }

    #[test]
    fn data_packet_defaults() {
        let p = pkt();
        assert_eq!(p.size, DATA_PKT_SIZE);
        assert_eq!(p.kind, PacketKind::Data);
        assert!(!p.trimmed);
        assert!(!p.is_control());
        assert_eq!(p.ecn, Ecn::Ect);
    }

    #[test]
    fn trim_shrinks_and_flags() {
        let mut p = pkt();
        p.trim();
        assert_eq!(p.size, HEADER_SIZE);
        assert!(p.trimmed);
        assert!(p.is_control());
        // Idempotent.
        p.trim();
        assert_eq!(p.size, HEADER_SIZE);
    }

    #[test]
    fn ack_swaps_direction_and_echoes() {
        let mut p = pkt();
        p.ecn = Ecn::Ce;
        let ack = Packet::ack_for(&p, HostId(3));
        assert_eq!(ack.kind, PacketKind::Ack);
        assert_eq!(ack.dst, HostId(2));
        assert_eq!(ack.src, HostId(3));
        assert_eq!(ack.seq, 7);
        assert!(ack.ece, "ECN mark must be echoed");
        assert_eq!(ack.ts_echo, 123);
        assert_eq!(ack.size, HEADER_SIZE);
        assert!(ack.is_control());
    }

    #[test]
    fn unmarked_data_yields_unmarked_ack() {
        let ack = Packet::ack_for(&pkt(), HostId(3));
        assert!(!ack.ece);
    }

    #[test]
    fn feedback_preserves_direct_flag() {
        let mut p = pkt();
        assert!(!p.direct, "data packets default to the configured path");
        p.direct = true;
        assert!(Packet::ack_for(&p, HostId(3)).direct);
        assert!(Packet::nack_for(&p, HostId(3)).direct);
    }

    #[test]
    fn nack_carries_lost_seq() {
        let mut p = pkt();
        p.trim();
        let nack = Packet::nack_for(&p, HostId(9));
        assert_eq!(nack.kind, PacketKind::Nack);
        assert_eq!(nack.seq, 7);
        assert_eq!(nack.dst, HostId(2));
        assert!(nack.is_control());
    }

    #[test]
    fn mss_is_consistent() {
        assert_eq!(MSS + HEADER_SIZE, DATA_PKT_SIZE);
        const { assert!(MSS > 0) };
    }
}
