//! Deterministic sim-state collections.
//!
//! The simulator's reproducibility guarantee — same seed, bit-identical
//! run — holds only if every iteration a simulation makes over its own
//! state visits elements in an order that is a pure function of the data,
//! never of hasher seeds or allocation history. `std::collections::HashMap`
//! breaks that: its iteration order varies per process, and two latent
//! nondeterminism bugs (NACK emission order in the detecting proxy,
//! congestion-point trace clipping) have already shipped through it.
//!
//! This module is the sanctioned replacement, enforced by the `simlint`
//! workspace linter (see `crates/simlint`): simulation-path crates store
//! keyed state in [`DetMap`]/[`DetSet`] — thin [`BTreeMap`]/[`BTreeSet`]
//! wrappers with a `HashMap`-shaped API whose iteration order is the key
//! order — or, when arrival order is the meaningful order, in [`SeqMap`],
//! which iterates in insertion order while staying exactly as
//! deterministic.
//!
//! The wrappers are intentionally thin: the point is a *named* type that
//! documents the determinism contract at the field declaration and gives
//! the linter an unambiguous whitelist, not a new data structure. Lookup
//! is `O(log n)` instead of `O(1)`; simulation state maps are small (flows
//! through one proxy, destinations per epoch), and nothing here sits on
//! the per-packet fast path hot enough for the difference to show in the
//! event-loop benchmarks.

use std::borrow::Borrow;
use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Index;

/// Re-exported entry type of [`DetMap::entry`]: the full `BTreeMap` entry
/// API (`or_insert`, `or_default`, `or_insert_with`, `and_modify`, ...),
/// which is a drop-in for `HashMap`'s.
pub use std::collections::btree_map::Entry;

/// An order-deterministic map: `HashMap`-shaped API, iteration in key
/// order. The default sim-state map.
#[derive(Clone, PartialEq, Eq)]
pub struct DetMap<K, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> DetMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DetMap {
            inner: BTreeMap::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Looks up a key.
    pub fn get<Q: Ord + ?Sized>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
    {
        self.inner.get(key)
    }

    /// Looks up a key, mutably.
    pub fn get_mut<Q: Ord + ?Sized>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
    {
        self.inner.get_mut(key)
    }

    /// True when the key is present.
    pub fn contains_key<Q: Ord + ?Sized>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
    {
        self.inner.contains_key(key)
    }

    /// Removes a key, returning its value if it was present.
    pub fn remove<Q: Ord + ?Sized>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
    {
        self.inner.remove(key)
    }

    /// The in-place entry API (identical semantics to `HashMap::entry`).
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        self.inner.entry(key)
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterates entries in key order with mutable values.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, K, V> {
        self.inner.iter_mut()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }

    /// Iterates values in key order, mutably.
    pub fn values_mut(&mut self) -> btree_map::ValuesMut<'_, K, V> {
        self.inner.values_mut()
    }

    /// Keeps only the entries the predicate approves.
    pub fn retain(&mut self, f: impl FnMut(&K, &mut V) -> bool) {
        self.inner.retain(f);
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Empties the map, yielding the entries in key order (the
    /// deterministic analogue of `HashMap::drain`).
    pub fn drain(&mut self) -> btree_map::IntoIter<K, V> {
        std::mem::take(&mut self.inner).into_iter()
    }
}

impl<K: Ord, V> Default for DetMap<K, V> {
    fn default() -> Self {
        DetMap::new()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for DetMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<K: Ord + Borrow<Q>, Q: Ord + ?Sized, V> Index<&Q> for DetMap<K, V> {
    type Output = V;

    fn index(&self, key: &Q) -> &V {
        self.inner.get(key).expect("no entry found for key")
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetMap {
            inner: BTreeMap::from_iter(iter),
        }
    }
}

impl<K: Ord, V> Extend<(K, V)> for DetMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<K: Ord, V, const N: usize> From<[(K, V); N]> for DetMap<K, V> {
    fn from(entries: [(K, V); N]) -> Self {
        entries.into_iter().collect()
    }
}

impl<K: Ord, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a mut DetMap<K, V> {
    type Item = (&'a K, &'a mut V);
    type IntoIter = btree_map::IterMut<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

/// An order-deterministic set: `HashSet`-shaped API, iteration in element
/// order.
#[derive(Clone, PartialEq, Eq)]
pub struct DetSet<T> {
    inner: BTreeSet<T>,
}

impl<T: Ord> DetSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DetSet {
            inner: BTreeSet::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no elements are held.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts an element; returns true if it was new.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// True when the element is present.
    pub fn contains<Q: Ord + ?Sized>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
    {
        self.inner.contains(value)
    }

    /// Removes an element; returns true if it was present.
    pub fn remove<Q: Ord + ?Sized>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
    {
        self.inner.remove(value)
    }

    /// Iterates elements in order.
    pub fn iter(&self) -> btree_set::Iter<'_, T> {
        self.inner.iter()
    }

    /// Keeps only the elements the predicate approves.
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.inner.retain(f);
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<T: Ord> Default for DetSet<T> {
    fn default() -> Self {
        DetSet::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for DetSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Ord> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DetSet {
            inner: BTreeSet::from_iter(iter),
        }
    }
}

impl<T: Ord> Extend<T> for DetSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<T: Ord> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = btree_set::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, T: Ord> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = btree_set::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// The insertion-order option: a deterministic map that iterates in the
/// order keys were *first inserted* (re-inserting an existing key updates
/// the value in place and keeps its original position, like `HashMap`).
///
/// Use this instead of [`DetMap`] when arrival order is the semantically
/// meaningful order — e.g. "the first sender observed decides the
/// datacenter of an incast". Removal is `O(n)` (order-preserving shift),
/// which is fine for the small, rarely-removed maps it is meant for.
#[derive(Clone)]
pub struct SeqMap<K, V> {
    /// Entries in insertion order.
    entries: Vec<(K, V)>,
    /// Key → position in `entries`.
    index: BTreeMap<K, usize>,
}

impl<K: Ord + Clone, V> SeqMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SeqMap {
            entries: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key-value pair, returning the previous value if any. An
    /// existing key keeps its insertion position.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.index.entry(key.clone()) {
            btree_map::Entry::Occupied(slot) => {
                let old = std::mem::replace(&mut self.entries[*slot.get()].1, value);
                Some(old)
            }
            btree_map::Entry::Vacant(slot) => {
                slot.insert(self.entries.len());
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.index.get(key).map(|&pos| &self.entries[pos].1)
    }

    /// Looks up a key, mutably.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.index.get(key).map(|&pos| &mut self.entries[pos].1)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Returns the value for `key`, inserting `default()` first if absent
    /// (the one entry-API shape the sim code uses on arrival-ordered maps).
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let pos = match self.index.entry(key.clone()) {
            btree_map::Entry::Occupied(slot) => *slot.get(),
            btree_map::Entry::Vacant(slot) => {
                let pos = self.entries.len();
                slot.insert(pos);
                self.entries.push((key, default()));
                pos
            }
        };
        &mut self.entries[pos].1
    }

    /// Removes a key, returning its value if it was present. Later entries
    /// keep their relative order.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let pos = self.index.remove(key)?;
        let (_, value) = self.entries.remove(pos);
        for slot in self.index.values_mut() {
            if *slot > pos {
                *slot -= 1;
            }
        }
        Some(value)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }
}

impl<K: Ord + Clone, V> Default for SeqMap<K, V> {
    fn default() -> Self {
        SeqMap::new()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for SeqMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<K: Ord + Clone, V> FromIterator<(K, V)> for SeqMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = SeqMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: Ord + Clone, V> IntoIterator for SeqMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detmap_iterates_in_key_order_regardless_of_insertion() {
        let mut a = DetMap::new();
        for k in [5, 1, 9, 3] {
            a.insert(k, k * 10);
        }
        let mut b = DetMap::new();
        for k in [3, 9, 1, 5] {
            b.insert(k, k * 10);
        }
        let ka: Vec<i32> = a.keys().copied().collect();
        let kb: Vec<i32> = b.keys().copied().collect();
        assert_eq!(ka, vec![1, 3, 5, 9]);
        assert_eq!(ka, kb, "iteration order is a pure function of the keys");
    }

    #[test]
    fn detmap_entry_matches_hashmap_semantics() {
        let mut m: DetMap<&str, u64> = DetMap::new();
        *m.entry("a").or_insert(0) += 1;
        *m.entry("a").or_insert(0) += 1;
        m.entry("b").or_default();
        assert_eq!(m.get(&"a"), Some(&2));
        assert_eq!(m.get(&"b"), Some(&0));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn detmap_drain_empties_in_key_order() {
        let mut m: DetMap<u32, &str> = [(2, "b"), (1, "a")].into();
        let drained: Vec<(u32, &str)> = m.drain().collect();
        assert_eq!(drained, vec![(1, "a"), (2, "b")]);
        assert!(m.is_empty());
    }

    #[test]
    fn detset_orders_elements() {
        let s: DetSet<u32> = [3, 1, 2].into_iter().collect();
        let v: Vec<u32> = s.iter().copied().collect();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(s.contains(&2));
    }

    #[test]
    fn seqmap_preserves_insertion_order() {
        let mut m = SeqMap::new();
        m.insert("c", 1);
        m.insert("a", 2);
        m.insert("b", 3);
        m.insert("a", 20); // update keeps position
        let keys: Vec<&str> = m.keys().copied().collect();
        assert_eq!(keys, vec!["c", "a", "b"]);
        assert_eq!(m.get(&"a"), Some(&20));
    }

    #[test]
    fn seqmap_remove_shifts_without_reordering() {
        let mut m: SeqMap<u32, u32> = (0..5).map(|k| (k, k)).collect();
        assert_eq!(m.remove(&2), Some(2));
        assert_eq!(m.remove(&2), None);
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![0, 1, 3, 4]);
        assert_eq!(m.get(&4), Some(&4), "indices repaired after the shift");
        m.insert(2, 99);
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![0, 1, 3, 4, 2], "re-insert goes to the back");
    }

    #[test]
    fn seqmap_get_or_insert_with() {
        let mut m: SeqMap<u32, Vec<u32>> = SeqMap::new();
        m.get_or_insert_with(7, Vec::new).push(1);
        m.get_or_insert_with(7, Vec::new).push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }
}
