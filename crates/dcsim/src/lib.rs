//! # dcsim — packet-level datacenter network simulator
//!
//! A discrete-event, packet-level network simulator equivalent in modelling
//! power to htsim (which the paper *Mitigating Inter-datacenter Incast with
//! a Proxy*, HotNets '25, uses for its evaluation):
//!
//! * store-and-forward output-queued switches with **ECN marking** (RED-
//!   style two-threshold ramp) and **packet trimming** (NDP/EQDS-style:
//!   full data queues cut packets to headers that ride a strict-priority
//!   control queue),
//! * **leaf–spine topologies** and the paper's two-datacenter topology
//!   joined by backbone routers over long-haul links,
//! * **packet spraying** across all equal-cost next hops,
//! * a **DCTCP-like transport** (window reset on timeout, multiplicative
//!   decrease on marked ACK / NACK, additive increase on unmarked ACK,
//!   initial window = 1 BDP) with per-packet ACKs and NACK-driven
//!   retransmission,
//! * the **Streamlined proxy** agent and the building blocks of the
//!   **Naive proxy** (receiver-with-grants + relay sender).
//!
//! Time is integer picoseconds; every run is fully deterministic given a
//! seed. See the `incast-core` crate for the paper's experiment harness
//! built on top of this simulator.
//!
//! ## Example: one flow across the two-DC topology
//!
//! ```
//! use dcsim::prelude::*;
//!
//! let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
//! let mut sim = Simulator::new(topo, 42);
//! let src = HostId(0);
//! let dst = sim.topology().hosts_in_dc(1)[0];
//! let handle = install_flow(&mut sim, FlowSpec::new(src, dst, 1_000_000), SimTime::ZERO);
//! let report = sim.run(None);
//! assert_eq!(report.stop, StopReason::Idle);
//! assert!(sim.metrics().completion(handle.flow).is_some());
//! ```

pub mod agent;
pub mod audit;
pub mod det;
pub mod events;
pub mod faults;
pub mod fidelity;
pub mod fleet;
pub mod flows;
pub mod metrics;
pub mod packet;
pub mod protocol;
pub mod proxy;
pub mod queues;
pub mod sim;
pub mod time;
pub mod topology;
pub mod workload;

/// Convenient glob-import surface for experiment and test code.
pub mod prelude {
    pub use crate::agent::{Agent, Counter, Ctx, Effect, Note};
    pub use crate::audit::{AuditConfig, AuditMode, InvariantViolation, PacketLedger};
    pub use crate::det::{DetMap, DetSet, SeqMap};
    pub use crate::events::{FaultEvent, TimerKind};
    pub use crate::faults::{
        AgentCrash, FaultError, FaultPlan, LinkWindow, PortImpairment, ShardCrash,
    };
    pub use crate::fidelity::{ExpressStats, FidelityConfig};
    pub use crate::fleet::{FleetReport, FleetSim};
    pub use crate::flows::{install_flow, FlowHandle, FlowSpec};
    pub use crate::metrics::SimMetrics;
    pub use crate::packet::{
        AgentId, Ecn, FlowId, HostId, NodeId, Packet, PacketKind, PortId, DATA_PKT_SIZE,
        HEADER_SIZE, MSS,
    };
    pub use crate::protocol::{
        packets_for_bytes, CcConfig, DctcpSender, FailoverConfig, Receiver, RtoConfig,
    };
    pub use crate::proxy::{ProxyError, StreamlinedProxy};
    pub use crate::queues::{EnqueueOutcome, PortQueue, QueueConfig, QueueStats};
    pub use crate::sim::{RunReport, Simulator, StopReason, TerminatedReason};
    pub use crate::time::{Bandwidth, SimDuration, SimTime};
    pub use crate::topology::{
        two_dc_leaf_spine, two_dc_unstructured, LinkProps, NodeRole, Topology, TopologyBuilder,
        TwoDcParams, UnstructuredParams,
    };
    pub use crate::workload::{BackgroundTraffic, FlowSizeDist, PoissonArrivals};
}
