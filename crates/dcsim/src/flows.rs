//! Flow installation helpers: wire a sender and a receiver into the
//! simulator with path-derived congestion-control parameters.

use crate::packet::{AgentId, FlowId, HostId, DATA_PKT_SIZE, HEADER_SIZE};
use crate::protocol::{packets_for_bytes, CcConfig, DctcpSender, Receiver};
use crate::sim::Simulator;
use crate::time::SimTime;

/// Description of a plain (unproxied) flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application bytes to transfer.
    pub bytes: u64,
    /// Congestion-control override; `None` derives 1-BDP initial window and
    /// RTT-scaled RTO from the path, per §4.1.
    pub cc: Option<CcConfig>,
}

impl FlowSpec {
    /// A flow with path-derived congestion control.
    pub fn new(src: HostId, dst: HostId, bytes: u64) -> Self {
        FlowSpec {
            src,
            dst,
            bytes,
            cc: None,
        }
    }

    /// Overrides the congestion-control config.
    pub fn with_cc(mut self, cc: CcConfig) -> Self {
        self.cc = Some(cc);
        self
    }
}

/// Handles to an installed flow's pieces.
#[derive(Debug, Clone, Copy)]
pub struct FlowHandle {
    /// The flow id (completion is recorded against it).
    pub flow: FlowId,
    /// The sending agent.
    pub sender: AgentId,
    /// The receiving agent.
    pub receiver: AgentId,
    /// Number of data packets the flow carries.
    pub packets: u64,
}

/// Derives the §4.1 congestion-control parameters for the path
/// `src → dst`: initial window = 1 BDP (bottleneck bandwidth × base RTT),
/// RTO floor scaled to the base RTT.
pub fn cc_for_path(sim: &Simulator, src: HostId, dst: HostId) -> CcConfig {
    let topo = sim.topology();
    let base_rtt = topo.base_rtt(src, dst, DATA_PKT_SIZE, HEADER_SIZE);
    let bdp = topo.path_bottleneck(src, dst).bdp_bytes(base_rtt);
    CcConfig::for_rtt(base_rtt, bdp)
}

/// Installs a sender/receiver pair for `spec`, scheduling the sender to
/// start at `start`. Completion is recorded in the simulator metrics under
/// the returned flow id when the receiver holds every byte.
pub fn install_flow(sim: &mut Simulator, spec: FlowSpec, start: SimTime) -> FlowHandle {
    assert_ne!(spec.src, spec.dst, "flow to self");
    let cc = spec
        .cc
        .unwrap_or_else(|| cc_for_path(sim, spec.src, spec.dst));
    let packets = packets_for_bytes(spec.bytes);
    let flow = sim.new_flow();
    // Inline arena slots: a million-flow fleet install stays two dense
    // pushes per flow, no per-agent boxing.
    let sender = sim.add_dctcp_sender(DctcpSender::new(flow, spec.src, spec.dst, packets, cc));
    let receiver = sim.add_receiver(Receiver::new(flow, spec.dst, packets));
    sim.bind(flow, spec.src, sender);
    sim.bind(flow, spec.dst, receiver);
    sim.schedule_start(start, sender);
    FlowHandle {
        flow,
        sender,
        receiver,
        packets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MSS;
    use crate::sim::StopReason;
    use crate::time::SimDuration;
    use crate::topology::{two_dc_leaf_spine, TwoDcParams};

    fn sim() -> Simulator {
        Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 7)
    }

    #[test]
    fn cc_for_path_intra_vs_inter() {
        let s = sim();
        let intra = cc_for_path(&s, crate::packet::HostId(0), crate::packet::HostId(1));
        let far = s.topology().hosts_in_dc(1)[0];
        let inter = cc_for_path(&s, crate::packet::HostId(0), far);
        // Inter-DC BDP (100 µs links in the test topology) dwarfs the
        // intra-DC BDP (µs-scale).
        assert!(inter.init_cwnd_bytes > 20 * intra.init_cwnd_bytes);
        assert!(inter.rto.min_rto > intra.rto.min_rto);
        assert!(inter.base_feedback_delay > SimDuration::from_micros(400));
    }

    #[test]
    fn single_intra_dc_flow_completes() {
        let mut s = sim();
        let h = install_flow(
            &mut s,
            FlowSpec::new(crate::packet::HostId(0), crate::packet::HostId(1), 100_000),
            SimTime::ZERO,
        );
        let report = s.run(Some(SimTime::ZERO + SimDuration::from_secs(5)));
        assert_eq!(report.stop, StopReason::Idle, "flow must drain: {report:?}");
        let done = s.metrics().completion(h.flow).expect("completed");
        // 100 KB at 100 Gbps ≈ 8 µs + RTT; must be well under a millisecond.
        assert!(
            done < SimTime::ZERO + SimDuration::from_millis(1),
            "done at {done}"
        );
        assert_eq!(h.packets, 100_000u64.div_ceil(MSS));
    }

    #[test]
    fn single_inter_dc_flow_completes() {
        let mut s = sim();
        let far = s.topology().hosts_in_dc(1)[0];
        let h = install_flow(
            &mut s,
            FlowSpec::new(crate::packet::HostId(0), far, 1_000_000),
            SimTime::ZERO,
        );
        let report = s.run(Some(SimTime::ZERO + SimDuration::from_secs(10)));
        assert_eq!(report.stop, StopReason::Idle);
        let done = s.metrics().completion(h.flow).expect("completed");
        // Must take at least one one-way trip (~200 µs) but finish promptly
        // (1 MB fits in the 1-BDP initial window).
        assert!(done > SimTime::ZERO + SimDuration::from_micros(200));
        assert!(
            done < SimTime::ZERO + SimDuration::from_millis(20),
            "done at {done}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut s = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), seed);
            let far = s.topology().hosts_in_dc(1)[0];
            let h = install_flow(
                &mut s,
                FlowSpec::new(crate::packet::HostId(0), far, 500_000),
                SimTime::ZERO,
            );
            s.run(None);
            s.metrics().completion(h.flow).unwrap()
        };
        assert_eq!(run(1), run(1));
        assert_eq!(run(2), run(2));
    }

    #[test]
    #[should_panic(expected = "flow to self")]
    fn self_flow_panics() {
        let mut s = sim();
        install_flow(
            &mut s,
            FlowSpec::new(crate::packet::HostId(0), crate::packet::HostId(0), 1),
            SimTime::ZERO,
        );
    }
}
