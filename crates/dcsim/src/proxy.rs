//! The Streamlined proxy agent (§3 insight #3, §4.1 "Proxy (Streamlined)").
//!
//! "Upon receiving a packet from the sender, the proxy checks whether it is
//! a header-only packet. If so, it sends a NACK back to the sender;
//! otherwise, it forwards the packet to the receiver. Upon receiving a
//! packet from the receiver, the proxy simply forwards it to the sender."
//!
//! One agent instance serves every flow routed through its host; per-flow
//! state is just the (sender, receiver) address pair, matching the paper's
//! argument that the proxy needs no connection state. The per-packet
//! processing delay models the eBPF datapath cost measured in Figure 5
//! (median 0.42 µs lower bound).
//!
//! The Naive proxy needs no dedicated agent: it is a
//! [`crate::protocol::Receiver`] with grants wired to a
//! [`crate::protocol::DctcpSender`] in relay mode on the same host (full
//! send/receive logic — exactly the overhead the paper attributes to it).

use crate::agent::{Agent, Counter, Ctx};
use crate::det::DetMap;
use crate::packet::{FlowId, HostId, Packet, PacketKind};
use crate::time::SimDuration;
use std::fmt;

/// Why a proxy rejected a flow registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyError {
    /// The flow is already registered (with possibly different endpoints).
    AlreadyRegistered { flow: FlowId },
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::AlreadyRegistered { flow } => {
                write!(f, "{flow} is already registered at this proxy")
            }
        }
    }
}

impl std::error::Error for ProxyError {}

/// Address pair of a proxied flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxiedFlow {
    /// The incast sender (in the proxy's datacenter).
    pub sender: HostId,
    /// The remote receiver.
    pub receiver: HostId,
}

/// The Streamlined proxy: trim-aware forwarding with early NACKs.
pub struct StreamlinedProxy {
    host: HostId,
    flows: DetMap<FlowId, ProxiedFlow>,
    /// Per-packet processing delay (models the eBPF datapath, Fig. 5a).
    processing_delay: SimDuration,
    /// When false, trimmed headers are forwarded to the receiver instead
    /// of being converted into early NACKs — the "proxy that simply
    /// relays" of Insight #2, which the paper argues cannot accelerate
    /// convergence. Used by the relay-only ablation.
    early_nack: bool,
}

impl StreamlinedProxy {
    /// Creates a proxy on `host` with the given per-packet processing
    /// delay. The paper's prototype measures a median of 0.42 µs.
    pub fn new(host: HostId, processing_delay: SimDuration) -> Self {
        StreamlinedProxy {
            host,
            flows: DetMap::new(),
            processing_delay,
            early_nack: true,
        }
    }

    /// Disables early NACK generation: the proxy becomes a pure relay
    /// (trimmed headers travel on to the receiver, which NACKs them a full
    /// long-haul RTT later). Insight #2's strawman.
    pub fn relay_only(mut self) -> Self {
        self.early_nack = false;
        self
    }

    /// The host this proxy runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Registers a flow to be relayed through this proxy. Rejects double
    /// registration instead of silently rebinding the flow's endpoints.
    pub fn register(
        &mut self,
        flow: FlowId,
        sender: HostId,
        receiver: HostId,
    ) -> Result<(), ProxyError> {
        if self.flows.contains_key(&flow) {
            return Err(ProxyError::AlreadyRegistered { flow });
        }
        self.flows.insert(flow, ProxiedFlow { sender, receiver });
        Ok(())
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }
}

impl Agent for StreamlinedProxy {
    fn on_packet(&mut self, mut pkt: Packet, ctx: &mut Ctx) {
        let Some(&dirs) = self.flows.get(&pkt.flow) else {
            // Unknown flow (lost registration, misrouted packet): a real
            // middlebox drops such traffic rather than crashing. The
            // sender's RTO recovers the packet end to end.
            ctx.count(Counter::ProxyUnknownFlowDrops, 1);
            return;
        };
        match pkt.kind {
            PacketKind::Data => {
                debug_assert_eq!(pkt.src, dirs.sender);
                if pkt.trimmed && self.early_nack {
                    // Early loss signal: NACK straight back to the sender;
                    // the header goes no further.
                    ctx.count(Counter::ProxyNacks, 1);
                    let nack = Packet::nack_for(&pkt, self.host);
                    ctx.send_after(self.processing_delay, self.host, nack);
                } else {
                    pkt.dst = dirs.receiver;
                    ctx.count(Counter::ProxyForwarded, 1);
                    ctx.send_after(self.processing_delay, self.host, pkt);
                }
            }
            PacketKind::Ack | PacketKind::Nack => {
                // Reverse path: receiver feedback, forward to the sender.
                debug_assert_eq!(pkt.src, dirs.receiver);
                pkt.dst = dirs.sender;
                ctx.count(Counter::ProxyForwarded, 1);
                ctx.send_after(self.processing_delay, self.host, pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Effect;
    use crate::packet::AgentId;
    use crate::time::SimTime;

    const SENDER: HostId = HostId(0);
    const PROXY: HostId = HostId(5);
    const RECEIVER: HostId = HostId(9);

    fn proxy() -> StreamlinedProxy {
        let mut p = StreamlinedProxy::new(PROXY, SimDuration::from_nanos(420));
        p.register(FlowId(0), SENDER, RECEIVER).expect("fresh flow");
        p
    }

    fn ctx_with<'a>(effects: &'a mut Vec<Effect>) -> Ctx<'a> {
        Ctx {
            now: SimTime(0),
            self_id: AgentId(2),
            effects,
        }
    }

    fn only_send(fx: &[Effect]) -> &Packet {
        let sends: Vec<&Packet> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Send { packet, .. } => Some(packet),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 1);
        sends[0]
    }

    #[test]
    fn forwards_data_to_receiver() {
        let mut p = proxy();
        let mut fx = Vec::new();
        let data = Packet::data(FlowId(0), 3, SENDER, PROXY, 7);
        p.on_packet(data, &mut ctx_with(&mut fx));
        let fwd = only_send(&fx);
        assert_eq!(fwd.kind, PacketKind::Data);
        assert_eq!(fwd.dst, RECEIVER);
        assert_eq!(fwd.src, SENDER, "source preserved end to end");
        assert_eq!(fwd.seq, 3);
        assert_eq!(fwd.ts_echo, 7, "timestamp echo preserved");
    }

    #[test]
    fn nacks_trimmed_headers_and_drops_them() {
        let mut p = proxy();
        let mut fx = Vec::new();
        let mut data = Packet::data(FlowId(0), 4, SENDER, PROXY, 7);
        data.trim();
        p.on_packet(data, &mut ctx_with(&mut fx));
        let nack = only_send(&fx);
        assert_eq!(nack.kind, PacketKind::Nack);
        assert_eq!(nack.dst, SENDER);
        assert_eq!(nack.seq, 4);
        assert_eq!(nack.ts_echo, 7, "feedback-delay echo preserved");
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Count {
                counter: Counter::ProxyNacks,
                ..
            }
        )));
    }

    #[test]
    fn forwards_receiver_feedback_to_sender() {
        let mut p = proxy();
        let mut fx = Vec::new();
        let data = Packet::data(FlowId(0), 1, SENDER, RECEIVER, 7);
        let mut ack = Packet::ack_for(&data, RECEIVER);
        ack.dst = PROXY; // receiver replies via the proxy
        p.on_packet(ack, &mut ctx_with(&mut fx));
        let fwd = only_send(&fx);
        assert_eq!(fwd.kind, PacketKind::Ack);
        assert_eq!(fwd.dst, SENDER);
    }

    #[test]
    fn processing_delay_applied() {
        let mut p = proxy();
        let mut fx = Vec::new();
        let data = Packet::data(FlowId(0), 0, SENDER, PROXY, 0);
        p.on_packet(data, &mut ctx_with(&mut fx));
        match &fx
            .iter()
            .find(|e| matches!(e, Effect::Send { .. }))
            .unwrap()
        {
            Effect::Send { delay, .. } => assert_eq!(*delay, SimDuration::from_nanos(420)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serves_multiple_flows() {
        let mut p = proxy();
        p.register(FlowId(1), HostId(2), RECEIVER)
            .expect("fresh flow");
        assert_eq!(p.flow_count(), 2);
        let mut fx = Vec::new();
        let data = Packet::data(FlowId(1), 0, HostId(2), PROXY, 0);
        p.on_packet(data, &mut ctx_with(&mut fx));
        assert_eq!(only_send(&fx).dst, RECEIVER);
    }

    #[test]
    fn double_registration_rejected() {
        let mut p = proxy();
        assert_eq!(
            p.register(FlowId(0), SENDER, RECEIVER),
            Err(ProxyError::AlreadyRegistered { flow: FlowId(0) })
        );
        assert_eq!(p.flow_count(), 1, "rejected registration must not rebind");
    }

    #[test]
    fn unknown_flow_dropped_and_counted() {
        let mut p = proxy();
        let mut fx = Vec::new();
        let data = Packet::data(FlowId(9), 0, SENDER, PROXY, 0);
        p.on_packet(data, &mut ctx_with(&mut fx));
        assert!(
            !fx.iter().any(|e| matches!(e, Effect::Send { .. })),
            "unknown flows must not be forwarded"
        );
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Count {
                counter: Counter::ProxyUnknownFlowDrops,
                amount: 1
            }
        )));
    }
}
