//! Workload generation beyond the single incast: background traffic and
//! arrival processes.
//!
//! The paper's evaluation runs incasts on an otherwise idle network; its
//! production motivation (§2) is datacenters full of other traffic. This
//! module generates that other traffic so experiments can check that the
//! proxy's benefit survives realistic conditions: random pairwise flows
//! with heavy-tailed sizes and staggered starts.

use crate::flows::{install_flow, FlowHandle, FlowSpec};
use crate::packet::HostId;
use crate::sim::Simulator;
use crate::time::{SimDuration, SimTime};
use trace::{derive_seed, SplitMix64};

/// Flow-size distributions for background traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSizeDist {
    /// Every flow the same size.
    Fixed(u64),
    /// Log-uniform between the bounds (heavy-tailed-ish, the standard
    /// stand-in for datacenter flow-size distributions).
    LogUniform {
        /// Smallest flow in bytes.
        min_bytes: u64,
        /// Largest flow in bytes.
        max_bytes: u64,
    },
    /// A coarse web-search-style mix: 60% mice (≤100 KB), 30% medium
    /// (≤1 MB), 10% elephants (≤10 MB), log-uniform within each band.
    WebSearch,
}

impl FlowSizeDist {
    /// Draws one flow size.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            FlowSizeDist::Fixed(bytes) => bytes.max(1),
            FlowSizeDist::LogUniform {
                min_bytes,
                max_bytes,
            } => log_uniform(rng, min_bytes, max_bytes),
            FlowSizeDist::WebSearch => {
                let band = rng.next_f64();
                if band < 0.6 {
                    log_uniform(rng, 10_000, 100_000)
                } else if band < 0.9 {
                    log_uniform(rng, 100_000, 1_000_000)
                } else {
                    log_uniform(rng, 1_000_000, 10_000_000)
                }
            }
        }
    }
}

fn log_uniform(rng: &mut SplitMix64, min: u64, max: u64) -> u64 {
    assert!(min >= 1 && max >= min, "invalid size bounds");
    let (ln_min, ln_max) = ((min as f64).ln(), (max as f64).ln());
    (ln_min + rng.next_f64() * (ln_max - ln_min)).exp() as u64
}

/// A batch of random background flows.
#[derive(Debug, Clone)]
pub struct BackgroundTraffic {
    /// Number of flows to create.
    pub flows: usize,
    /// Flow sizes.
    pub sizes: FlowSizeDist,
    /// Starts are uniform in `[0, start_window)`.
    pub start_window: SimDuration,
    /// Hosts allowed as endpoints (e.g. exclude the incast participants).
    pub hosts: Vec<HostId>,
    /// Base seed (flow `i` derives its own stream).
    pub seed: u64,
}

impl BackgroundTraffic {
    /// Installs the flows; returns their handles (completion of each is
    /// recorded in the simulator metrics as usual).
    ///
    /// # Panics
    /// Panics with fewer than two candidate hosts.
    pub fn install(&self, sim: &mut Simulator) -> Vec<FlowHandle> {
        assert!(self.hosts.len() >= 2, "need at least two hosts");
        let mut rng = SplitMix64::new(derive_seed(self.seed, 0xBA5E));
        let mut handles = Vec::with_capacity(self.flows);
        for _ in 0..self.flows {
            let src = self.hosts[rng.next_bounded(self.hosts.len() as u64) as usize];
            let dst = loop {
                let d = self.hosts[rng.next_bounded(self.hosts.len() as u64) as usize];
                if d != src {
                    break d;
                }
            };
            let bytes = self.sizes.sample(&mut rng);
            let start =
                SimTime::ZERO + SimDuration((self.start_window.0 as f64 * rng.next_f64()) as u64);
            handles.push(install_flow(sim, FlowSpec::new(src, dst, bytes), start));
        }
        handles
    }
}

/// Draws exponential inter-arrival times with the given mean — a Poisson
/// arrival process for repeated incasts or flow arrivals.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    mean: SimDuration,
    rng: SplitMix64,
    now: SimTime,
}

impl PoissonArrivals {
    /// Creates a process starting at time zero.
    ///
    /// # Panics
    /// Panics on a zero mean.
    pub fn new(mean: SimDuration, seed: u64) -> Self {
        assert!(mean.0 > 0, "zero mean inter-arrival");
        PoissonArrivals {
            mean,
            rng: SplitMix64::new(derive_seed(seed, 0xA881)),
            now: SimTime::ZERO,
        }
    }

    /// The next arrival timestamp.
    pub fn next_arrival(&mut self) -> SimTime {
        // Inverse transform: -mean * ln(U), U in (0, 1].
        let u = (1.0 - self.rng.next_f64()).max(f64::MIN_POSITIVE);
        let gap = (-(u.ln()) * self.mean.0 as f64) as u64;
        self.now += SimDuration(gap);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::StopReason;
    use crate::topology::{two_dc_leaf_spine, TwoDcParams};

    #[test]
    fn log_uniform_respects_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let v = log_uniform(&mut rng, 100, 10_000);
            assert!((100..=10_000).contains(&v), "v={v}");
        }
    }

    #[test]
    fn websearch_mix_is_mostly_mice() {
        let mut rng = SplitMix64::new(2);
        let sizes: Vec<u64> = (0..10_000)
            .map(|_| FlowSizeDist::WebSearch.sample(&mut rng))
            .collect();
        let mice = sizes.iter().filter(|&&s| s <= 100_000).count();
        let elephants = sizes.iter().filter(|&&s| s > 1_000_000).count();
        assert!((5000..7000).contains(&mice), "mice={mice}");
        assert!((600..1400).contains(&elephants), "elephants={elephants}");
    }

    #[test]
    fn background_flows_complete() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 3);
        let hosts: Vec<HostId> = (0..16).map(HostId).collect();
        let handles = BackgroundTraffic {
            flows: 20,
            sizes: FlowSizeDist::LogUniform {
                min_bytes: 10_000,
                max_bytes: 200_000,
            },
            start_window: SimDuration::from_millis(1),
            hosts,
            seed: 9,
        }
        .install(&mut sim);
        assert_eq!(handles.len(), 20);
        let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(60)));
        assert_eq!(report.stop, StopReason::Idle);
        for h in &handles {
            assert!(sim.metrics().completion(h.flow).is_some());
        }
    }

    #[test]
    fn background_is_deterministic() {
        let sizes = |seed: u64| {
            let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
            let mut sim = Simulator::new(topo, 1);
            BackgroundTraffic {
                flows: 10,
                sizes: FlowSizeDist::WebSearch,
                start_window: SimDuration::from_millis(1),
                hosts: (0..8).map(HostId).collect(),
                seed,
            }
            .install(&mut sim)
            .iter()
            .map(|h| h.packets)
            .collect::<Vec<_>>()
        };
        assert_eq!(sizes(5), sizes(5));
        assert_ne!(sizes(5), sizes(6));
    }

    #[test]
    fn poisson_mean_is_close() {
        let mean = SimDuration::from_micros(100);
        let mut p = PoissonArrivals::new(mean, 4);
        let n = 20_000;
        let mut last = SimTime::ZERO;
        let mut total = 0u128;
        for _ in 0..n {
            let t = p.next_arrival();
            total += (t.0 - last.0) as u128;
            last = t;
        }
        let measured = total as f64 / n as f64;
        let expected = mean.0 as f64;
        assert!(
            (measured / expected - 1.0).abs() < 0.05,
            "measured {measured} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two hosts")]
    fn single_host_panics() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 1);
        BackgroundTraffic {
            flows: 1,
            sizes: FlowSizeDist::Fixed(1000),
            start_window: SimDuration::ZERO,
            hosts: vec![HostId(0)],
            seed: 1,
        }
        .install(&mut sim);
    }
}
