//! The discrete-event queue.
//!
//! An indexed 4-ary min-heap keyed by `(time, sequence)`: the sequence
//! number breaks ties in insertion order, which makes runs fully
//! deterministic — two events scheduled for the same picosecond always
//! fire in the order they were scheduled.
//!
//! Layout matters here: this queue is the simulator's hottest structure
//! (one push + one pop per event, tens of millions per run). The heap
//! itself holds only 24-byte `(time, seq, slot)` entries, so sift-up /
//! sift-down move small Copy values with good cache locality; the fat
//! [`Event`] payloads (a full [`Packet`] by value in the `Arrival` case)
//! live in a slab indexed by `slot` and are written exactly once on
//! `schedule` and read exactly once on `pop`. Freed slots are recycled
//! through a free list, so a steady-state run allocates nothing per event.
//! The 4-ary shape halves tree depth versus a binary heap, trading a few
//! extra comparisons per level for fewer cache-missing levels — the usual
//! win for discrete-event simulation workloads.

use crate::packet::{AgentId, NodeId, Packet, PortId};
use crate::time::SimTime;

/// Timer discriminator passed back to the agent that armed it.
///
/// Carries no validity state: a timer that should no longer fire is
/// canceled or rescheduled in place through its [`TimerHandle`] instead of
/// being left in the heap to be popped and discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout.
    Rto,
    /// Generic agent-defined timer (pacing, orchestration probes, ...).
    Custom { tag: u64 },
}

/// A stable reference to a pending event, returned by
/// [`EventQueue::schedule_cancelable`].
///
/// The handle names a slab slot plus the generation the slot had when the
/// event was scheduled; once the event fires, is canceled, or its slot is
/// recycled, the generation moves on and the handle goes harmlessly stale
/// ([`EventQueue::cancel`] / [`EventQueue::reschedule`] become no-ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    gen: u32,
}

/// A scheduled infrastructure fault (see [`crate::faults::FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// `port` stops transmitting and blackholes everything offered to it.
    LinkDown { port: PortId },
    /// `port` resumes transmitting (queued packets drain from here on).
    LinkUp { port: PortId },
    /// `agent` crashes: its handlers stop running and packets addressed to
    /// it are destroyed.
    AgentCrash { agent: AgentId },
    /// `agent` restarts and handles traffic again.
    AgentRestore { agent: AgentId },
}

/// A scheduled simulator event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet finished propagating over a link and arrives at `node`.
    Arrival { node: NodeId, packet: Packet },
    /// The transmitter of `port` finished serializing its current packet.
    TxDone { port: PortId },
    /// A timer armed by `agent` fired.
    Timer { agent: AgentId, kind: TimerKind },
    /// A flow's sender starts transmitting.
    FlowStart { agent: AgentId },
    /// A packet leaves host processing and joins output port `port`
    /// (delayed host-side sends, e.g. modelled proxy processing time).
    Inject { port: PortId, packet: Packet },
    /// An injected infrastructure fault takes effect.
    Fault(FaultEvent),
}

/// Pending-event counts by class, as reported by [`EventQueue::census`].
/// `packets` counts events that carry a packet in flight (`Arrival`,
/// `Inject`); `timers` counts pending `Timer` events; everything else
/// (`TxDone`, `FlowStart`, `Fault`) lands in `other`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCensus {
    pub packets: u64,
    pub timers: u64,
    pub other: u64,
}

/// Heap arity. Four children per node keeps the tree shallow (log₄ n
/// levels) while a whole sibling group still fits in one or two cache
/// lines of 24-byte entries.
const ARITY: usize = 4;

/// A compact heap entry: ordering key plus a handle into the event slab.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    /// Min-heap ordering key: earliest time first, schedule order within a
    /// timestamp.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// The event queue: a deterministic min-heap of [`Event`]s with
/// first-class cancel and reschedule-in-place.
#[derive(Default)]
pub struct EventQueue {
    /// Indexed 4-ary min-heap of compact entries.
    heap: Vec<HeapEntry>,
    /// Slab of event payloads; `HeapEntry::slot` indexes into it. `None`
    /// slots are free and linked through `free`.
    slab: Vec<Option<Event>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Heap index of each occupied slot (`pos[slot]` is only meaningful
    /// while the slot is live); maintained by every sift so cancel and
    /// reschedule find their entry in O(1).
    pos: Vec<u32>,
    /// Per-slot generation, bumped whenever a slot is freed; a
    /// [`TimerHandle`] is live iff its generation still matches.
    gen: Vec<u32>,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before any reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            pos: Vec::with_capacity(capacity),
            gen: Vec::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — events may only be scheduled at or
    /// after the current time.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.schedule_cancelable(at, event);
    }

    /// Schedules `event` at absolute time `at`, returning a handle that
    /// can later [`cancel`](Self::cancel) or
    /// [`reschedule`](Self::reschedule) it while it is still pending.
    ///
    /// # Panics
    /// Panics if `at` is in the past — events may only be scheduled at or
    /// after the current time.
    pub fn schedule_cancelable(&mut self, at: SimTime, event: Event) -> TimerHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slab[slot as usize].is_none());
                self.slab[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = self.slab.len() as u32;
                self.slab.push(Some(event));
                self.pos.push(0);
                self.gen.push(0);
                slot
            }
        };
        let i = self.heap.len();
        self.heap.push(HeapEntry { at, seq, slot });
        self.pos[slot as usize] = i as u32;
        self.sift_up(i);
        TimerHandle {
            slot,
            gen: self.gen[slot as usize],
        }
    }

    /// True while the handle's event is still pending (not yet popped,
    /// canceled, or recycled).
    pub fn is_live(&self, handle: TimerHandle) -> bool {
        self.gen
            .get(handle.slot as usize)
            .is_some_and(|&g| g == handle.gen)
            && self.slab[handle.slot as usize].is_some()
    }

    /// Cancels a pending event, removing it from the heap and returning
    /// its payload. Returns `None` (and does nothing) if the handle is
    /// stale — the event already fired, was canceled, or its slot moved on.
    pub fn cancel(&mut self, handle: TimerHandle) -> Option<Event> {
        if !self.is_live(handle) {
            return None;
        }
        let i = self.pos[handle.slot as usize] as usize;
        debug_assert_eq!(self.heap[i].slot, handle.slot);
        let last = self.heap.pop().expect("live handle implies non-empty heap");
        if i < self.heap.len() {
            self.heap[i] = last;
            self.pos[last.slot as usize] = i as u32;
            // The displaced tail entry can violate the heap property in
            // either direction relative to position `i`.
            if i > 0 && self.heap[i].key() < self.heap[(i - 1) / ARITY].key() {
                self.sift_up(i);
            } else {
                self.sift_down(i);
            }
        }
        Some(self.free_slot(handle.slot))
    }

    /// Moves a pending event to a new deadline in place: an indexed
    /// decrease/increase-key instead of a cancel + schedule pair. The entry
    /// takes a fresh sequence number, so within a timestamp it orders as if
    /// it had just been scheduled — exactly where a cancel + re-schedule
    /// would have put it. Returns `false` (and does nothing) on a stale
    /// handle.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn reschedule(&mut self, handle: TimerHandle, at: SimTime) -> bool {
        assert!(
            at >= self.now,
            "rescheduling into the past: at={at} now={}",
            self.now
        );
        if !self.is_live(handle) {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let i = self.pos[handle.slot as usize] as usize;
        debug_assert_eq!(self.heap[i].slot, handle.slot);
        let went_earlier = (at, seq) < self.heap[i].key();
        self.heap[i].at = at;
        self.heap[i].seq = seq;
        if went_earlier {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
        true
    }

    /// Mutable access to a pending event's payload (e.g. to refresh a
    /// timer's kind on reschedule). `None` on a stale handle.
    pub fn event_mut(&mut self, handle: TimerHandle) -> Option<&mut Event> {
        if !self.is_live(handle) {
            return None;
        }
        self.slab[handle.slot as usize].as_mut()
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.slot as usize] = 0;
            self.sift_down(0);
        }
        debug_assert!(top.at >= self.now, "heap returned an out-of-order event");
        self.now = top.at;
        Some((top.at, self.free_slot(top.slot)))
    }

    /// Releases a slot back to the free list, invalidating any handle that
    /// still points at it, and returns the payload it held.
    fn free_slot(&mut self, slot: u32) -> Event {
        let event = self.slab[slot as usize]
            .take()
            .expect("freeing an already-free slot");
        self.gen[slot as usize] = self.gen[slot as usize].wrapping_add(1);
        self.free.push(slot);
        event
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Counts pending events by class (for the invariant auditor). Walks
    /// the whole slab — O(slots), so callers should only invoke it at
    /// audit checkpoints, not per event.
    pub fn census(&self) -> EventCensus {
        let mut census = EventCensus::default();
        for entry in self.slab.iter().flatten() {
            match entry {
                Event::Arrival { .. } | Event::Inject { .. } => census.packets += 1,
                Event::Timer { .. } => census.timers += 1,
                Event::TxDone { .. } | Event::FlowStart { .. } | Event::Fault(_) => {
                    census.other += 1
                }
            }
        }
        census
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= entry.key() {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i].slot as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = entry;
        self.pos[entry.slot as usize] = i as u32;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let entry = self.heap[i];
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + ARITY).min(len);
            let mut best = first_child;
            let mut best_key = self.heap[first_child].key();
            for c in first_child + 1..last_child {
                let k = self.heap[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if entry.key() <= best_key {
                break;
            }
            self.heap[i] = self.heap[best];
            self.pos[self.heap[i].slot as usize] = i as u32;
            i = best;
        }
        self.heap[i] = entry;
        self.pos[entry.slot as usize] = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn dummy(tag: u64) -> Event {
        Event::Timer {
            agent: AgentId(0),
            kind: TimerKind::Custom { tag },
        }
    }

    fn tag_of(e: &Event) -> u64 {
        match e {
            Event::Timer {
                kind: TimerKind::Custom { tag, .. },
                ..
            } => *tag,
            _ => panic!("unexpected event"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), dummy(3));
        q.schedule(SimTime(10), dummy(1));
        q.schedule(SimTime(20), dummy(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            q.schedule(SimTime(5), dummy(tag));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_micros(7), dummy(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::ZERO + SimDuration::from_micros(7));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(42), dummy(0));
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), dummy(0));
        q.pop();
        q.schedule(SimTime(5), dummy(1));
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    /// Random interleaving of schedules and pops against a reference
    /// model: the heap must agree with a sorted `(time, seq)` list at
    /// every step, and slab slots must be recycled rather than leaked.
    #[test]
    fn randomized_interleaving_matches_reference() {
        let mut rng = trace::SplitMix64::new(0xE7E7);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time, tag)
        let mut next_tag = 0u64;
        for _ in 0..10_000 {
            if reference.is_empty() || rng.next_bounded(3) > 0 {
                let at = q.now().0 + rng.next_bounded(50);
                q.schedule(SimTime(at), dummy(next_tag));
                reference.push((at, next_tag));
                next_tag += 1;
            } else {
                let (at, event) = q.pop().expect("reference non-empty");
                // Earliest time, first-scheduled within it. Tags increase
                // with schedule order, so min-by (time, tag) is the model.
                let best = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &(t, tag))| (t, tag))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let (want_at, want_tag) = reference.swap_remove(best);
                assert_eq!((at.0, tag_of(&event)), (want_at, want_tag));
            }
            assert_eq!(q.len(), reference.len());
        }
        // Drain; times must be non-decreasing to the end.
        let mut last = q.now();
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
        }
        assert!(q.is_empty());
    }

    /// A bounded-pending workload must not grow the slab beyond its peak
    /// concurrency: freed slots are reused.
    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..1_000u64 {
            for k in 0..8 {
                q.schedule(SimTime(round * 10 + k), dummy(k));
            }
            for _ in 0..8 {
                q.pop().expect("scheduled");
            }
        }
        assert!(
            q.slab.len() <= 8,
            "slab grew to {} slots for 8 concurrent events",
            q.slab.len()
        );
    }

    #[test]
    fn canceled_event_never_fires() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancelable(SimTime(10), dummy(1));
        q.schedule(SimTime(20), dummy(2));
        assert!(q.is_live(h));
        assert!(matches!(
            q.cancel(h),
            Some(Event::Timer {
                kind: TimerKind::Custom { tag: 1 },
                ..
            })
        ));
        assert!(!q.is_live(h));
        assert_eq!(q.len(), 1);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, vec![2], "canceled event must not fire");
        // Double-cancel and cancel-after-drain are no-ops.
        assert!(q.cancel(h).is_none());
    }

    #[test]
    fn rescheduled_event_fires_only_at_the_new_deadline() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancelable(SimTime(10), dummy(1));
        q.schedule(SimTime(15), dummy(2));
        // Push the deadline later: the old slot must not fire at t=10.
        assert!(q.reschedule(h, SimTime(30)));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.0, tag_of(&e)))
            .collect();
        assert_eq!(order, vec![(15, 2), (30, 1)]);
    }

    #[test]
    fn reschedule_can_pull_a_deadline_earlier() {
        let mut q = EventQueue::new();
        for tag in 0..16 {
            q.schedule(SimTime(100 + tag), dummy(tag));
        }
        let h = q.schedule_cancelable(SimTime(500), dummy(99));
        assert!(q.reschedule(h, SimTime(1)));
        assert_eq!(q.pop().map(|(t, e)| (t.0, tag_of(&e))), Some((1, 99)));
    }

    #[test]
    fn reschedule_orders_like_a_fresh_schedule_within_a_timestamp() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancelable(SimTime(10), dummy(1));
        q.schedule(SimTime(10), dummy(2));
        // Rescheduling to the same timestamp re-enters at the back of the
        // tie order, as a cancel + schedule pair would.
        assert!(q.reschedule(h, SimTime(10)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn handles_go_stale_once_fired_and_survive_slot_reuse() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancelable(SimTime(10), dummy(1));
        q.pop();
        assert!(!q.is_live(h));
        assert!(!q.reschedule(h, SimTime(50)));
        assert!(q.cancel(h).is_none());
        // The freed slot is recycled for a new event; the old handle must
        // not reach it.
        let h2 = q.schedule_cancelable(SimTime(20), dummy(2));
        assert!(q.is_live(h2));
        assert!(!q.is_live(h));
        assert!(q.cancel(h).is_none());
        assert_eq!(q.pop().map(|(_, e)| tag_of(&e)), Some(2));
    }

    #[test]
    fn event_mut_rewrites_a_pending_payload() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancelable(SimTime(10), dummy(1));
        *q.event_mut(h).expect("live") = dummy(7);
        assert_eq!(q.pop().map(|(_, e)| tag_of(&e)), Some(7));
        assert!(q.event_mut(h).is_none(), "stale after firing");
    }

    /// Random interleaving of schedules, cancels, reschedules, and pops
    /// against a reference model: same contract as
    /// `randomized_interleaving_matches_reference`, with the new mutators
    /// in the mix.
    #[test]
    fn randomized_cancel_reschedule_matches_reference() {
        let mut rng = trace::SplitMix64::new(0xCA7C8);
        let mut q = EventQueue::new();
        // Reference: (time, order key, tag) triples; order key mirrors the
        // fresh-seq-on-reschedule rule.
        let mut reference: Vec<(u64, u64, u64)> = Vec::new();
        let mut handles: Vec<(TimerHandle, u64)> = Vec::new(); // (handle, tag)
        let mut next_tag = 0u64;
        let mut next_key = 0u64;
        for _ in 0..20_000 {
            match rng.next_bounded(6) {
                0..=2 => {
                    let at = q.now().0 + rng.next_bounded(50);
                    let h = q.schedule_cancelable(SimTime(at), dummy(next_tag));
                    reference.push((at, next_key, next_tag));
                    handles.push((h, next_tag));
                    next_tag += 1;
                    next_key += 1;
                }
                3 if !handles.is_empty() => {
                    let (h, tag) =
                        handles.swap_remove(rng.next_bounded(handles.len() as u64) as usize);
                    let live_in_ref = reference.iter().any(|&(_, _, t)| t == tag);
                    assert_eq!(q.cancel(h).is_some(), live_in_ref);
                    reference.retain(|&(_, _, t)| t != tag);
                }
                4 if !handles.is_empty() => {
                    let idx = rng.next_bounded(handles.len() as u64) as usize;
                    let (h, tag) = handles[idx];
                    let at = q.now().0 + rng.next_bounded(50);
                    let live_in_ref = reference.iter().any(|&(_, _, t)| t == tag);
                    assert_eq!(q.reschedule(h, SimTime(at)), live_in_ref);
                    if live_in_ref {
                        reference.retain(|&(_, _, t)| t != tag);
                        reference.push((at, next_key, tag));
                        next_key += 1;
                    }
                }
                _ => {
                    if reference.is_empty() {
                        assert!(q.pop().is_none());
                        continue;
                    }
                    let (at, event) = q.pop().expect("reference non-empty");
                    let best = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(t, key, _))| (t, key))
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    let (want_at, _, want_tag) = reference.swap_remove(best);
                    assert_eq!((at.0, tag_of(&event)), (want_at, want_tag));
                }
            }
            assert_eq!(q.len(), reference.len());
        }
        let mut last = q.now();
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
        }
    }

    /// Re-arming through one handle N times leaves exactly one pending
    /// event — the regression this whole change exists for.
    #[test]
    fn rearming_repeatedly_keeps_one_pending_event() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancelable(SimTime(100), dummy(0));
        for k in 0..1_000u64 {
            assert!(q.reschedule(h, SimTime(100 + k)));
            assert_eq!(q.len(), 1, "reschedule must not grow the heap");
        }
        assert!(q.slab.len() <= 1, "reschedule must not grow the slab");
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime(1099)));
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime(3), dummy(1));
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime(3)));
    }
}
