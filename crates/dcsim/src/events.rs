//! The discrete-event queue.
//!
//! A binary heap keyed by `(time, sequence)`: the sequence number breaks
//! ties in insertion order, which makes runs fully deterministic — two
//! events scheduled for the same picosecond always fire in the order they
//! were scheduled.

use crate::packet::{AgentId, NodeId, Packet, PortId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Timer discriminator passed back to the agent that armed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout. Carries the arming epoch: a timer whose
    /// epoch no longer matches the agent's current epoch is stale and is
    /// dropped without reaching the agent.
    Rto { epoch: u64 },
    /// Generic agent-defined timer (pacing, orchestration probes, ...).
    Custom { tag: u64, epoch: u64 },
}

/// A scheduled infrastructure fault (see [`crate::faults::FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// `port` stops transmitting and blackholes everything offered to it.
    LinkDown { port: PortId },
    /// `port` resumes transmitting (queued packets drain from here on).
    LinkUp { port: PortId },
    /// `agent` crashes: its handlers stop running and packets addressed to
    /// it are destroyed.
    AgentCrash { agent: AgentId },
    /// `agent` restarts and handles traffic again.
    AgentRestore { agent: AgentId },
}

/// A scheduled simulator event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A packet finished propagating over a link and arrives at `node`.
    Arrival { node: NodeId, packet: Packet },
    /// The transmitter of `port` finished serializing its current packet.
    TxDone { port: PortId },
    /// A timer armed by `agent` fired.
    Timer { agent: AgentId, kind: TimerKind },
    /// A flow's sender starts transmitting.
    FlowStart { agent: AgentId },
    /// A packet leaves host processing and joins output port `port`
    /// (delayed host-side sends, e.g. modelled proxy processing time).
    Inject { port: PortId, packet: Packet },
    /// An injected infrastructure fault takes effect.
    Fault(FaultEvent),
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The event queue: a deterministic min-heap of [`Event`]s.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — events may only be scheduled at or
    /// after the current time.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "heap returned an out-of-order event");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn dummy(tag: u64) -> Event {
        Event::Timer {
            agent: AgentId(0),
            kind: TimerKind::Custom { tag, epoch: 0 },
        }
    }

    fn tag_of(e: &Event) -> u64 {
        match e {
            Event::Timer {
                kind: TimerKind::Custom { tag, .. },
                ..
            } => *tag,
            _ => panic!("unexpected event"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), dummy(3));
        q.schedule(SimTime(10), dummy(1));
        q.schedule(SimTime(20), dummy(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            q.schedule(SimTime(5), dummy(tag));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| tag_of(&e))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_micros(7), dummy(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::ZERO + SimDuration::from_micros(7));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(42), dummy(0));
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), dummy(0));
        q.pop();
        q.schedule(SimTime(5), dummy(1));
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }
}
