//! Output-port queues: ECN marking, packet trimming, strict-priority
//! control queue.
//!
//! Each switch/host output port owns one [`PortQueue`] with two internal
//! FIFOs, following the NDP/EQDS switch model the paper builds on:
//!
//! * a **data queue** holding full-size data packets, with RED-style ECN
//!   marking between a low and a high threshold (§4.1 gives two marking
//!   thresholds per buffer class), and
//! * a **control queue** served at strict priority, holding ACKs, NACKs and
//!   trimmed (header-only) packets.
//!
//! When the data queue is full and trimming is enabled, an arriving data
//! packet is cut to its 64-byte header and enqueued on the control queue
//! instead of being dropped — the header's arrival downstream is the early
//! loss signal the Streamlined proxy converts into a NACK.

use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use trace::SplitMix64;

/// Configuration of one port queue.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Data-queue capacity in bytes.
    pub capacity_bytes: u64,
    /// Control-queue capacity in bytes (headers/acks/nacks).
    pub ctrl_capacity_bytes: u64,
    /// ECN marking ramp: no marks below this occupancy (bytes).
    pub mark_low_bytes: u64,
    /// ECN marking ramp: every packet marked at or above this occupancy.
    pub mark_high_bytes: u64,
    /// Trim data packets to headers instead of dropping when full.
    pub trim: bool,
}

impl QueueConfig {
    /// Leaf/spine switch buffers from §4.1: 17.015 MB, marking thresholds
    /// 33.2 KB and 136.95 KB.
    pub fn datacenter() -> Self {
        QueueConfig {
            capacity_bytes: 17_015_000,
            ctrl_capacity_bytes: 2_000_000,
            mark_low_bytes: 33_200,
            mark_high_bytes: 136_950,
            trim: true,
        }
    }

    /// Backbone router buffers from §4.1: 49.8 MB, thresholds 9.96 MB and
    /// 39.84 MB.
    pub fn backbone() -> Self {
        QueueConfig {
            capacity_bytes: 49_800_000,
            ctrl_capacity_bytes: 4_000_000,
            mark_low_bytes: 9_960_000,
            mark_high_bytes: 39_840_000,
            trim: true,
        }
    }

    /// Same as [`QueueConfig::datacenter`] but with trimming disabled
    /// (drop-tail): the `no_trim` ablation.
    pub fn datacenter_no_trim() -> Self {
        QueueConfig {
            trim: false,
            ..Self::datacenter()
        }
    }

    /// Host NIC egress queue: deep (backed by host memory, so a 1-BDP
    /// first-window burst queues rather than drops), no ECN marking (hosts
    /// do not mark their own qdisc in the §4.1 model), no trimming.
    pub fn host() -> Self {
        const GB: u64 = 1_000_000_000;
        QueueConfig {
            capacity_bytes: GB,
            ctrl_capacity_bytes: 64_000_000,
            mark_low_bytes: GB,
            mark_high_bytes: GB,
            trim: false,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.mark_low_bytes > self.mark_high_bytes {
            return Err(format!(
                "mark_low ({}) > mark_high ({})",
                self.mark_low_bytes, self.mark_high_bytes
            ));
        }
        if self.capacity_bytes == 0 {
            return Err("zero data capacity".into());
        }
        Ok(())
    }
}

/// What happened to a packet offered to [`PortQueue::enqueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Queued intact (possibly ECN-marked).
    Queued,
    /// Data queue full; payload trimmed, header queued on the control queue.
    Trimmed,
    /// Dropped (data queue full without trimming, or control queue full).
    Dropped,
}

/// Per-queue counters, exposed through the simulator's metrics.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct QueueStats {
    pub enqueued_pkts: u64,
    pub dequeued_pkts: u64,
    pub marked_pkts: u64,
    pub trimmed_pkts: u64,
    pub dropped_pkts: u64,
    pub max_data_bytes: u64,
}

/// A two-class output queue (strict-priority control + ECN/trimming data).
#[derive(Debug, Clone)]
pub struct PortQueue {
    config: QueueConfig,
    data: VecDeque<Packet>,
    ctrl: VecDeque<Packet>,
    data_bytes: u64,
    ctrl_bytes: u64,
    stats: QueueStats,
}

impl PortQueue {
    /// Creates an empty queue.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: QueueConfig) -> Self {
        config.validate().expect("invalid queue config");
        PortQueue {
            config,
            data: VecDeque::new(),
            ctrl: VecDeque::new(),
            data_bytes: 0,
            ctrl_bytes: 0,
            stats: QueueStats::default(),
        }
    }

    /// Bytes currently held in the data queue.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Bytes currently held in the control queue.
    pub fn ctrl_bytes(&self) -> u64 {
        self.ctrl_bytes
    }

    /// Total queued bytes across both classes.
    pub fn total_bytes(&self) -> u64 {
        self.data_bytes + self.ctrl_bytes
    }

    /// Total queued packets across both classes.
    pub fn len(&self) -> usize {
        self.data.len() + self.ctrl.len()
    }

    /// True when both classes are empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.ctrl.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }

    /// Cross-checks the queue's internal accounting (for the invariant
    /// auditor): tracked byte counters must match the queued packets, each
    /// class must hold only its own packets, and the enqueue/dequeue
    /// counters must agree with the current length. (Capacity bounds are
    /// checked by the simulator against [`PortQueue::config`], as a
    /// separate violation class.) O(len), so callers should only invoke it
    /// at audit checkpoints.
    pub fn check_invariants(&self) -> Result<(), String> {
        let data_sum: u64 = self.data.iter().map(|p| p.size).sum();
        let ctrl_sum: u64 = self.ctrl.iter().map(|p| p.size).sum();
        if data_sum != self.data_bytes {
            return Err(format!(
                "data byte counter {} != queued data bytes {data_sum}",
                self.data_bytes
            ));
        }
        if ctrl_sum != self.ctrl_bytes {
            return Err(format!(
                "ctrl byte counter {} != queued ctrl bytes {ctrl_sum}",
                self.ctrl_bytes
            ));
        }
        if let Some(p) = self.data.iter().find(|p| p.is_control()) {
            return Err(format!(
                "control packet {:?} seq {} in the data queue",
                p.kind, p.seq
            ));
        }
        if let Some(p) = self.ctrl.iter().find(|p| !p.is_control()) {
            return Err(format!(
                "data packet {:?} seq {} in the control queue",
                p.kind, p.seq
            ));
        }
        let net = self
            .stats
            .enqueued_pkts
            .checked_sub(self.stats.dequeued_pkts)
            .ok_or_else(|| {
                format!(
                    "dequeued {} exceeds enqueued {}",
                    self.stats.dequeued_pkts, self.stats.enqueued_pkts
                )
            })?;
        if net != self.len() as u64 {
            return Err(format!(
                "enqueued - dequeued = {net} but {} packets are queued",
                self.len()
            ));
        }
        Ok(())
    }

    /// ECN mark probability at occupancy `qlen` (bytes): 0 below the low
    /// threshold, 1 at or above the high threshold, linear ramp between.
    fn mark_probability(&self, qlen: u64) -> f64 {
        let lo = self.config.mark_low_bytes;
        let hi = self.config.mark_high_bytes;
        if qlen < lo {
            0.0
        } else if qlen >= hi || hi == lo {
            1.0
        } else {
            (qlen - lo) as f64 / (hi - lo) as f64
        }
    }

    fn enqueue_ctrl(&mut self, pkt: Packet) -> EnqueueOutcome {
        if self.ctrl_bytes + pkt.size > self.config.ctrl_capacity_bytes {
            self.stats.dropped_pkts += 1;
            return EnqueueOutcome::Dropped;
        }
        self.ctrl_bytes += pkt.size;
        self.ctrl.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        EnqueueOutcome::Queued
    }

    /// Offers a packet to the queue. Control packets (acks, nacks, trimmed
    /// headers) go to the strict-priority queue; data packets go to the data
    /// queue with ECN marking, and are trimmed or dropped when it is full.
    pub fn enqueue(&mut self, mut pkt: Packet, rng: &mut SplitMix64) -> EnqueueOutcome {
        if pkt.is_control() {
            return self.enqueue_ctrl(pkt);
        }
        if self.data_bytes + pkt.size > self.config.capacity_bytes {
            if self.config.trim {
                pkt.trim();
                self.stats.trimmed_pkts += 1;
                return match self.enqueue_ctrl(pkt) {
                    EnqueueOutcome::Queued => EnqueueOutcome::Trimmed,
                    other => other,
                };
            }
            self.stats.dropped_pkts += 1;
            return EnqueueOutcome::Dropped;
        }
        let p = self.mark_probability(self.data_bytes);
        if p > 0.0 && rng.next_f64() < p {
            pkt.ecn = crate::packet::Ecn::Ce;
            self.stats.marked_pkts += 1;
        }
        self.data_bytes += pkt.size;
        self.data.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        self.stats.max_data_bytes = self.stats.max_data_bytes.max(self.data_bytes);
        EnqueueOutcome::Queued
    }

    /// Removes the next packet to transmit: control queue first (strict
    /// priority), then data.
    pub fn dequeue(&mut self) -> Option<Packet> {
        if let Some(p) = self.ctrl.pop_front() {
            self.ctrl_bytes -= p.size;
            self.stats.dequeued_pkts += 1;
            return Some(p);
        }
        let p = self.data.pop_front()?;
        self.data_bytes -= p.size;
        self.stats.dequeued_pkts += 1;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, FlowId, HostId, Packet, PacketKind, DATA_PKT_SIZE, HEADER_SIZE};

    fn data_pkt(seq: u64) -> Packet {
        Packet::data(FlowId(0), seq, HostId(0), HostId(1), 0)
    }

    fn small_config(trim: bool) -> QueueConfig {
        QueueConfig {
            capacity_bytes: 3 * DATA_PKT_SIZE,
            ctrl_capacity_bytes: 4 * HEADER_SIZE,
            mark_low_bytes: DATA_PKT_SIZE,
            mark_high_bytes: 2 * DATA_PKT_SIZE,
            trim,
        }
    }

    #[test]
    fn fifo_order_within_data_class() {
        let mut q = PortQueue::new(small_config(true));
        let mut rng = SplitMix64::new(1);
        for seq in 0..3 {
            assert_eq!(q.enqueue(data_pkt(seq), &mut rng), EnqueueOutcome::Queued);
        }
        for seq in 0..3 {
            assert_eq!(q.dequeue().unwrap().seq, seq);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn control_has_strict_priority() {
        let mut q = PortQueue::new(small_config(true));
        let mut rng = SplitMix64::new(1);
        q.enqueue(data_pkt(0), &mut rng);
        let ack = Packet::ack_for(&data_pkt(9), HostId(1));
        q.enqueue(ack, &mut rng);
        assert_eq!(q.dequeue().unwrap().kind, PacketKind::Ack);
        assert_eq!(q.dequeue().unwrap().kind, PacketKind::Data);
    }

    #[test]
    fn trims_when_full() {
        let mut q = PortQueue::new(small_config(true));
        let mut rng = SplitMix64::new(1);
        for seq in 0..3 {
            assert_eq!(q.enqueue(data_pkt(seq), &mut rng), EnqueueOutcome::Queued);
        }
        assert_eq!(q.enqueue(data_pkt(3), &mut rng), EnqueueOutcome::Trimmed);
        assert_eq!(q.stats().trimmed_pkts, 1);
        // The trimmed header jumps the data queue.
        let first = q.dequeue().unwrap();
        assert!(first.trimmed);
        assert_eq!(first.seq, 3);
        assert_eq!(first.size, HEADER_SIZE);
    }

    #[test]
    fn drops_when_full_without_trim() {
        let mut q = PortQueue::new(small_config(false));
        let mut rng = SplitMix64::new(1);
        for seq in 0..3 {
            q.enqueue(data_pkt(seq), &mut rng);
        }
        assert_eq!(q.enqueue(data_pkt(3), &mut rng), EnqueueOutcome::Dropped);
        assert_eq!(q.stats().dropped_pkts, 1);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn ctrl_overflow_drops_even_with_trim() {
        let mut q = PortQueue::new(small_config(true));
        let mut rng = SplitMix64::new(1);
        // Fill data queue.
        for seq in 0..3 {
            q.enqueue(data_pkt(seq), &mut rng);
        }
        // Ctrl capacity = 4 headers; the 5th trimmed packet must drop.
        for seq in 3..7 {
            assert_eq!(q.enqueue(data_pkt(seq), &mut rng), EnqueueOutcome::Trimmed);
        }
        assert_eq!(q.enqueue(data_pkt(7), &mut rng), EnqueueOutcome::Dropped);
    }

    #[test]
    fn byte_accounting_balances() {
        let mut q = PortQueue::new(small_config(true));
        let mut rng = SplitMix64::new(2);
        for seq in 0..6 {
            q.enqueue(data_pkt(seq), &mut rng);
        }
        let mut dequeued = 0;
        while let Some(p) = q.dequeue() {
            dequeued += p.size;
        }
        assert_eq!(q.total_bytes(), 0);
        // 3 full + 3 trimmed.
        assert_eq!(dequeued, 3 * DATA_PKT_SIZE + 3 * HEADER_SIZE);
    }

    #[test]
    fn no_marks_below_low_threshold() {
        let mut q = PortQueue::new(small_config(true));
        let mut rng = SplitMix64::new(3);
        // First packet sees an empty queue -> below low threshold.
        q.enqueue(data_pkt(0), &mut rng);
        assert_eq!(q.stats().marked_pkts, 0);
        let p = q.dequeue().unwrap();
        assert_eq!(p.ecn, Ecn::Ect);
    }

    #[test]
    fn always_marks_above_high_threshold() {
        let cfg = QueueConfig {
            capacity_bytes: 100 * DATA_PKT_SIZE,
            ctrl_capacity_bytes: 10 * HEADER_SIZE,
            mark_low_bytes: 0,
            mark_high_bytes: 0, // degenerate ramp: always mark
            trim: true,
        };
        let mut q = PortQueue::new(cfg);
        let mut rng = SplitMix64::new(4);
        for seq in 0..10 {
            q.enqueue(data_pkt(seq), &mut rng);
        }
        assert_eq!(q.stats().marked_pkts, 10);
    }

    #[test]
    fn ramp_marks_roughly_half_at_midpoint() {
        let cfg = QueueConfig {
            capacity_bytes: 10_000 * DATA_PKT_SIZE,
            ctrl_capacity_bytes: 10 * HEADER_SIZE,
            mark_low_bytes: 0,
            mark_high_bytes: 2 * DATA_PKT_SIZE * 5000,
            trim: true,
        };
        // Hold occupancy near the midpoint of the ramp: fill 5000 packets,
        // then alternate enqueue/dequeue.
        let mut q = PortQueue::new(cfg);
        let mut rng = SplitMix64::new(5);
        for seq in 0..5000 {
            q.enqueue(data_pkt(seq), &mut rng);
        }
        let before = q.stats().marked_pkts;
        for seq in 5000..10_000 {
            q.enqueue(data_pkt(seq), &mut rng);
            q.dequeue();
        }
        let marked = q.stats().marked_pkts - before;
        // At ~50% occupancy the ramp marks ~50% of arrivals.
        assert!((1500..3500).contains(&marked), "marked={marked}");
    }

    #[test]
    fn max_occupancy_tracked() {
        let mut q = PortQueue::new(small_config(true));
        let mut rng = SplitMix64::new(6);
        q.enqueue(data_pkt(0), &mut rng);
        q.enqueue(data_pkt(1), &mut rng);
        q.dequeue();
        assert_eq!(q.stats().max_data_bytes, 2 * DATA_PKT_SIZE);
    }

    #[test]
    #[should_panic(expected = "invalid queue config")]
    fn invalid_config_panics() {
        PortQueue::new(QueueConfig {
            capacity_bytes: 10,
            ctrl_capacity_bytes: 10,
            mark_low_bytes: 100,
            mark_high_bytes: 50,
            trim: true,
        });
    }

    #[test]
    fn paper_configs_are_valid() {
        assert!(QueueConfig::datacenter().validate().is_ok());
        assert!(QueueConfig::backbone().validate().is_ok());
        assert!(QueueConfig::datacenter_no_trim().validate().is_ok());
        assert!(!QueueConfig::datacenter_no_trim().trim);
    }
}
