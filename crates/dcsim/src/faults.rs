//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] is a declarative schedule of infrastructure faults —
//! link down/up windows, per-port random loss or corruption, and agent
//! (proxy-host) crashes — that the simulator turns into ordinary events on
//! its queue via [`crate::sim::Simulator::install_faults`]. Faults are part
//! of the scenario, not the protocol: an empty plan leaves the simulator
//! bit-identical to a run without fault support, and all randomness (port
//! impairment draws) comes from a dedicated RNG stream derived from the
//! simulation seed, so faulty runs replay exactly.
//!
//! Semantics:
//! - **Link down**: while a port is down it blackholes every packet offered
//!   to it (counted as [`Counter::PacketsLostToFault`]) and stops draining
//!   its queue; packets already queued survive and drain after link-up.
//! - **Impairment**: each packet offered to the port is independently lost
//!   with `loss` probability or corrupted with `corrupt` probability.
//!   Corruption trims data packets to headers (the NDP-style loss signal)
//!   and destroys control packets outright.
//! - **Agent crash**: the agent's handlers stop running — packets addressed
//!   to it are destroyed, its timers go dead — and
//!   [`crate::agent::Agent::on_crash`] lets it drop in-flight soft state.
//!   An optional restore time models a process restart.
//!
//! [`Counter::PacketsLostToFault`]: crate::agent::Counter::PacketsLostToFault

use crate::packet::{AgentId, PortId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A link outage on one port: down at `down_at`, optionally back up at
/// `up_at` (`None` = down for the rest of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkWindow {
    /// The affected output port.
    pub port: PortId,
    /// When the port stops transmitting.
    pub down_at: SimTime,
    /// When it resumes (`None`: never).
    pub up_at: Option<SimTime>,
}

/// Random per-packet impairment of one port, active for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortImpairment {
    /// The affected output port.
    pub port: PortId,
    /// Probability in `[0, 1]` that an offered packet is destroyed.
    pub loss: f64,
    /// Probability in `[0, 1]` that an offered packet is corrupted
    /// (data → trimmed header, control → destroyed).
    pub corrupt: f64,
}

/// A scheduled agent crash, optionally followed by a restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentCrash {
    /// The agent that crashes (e.g. a proxy).
    pub agent: AgentId,
    /// Crash time.
    pub at: SimTime,
    /// Restart time (`None`: stays dead).
    pub restore_at: Option<SimTime>,
}

/// A scheduled control-plane shard crash, optionally followed by a
/// restart. Shards are a concept of the orchestration layer (the `core`
/// crate), not of the packet simulator: [`crate::sim::Simulator::install_faults`]
/// ignores these entries, and the control-plane harness consumes them to
/// drive its own clock. They live in the [`FaultPlan`] so one plan (and one
/// fuzzer repro file) can describe a whole incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardCrash {
    /// The orchestrator shard that crashes.
    pub shard: u32,
    /// Crash time.
    pub at: SimTime,
    /// Restart time (`None`: stays dead).
    pub restore_at: Option<SimTime>,
}

/// Why a fault plan was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A probability was outside `[0, 1]` (or NaN).
    InvalidProbability { port: PortId, value: f64 },
    /// Combined loss + corruption probability exceeds 1 on one port.
    CombinedProbabilityTooHigh { port: PortId, total: f64 },
    /// A link window ends at or before it starts.
    EmptyLinkWindow {
        port: PortId,
        down_at: SimTime,
        up_at: SimTime,
    },
    /// A crash restore time is at or before the crash time.
    EmptyCrashWindow {
        agent: AgentId,
        at: SimTime,
        restore_at: SimTime,
    },
    /// A shard-crash restore time is at or before the crash time.
    EmptyShardCrashWindow {
        shard: u32,
        at: SimTime,
        restore_at: SimTime,
    },
    /// Two link windows on the same port overlap in time (a permanent
    /// outage — `up_at: None` — overlaps every later window on its port).
    /// Overlapping windows would interleave their down/up transitions and
    /// leave the port in a state neither window describes.
    OverlappingLinkWindows {
        port: PortId,
        first_down_at: SimTime,
        second_down_at: SimTime,
    },
    /// The plan names a port the topology does not have.
    UnknownPort { port: PortId, ports: usize },
    /// The plan names an agent the simulator does not have.
    UnknownAgent { agent: AgentId, agents: usize },
    /// A fault is scheduled before the simulator's current time.
    InThePast { at: SimTime, now: SimTime },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidProbability { port, value } => {
                write!(
                    f,
                    "impairment probability {value} on {port} is outside [0, 1]"
                )
            }
            FaultError::CombinedProbabilityTooHigh { port, total } => {
                write!(
                    f,
                    "loss + corruption probability {total} on {port} exceeds 1"
                )
            }
            FaultError::EmptyLinkWindow {
                port,
                down_at,
                up_at,
            } => {
                write!(
                    f,
                    "link window on {port} is empty: down at {down_at}, up at {up_at}"
                )
            }
            FaultError::EmptyCrashWindow {
                agent,
                at,
                restore_at,
            } => {
                write!(
                    f,
                    "crash window for {agent} is empty: crash at {at}, restore at {restore_at}"
                )
            }
            FaultError::EmptyShardCrashWindow {
                shard,
                at,
                restore_at,
            } => {
                write!(
                    f,
                    "shard-crash window for shard {shard} is empty: \
                     crash at {at}, restore at {restore_at}"
                )
            }
            FaultError::OverlappingLinkWindows {
                port,
                first_down_at,
                second_down_at,
            } => {
                write!(
                    f,
                    "link windows on {port} overlap: window starting at {first_down_at} \
                     is still down when the window starting at {second_down_at} begins"
                )
            }
            FaultError::UnknownPort { port, ports } => {
                write!(f, "{port} does not exist (topology has {ports} ports)")
            }
            FaultError::UnknownAgent { agent, agents } => {
                write!(f, "{agent} does not exist (simulator has {agents} agents)")
            }
            FaultError::InThePast { at, now } => {
                write!(
                    f,
                    "fault scheduled at {at} but the simulator is already at {now}"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A declarative schedule of infrastructure faults.
///
/// Build one with the chainable constructors, then hand it to
/// [`crate::sim::Simulator::install_faults`]:
///
/// ```
/// use dcsim::prelude::*;
///
/// let plan = FaultPlan::new()
///     .link_down_window(
///         PortId(3),
///         SimTime::ZERO + SimDuration::from_millis(1),
///         SimTime::ZERO + SimDuration::from_millis(2),
///     )
///     .port_loss(PortId(7), 0.01)
///     .crash_agent(AgentId(2), SimTime::ZERO + SimDuration::from_millis(5));
/// assert!(plan.validate().is_ok());
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Link outage windows.
    pub link_windows: Vec<LinkWindow>,
    /// Per-port random impairments.
    pub impairments: Vec<PortImpairment>,
    /// Agent crashes.
    pub crashes: Vec<AgentCrash>,
    /// Control-plane shard crashes (ignored by the packet simulator;
    /// consumed by the orchestration layer). Defaults to empty so plans
    /// serialized before this field existed still deserialize.
    #[serde(default)]
    pub shard_crashes: Vec<ShardCrash>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.link_windows.is_empty()
            && self.impairments.is_empty()
            && self.crashes.is_empty()
            && self.shard_crashes.is_empty()
    }

    /// Takes `port` down at `at` **for the rest of the run** — a permanent
    /// outage. No `LinkUp` is ever scheduled: the port blackholes
    /// everything offered to it from `at` on, and packets queued behind it
    /// never drain. Because the outage extends to the end of the run,
    /// [`FaultPlan::validate`] rejects any later window on the same port as
    /// overlapping.
    pub fn link_down(mut self, port: PortId, at: SimTime) -> Self {
        self.link_windows.push(LinkWindow {
            port,
            down_at: at,
            up_at: None,
        });
        self
    }

    /// Takes `port` down at `down_at` and back up at `up_at` (a link flap).
    pub fn link_down_window(mut self, port: PortId, down_at: SimTime, up_at: SimTime) -> Self {
        self.link_windows.push(LinkWindow {
            port,
            down_at,
            up_at: Some(up_at),
        });
        self
    }

    /// Destroys each packet offered to `port` with probability `loss`.
    pub fn port_loss(mut self, port: PortId, loss: f64) -> Self {
        self.impairments.push(PortImpairment {
            port,
            loss,
            corrupt: 0.0,
        });
        self
    }

    /// Corrupts each packet offered to `port` with probability `corrupt`
    /// (data packets are trimmed to headers, control packets destroyed).
    pub fn port_corruption(mut self, port: PortId, corrupt: f64) -> Self {
        self.impairments.push(PortImpairment {
            port,
            loss: 0.0,
            corrupt,
        });
        self
    }

    /// Crashes `agent` at `at` for the rest of the run.
    pub fn crash_agent(mut self, agent: AgentId, at: SimTime) -> Self {
        self.crashes.push(AgentCrash {
            agent,
            at,
            restore_at: None,
        });
        self
    }

    /// Crashes `agent` at `at` and restarts it at `restore_at`.
    pub fn crash_agent_window(mut self, agent: AgentId, at: SimTime, restore_at: SimTime) -> Self {
        self.crashes.push(AgentCrash {
            agent,
            at,
            restore_at: Some(restore_at),
        });
        self
    }

    /// Crashes orchestrator shard `shard` at `at` for the rest of the run.
    pub fn crash_shard(mut self, shard: u32, at: SimTime) -> Self {
        self.shard_crashes.push(ShardCrash {
            shard,
            at,
            restore_at: None,
        });
        self
    }

    /// Crashes orchestrator shard `shard` at `at`, restoring it at
    /// `restore_at`.
    pub fn crash_shard_window(mut self, shard: u32, at: SimTime, restore_at: SimTime) -> Self {
        self.shard_crashes.push(ShardCrash {
            shard,
            at,
            restore_at: Some(restore_at),
        });
        self
    }

    /// Checks internal consistency (probability ranges, window ordering,
    /// no overlapping link windows per port). Index bounds against a
    /// concrete topology are checked by
    /// [`crate::sim::Simulator::install_faults`].
    ///
    /// Link windows on the same port must be disjoint; a window may begin
    /// exactly when the previous one ends (`down_at == up_at` is a
    /// back-to-back flap, not an overlap). A permanent outage
    /// (`up_at: None`) covers the rest of the run, so any later window on
    /// that port is an overlap.
    pub fn validate(&self) -> Result<(), FaultError> {
        for w in &self.link_windows {
            if let Some(up) = w.up_at {
                if up <= w.down_at {
                    return Err(FaultError::EmptyLinkWindow {
                        port: w.port,
                        down_at: w.down_at,
                        up_at: up,
                    });
                }
            }
        }
        // Overlap check: sort (port, window) pairs so windows on the same
        // port become adjacent, then compare neighbors.
        let mut windows: Vec<&LinkWindow> = self.link_windows.iter().collect();
        windows.sort_by_key(|w| (w.port.index(), w.down_at));
        for pair in windows.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            if prev.port != next.port {
                continue;
            }
            let overlaps = match prev.up_at {
                None => true, // permanent outage: down until the end of the run
                Some(up) => next.down_at < up,
            };
            if overlaps {
                return Err(FaultError::OverlappingLinkWindows {
                    port: prev.port,
                    first_down_at: prev.down_at,
                    second_down_at: next.down_at,
                });
            }
        }
        for imp in &self.impairments {
            for p in [imp.loss, imp.corrupt] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(FaultError::InvalidProbability {
                        port: imp.port,
                        value: p,
                    });
                }
            }
            let total = imp.loss + imp.corrupt;
            if total > 1.0 {
                return Err(FaultError::CombinedProbabilityTooHigh {
                    port: imp.port,
                    total,
                });
            }
        }
        for c in &self.crashes {
            if let Some(r) = c.restore_at {
                if r <= c.at {
                    return Err(FaultError::EmptyCrashWindow {
                        agent: c.agent,
                        at: c.at,
                        restore_at: r,
                    });
                }
            }
        }
        for c in &self.shard_crashes {
            if let Some(r) = c.restore_at {
                if r <= c.at {
                    return Err(FaultError::EmptyShardCrashWindow {
                        shard: c.shard,
                        at: c.at,
                        restore_at: r,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn builder_accumulates_faults() {
        let plan = FaultPlan::new()
            .link_down_window(PortId(1), t(10), t(20))
            .link_down(PortId(2), t(30))
            .port_loss(PortId(3), 0.05)
            .port_corruption(PortId(3), 0.01)
            .crash_agent(AgentId(0), t(40))
            .crash_agent_window(AgentId(1), t(50), t(60));
        assert!(!plan.is_empty());
        assert_eq!(plan.link_windows.len(), 2);
        assert_eq!(plan.impairments.len(), 2);
        assert_eq!(plan.crashes.len(), 2);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn rejects_probability_out_of_range() {
        let plan = FaultPlan::new().port_loss(PortId(0), 1.5);
        assert!(matches!(
            plan.validate(),
            Err(FaultError::InvalidProbability {
                port: PortId(0),
                ..
            })
        ));
        let nan = FaultPlan::new().port_corruption(PortId(1), f64::NAN);
        assert!(nan.validate().is_err());
    }

    #[test]
    fn rejects_combined_probability_above_one() {
        let plan = FaultPlan {
            impairments: vec![PortImpairment {
                port: PortId(0),
                loss: 0.7,
                corrupt: 0.7,
            }],
            ..Default::default()
        };
        assert!(matches!(
            plan.validate(),
            Err(FaultError::CombinedProbabilityTooHigh { .. })
        ));
    }

    #[test]
    fn rejects_inverted_windows() {
        let flap = FaultPlan::new().link_down_window(PortId(0), t(20), t(10));
        assert!(matches!(
            flap.validate(),
            Err(FaultError::EmptyLinkWindow { .. })
        ));
        let crash = FaultPlan::new().crash_agent_window(AgentId(0), t(20), t(20));
        assert!(matches!(
            crash.validate(),
            Err(FaultError::EmptyCrashWindow { .. })
        ));
    }

    #[test]
    fn rejects_overlapping_link_windows_on_one_port() {
        // Plain overlap: [10, 30) and [20, 40).
        let plan = FaultPlan::new()
            .link_down_window(PortId(5), t(10), t(30))
            .link_down_window(PortId(5), t(20), t(40));
        assert_eq!(
            plan.validate(),
            Err(FaultError::OverlappingLinkWindows {
                port: PortId(5),
                first_down_at: t(10),
                second_down_at: t(20),
            })
        );
        // Containment counts as overlap, regardless of builder order.
        let contained = FaultPlan::new()
            .link_down_window(PortId(5), t(20), t(25))
            .link_down_window(PortId(5), t(10), t(40));
        assert!(matches!(
            contained.validate(),
            Err(FaultError::OverlappingLinkWindows {
                port: PortId(5),
                ..
            })
        ));
    }

    #[test]
    fn permanent_outage_overlaps_any_later_window() {
        let plan = FaultPlan::new()
            .link_down(PortId(2), t(10))
            .link_down_window(PortId(2), t(500), t(600));
        assert!(matches!(
            plan.validate(),
            Err(FaultError::OverlappingLinkWindows {
                port: PortId(2),
                ..
            })
        ));
    }

    #[test]
    fn disjoint_and_back_to_back_windows_are_accepted() {
        // Disjoint windows on one port, a back-to-back flap (up == next
        // down), and a window on a different port are all fine.
        let plan = FaultPlan::new()
            .link_down_window(PortId(1), t(10), t(20))
            .link_down_window(PortId(1), t(20), t(30))
            .link_down_window(PortId(1), t(50), t(60))
            .link_down(PortId(2), t(5));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn errors_render_useful_messages() {
        let e = FaultError::UnknownPort {
            port: PortId(9),
            ports: 4,
        };
        assert!(e.to_string().contains("PortId(9)"));
        assert!(e.to_string().contains("4 ports"));
    }
}
