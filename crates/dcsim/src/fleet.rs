//! Conservative parallel discrete-event execution over topology shards.
//!
//! A [`FleetSim`] splits one simulation across several [`Simulator`] shards
//! — by default one per datacenter, with backbone routers living in shard 0
//! — and runs them in lockstep windows of width equal to the **lookahead**:
//! the minimum propagation latency of any link that crosses a shard
//! boundary. A packet handed to a cross-shard link at time `t` cannot
//! arrive before `t + lookahead`, so every event a shard processes inside
//! the window `[W, W + lookahead)` is causally independent of the other
//! shards' events in the same window. That is the classic conservative
//! (CMB-style) synchronization argument; no rollback is ever needed.
//!
//! ## Determinism
//!
//! * Each shard owns a private RNG seeded from the fleet seed and the
//!   shard index, and every spray decision for a node is made by the shard
//!   that owns the node (the express path stops at shard boundaries before
//!   picking a next hop). Shard-local event order is therefore independent
//!   of wall-clock thread scheduling.
//! * Cross-shard packets are exchanged between windows on the coordinator
//!   thread, iterating shards in index order and each outbox in emission
//!   order, so heap tie-breaking sequence numbers are reproducible.
//! * Consequently `threads = 1` and `threads = N` produce byte-identical
//!   results, and a single-shard fleet is exactly a plain [`Simulator`]
//!   run (same seed, same events, same completions).
//! * Changing the shard **count** changes which RNG serves which node, so
//!   results across different partitions are statistically equivalent, not
//!   bit-equal — same as changing the seed. See DESIGN.md §12.
//!
//! ## Accounting
//!
//! Exports and imports are tracked in each shard's [`PacketLedger`]
//! (`created + imported == terminal + in_flight + exported`), so packet
//! conservation holds per shard even while packets are in transit between
//! shards; fleet-wide, total exports equal total imports once idle.
//!
//! [`PacketLedger`]: crate::audit::PacketLedger

use std::sync::Arc;

use crate::audit::InvariantViolation;
use crate::fidelity::{ExpressStats, FidelityConfig};
use crate::flows::{cc_for_path, FlowSpec};
use crate::packet::{FlowId, NodeId, PortId};
use crate::protocol::{packets_for_bytes, DctcpSender, Receiver};
use crate::sim::{Simulator, StopReason};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// Outcome of a fleet run: the per-shard [`crate::sim::RunReport`]s folded
/// together with exchange statistics.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Why the fleet stopped ([`StopReason::Idle`] means every shard
    /// drained and no packets were left in transit between shards).
    pub stop: StopReason,
    /// Latest simulated time reached by any shard.
    pub end_time: SimTime,
    /// Total events processed across all shards and windows.
    pub events: u64,
    /// Number of synchronization windows executed.
    pub windows: u64,
    /// Packets exchanged across shard boundaries.
    pub exchanged: u64,
    /// Aggregated express-path statistics (zero when hybrid fidelity is
    /// off). `events + express.saved_events` is the effective packet-event
    /// rate numerator used by the fleet bench.
    pub express: ExpressStats,
    /// Invariant violations collected by any shard (empty unless a
    /// collect-mode audit was enabled on the shards).
    pub violations: Vec<InvariantViolation>,
}

/// A set of [`Simulator`] shards covering one topology, run in conservative
/// lockstep windows. See the module docs for the synchronization and
/// determinism arguments.
pub struct FleetSim {
    shards: Vec<Simulator>,
    shard_of: Arc<Vec<u32>>,
    lookahead: SimDuration,
    threads: usize,
}

/// Derives shard `k`'s RNG seed. Shard 0 keeps the fleet seed verbatim so
/// a single-shard fleet is bit-identical to a plain [`Simulator`].
fn shard_seed(seed: u64, shard: u32) -> u64 {
    seed.wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

impl FleetSim {
    /// Partitions `topo` by datacenter (nodes without a DC — backbone
    /// routers — join shard 0) and builds one simulator per shard.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let shard_of = (0..topo.node_count())
            .map(|n| topo.dc_of(NodeId(n as u32)).unwrap_or(0))
            .collect();
        Self::with_partition(topo, seed, shard_of)
    }

    /// Builds a fleet over an explicit node → shard map. Shard ids must be
    /// dense from 0. The lookahead is derived as the minimum latency of
    /// any cross-shard link; with no cross-shard links (a single shard)
    /// an arbitrary 1 ms stride is used, which cannot affect results.
    pub fn with_partition(topo: Topology, seed: u64, shard_of: Vec<u32>) -> Self {
        assert_eq!(
            shard_of.len(),
            topo.node_count(),
            "shard map must cover every node"
        );
        let num_shards = shard_of.iter().copied().max().map_or(1, |m| m + 1);
        let mut lookahead: Option<SimDuration> = None;
        for i in 0..topo.port_count() {
            let p = topo.port(PortId(i as u32));
            if shard_of[p.from.index()] != shard_of[p.to.index()] {
                let l = p.link.latency;
                lookahead = Some(lookahead.map_or(l, |c| if l < c { l } else { c }));
            }
        }
        let lookahead = lookahead.unwrap_or_else(|| SimDuration::from_millis(1));
        assert!(
            lookahead.0 > 0,
            "cross-shard links must have nonzero latency (lookahead would be 0)"
        );
        let shard_of = Arc::new(shard_of);
        let shards = (0..num_shards)
            .map(|k| {
                let mut s = Simulator::new(topo.clone(), shard_seed(seed, k));
                s.set_shard(Arc::clone(&shard_of), k);
                s
            })
            .collect();
        FleetSim {
            shards,
            shard_of,
            lookahead,
            threads: 1,
        }
    }

    /// Number of worker threads for the windowed run (1 = serial). Thread
    /// count never changes results — only wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Number of shards in this fleet.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The synchronization window width.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The shared topology (every shard holds an identical copy).
    pub fn topology(&self) -> &Topology {
        self.shards[0].topology()
    }

    /// Read access to a shard's simulator (metrics, ledger, stats).
    pub fn shard(&self, i: usize) -> &Simulator {
        &self.shards[i]
    }

    /// Enables the hybrid-fidelity engine on every shard.
    pub fn set_fidelity(&mut self, cfg: FidelityConfig) {
        for s in &mut self.shards {
            s.set_fidelity(cfg);
        }
    }

    /// Pins a port permanently hot on every shard (only the owning shard
    /// simulates it, but the map is shared for simplicity).
    pub fn pin_hot_port(&mut self, port: PortId) {
        for s in &mut self.shards {
            s.pin_hot_port(port);
        }
    }

    /// Raises each shard's event-count safety cap.
    pub fn set_event_cap(&mut self, cap: u64) {
        for s in &mut self.shards {
            s.set_event_cap(cap);
        }
    }

    /// Installs a sender/receiver pair for `spec`. Flow ids are allocated
    /// in every shard (so ids agree fleet-wide), but the agents live only
    /// in the shards owning the endpoint hosts.
    pub fn install_flow(&mut self, spec: FlowSpec, start: SimTime) -> FlowId {
        assert_ne!(spec.src, spec.dst, "flow to self");
        let cc = spec
            .cc
            .unwrap_or_else(|| cc_for_path(&self.shards[0], spec.src, spec.dst));
        let packets = packets_for_bytes(spec.bytes);
        let (src_shard, dst_shard) = {
            let topo = self.shards[0].topology();
            (
                self.shard_of[topo.host_node(spec.src).index()] as usize,
                self.shard_of[topo.host_node(spec.dst).index()] as usize,
            )
        };
        let mut flow = None;
        for s in &mut self.shards {
            let f = s.new_flow();
            match flow {
                None => flow = Some(f),
                Some(prev) => assert_eq!(prev, f, "shards disagree on flow ids"),
            }
        }
        let flow = flow.expect("fleet has at least one shard");
        let sender = self.shards[src_shard]
            .add_dctcp_sender(DctcpSender::new(flow, spec.src, spec.dst, packets, cc));
        self.shards[src_shard].bind(flow, spec.src, sender);
        let receiver = self.shards[dst_shard].add_receiver(Receiver::new(flow, spec.dst, packets));
        self.shards[dst_shard].bind(flow, spec.dst, receiver);
        self.shards[src_shard].schedule_start(start, sender);
        flow
    }

    /// Completion time of `flow`, if any shard recorded one (only the
    /// receiver's shard ever does).
    pub fn completion(&self, flow: FlowId) -> Option<SimTime> {
        self.shards
            .iter()
            .find_map(|s| s.metrics().completion(flow))
    }

    /// Runs the fleet until idle, the optional time limit, or a shard's
    /// event cap. Windows advance by the lookahead; windows with no
    /// pending events anywhere are skipped in one step.
    pub fn run(&mut self, limit: Option<SimTime>) -> FleetReport {
        let stride = self.lookahead.0;
        let mut events = 0u64;
        let mut windows = 0u64;
        let mut exchanged = 0u64;
        let mut end_time = SimTime::ZERO;
        let mut violations = Vec::new();
        let stop = loop {
            // Earliest pending event anywhere. Outboxes are always empty
            // here (drained at the bottom of the loop), so an empty fleet
            // queue really means idle.
            let next = self.shards.iter().filter_map(|s| s.next_event_time()).min();
            let Some(next) = next else {
                break StopReason::Idle;
            };
            if let Some(limit) = limit {
                if next > limit {
                    break StopReason::TimeLimit;
                }
            }
            // Skip ahead to the window containing the earliest event, so
            // quiet stretches (e.g. a long backbone RTT) cost one window.
            let window_start = (next.0 / stride) * stride;
            let mut horizon = SimTime(window_start.saturating_add(stride - 1));
            if let Some(limit) = limit {
                if limit < horizon {
                    horizon = limit;
                }
            }
            windows += 1;
            let reports: Vec<_> = if self.threads > 1 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .map(|s| scope.spawn(move || s.run(Some(horizon))))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard thread panicked"))
                        .collect()
                })
            } else {
                self.shards
                    .iter_mut()
                    .map(|s| s.run(Some(horizon)))
                    .collect()
            };
            let mut capped = false;
            for r in reports {
                events += r.events;
                if r.end_time > end_time {
                    end_time = r.end_time;
                }
                violations.extend(r.violations);
                capped |= r.stop == StopReason::EventCap;
            }
            if capped {
                break StopReason::EventCap;
            }
            // Deterministic exchange: shard index order, emission order
            // within each outbox. Every export was stamped at least one
            // lookahead past its emission time, so it lands strictly after
            // `horizon` and never violates the receiving shard's clock.
            for k in 0..self.shards.len() {
                let out = self.shards[k].take_outbox();
                exchanged += out.len() as u64;
                for (at, node, packet) in out {
                    let dst = self.shard_of[node.index()] as usize;
                    debug_assert_ne!(dst, k, "export to own shard");
                    debug_assert!(at > horizon, "export inside its own window");
                    self.shards[dst].import_packet(at, node, packet);
                }
            }
        };
        let mut express = ExpressStats::default();
        for s in &self.shards {
            if let Some(e) = s.fidelity_stats() {
                express.packets += e.packets;
                express.hops += e.hops;
                express.saved_events += e.saved_events;
                express.fallbacks += e.fallbacks;
                express.deferrals += e.deferrals;
            }
        }
        FleetReport {
            stop,
            end_time,
            events,
            windows,
            exchanged,
            express,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::install_flow;
    use crate::packet::HostId;
    use crate::sim::StopReason;
    use crate::topology::{two_dc_leaf_spine, TwoDcParams};

    fn flows(topo: &Topology) -> Vec<(HostId, HostId, u64)> {
        let far = topo.hosts_in_dc(1);
        vec![
            (HostId(0), far[0], 400_000),
            (HostId(1), far[1], 250_000),
            (HostId(2), HostId(3), 120_000),
            (far[2], HostId(0), 90_000),
        ]
    }

    #[test]
    fn single_shard_fleet_matches_plain_simulator_exactly() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let specs = flows(&topo);

        let mut plain = Simulator::new(topo.clone(), 42);
        let handles: Vec<_> = specs
            .iter()
            .map(|&(s, d, b)| install_flow(&mut plain, FlowSpec::new(s, d, b), SimTime::ZERO))
            .collect();
        let plain_report = plain.run(None);
        assert_eq!(plain_report.stop, StopReason::Idle);

        let n = topo.node_count();
        let mut fleet = FleetSim::with_partition(topo, 42, vec![0; n]);
        let flows: Vec<_> = specs
            .iter()
            .map(|&(s, d, b)| fleet.install_flow(FlowSpec::new(s, d, b), SimTime::ZERO))
            .collect();
        let fleet_report = fleet.run(None);
        assert_eq!(fleet_report.stop, StopReason::Idle);

        // Bit-exact: same events, same end time, same completion stamps.
        assert_eq!(fleet_report.events, plain_report.events);
        assert_eq!(fleet_report.end_time, plain_report.end_time);
        assert_eq!(fleet_report.exchanged, 0);
        for (h, f) in handles.iter().zip(&flows) {
            assert_eq!(
                plain.metrics().completion(h.flow),
                fleet.completion(*f),
                "flow {f} completion diverged"
            );
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let run = |threads: usize| {
            let mut fleet = FleetSim::new(topo.clone(), 7);
            assert_eq!(fleet.num_shards(), 2);
            fleet.set_threads(threads);
            let ids: Vec<_> = flows(fleet.topology())
                .iter()
                .map(|&(s, d, b)| fleet.install_flow(FlowSpec::new(s, d, b), SimTime::ZERO))
                .collect();
            let report = fleet.run(None);
            assert_eq!(report.stop, StopReason::Idle);
            assert!(report.exchanged > 0, "inter-DC flows must cross shards");
            let fcts: Vec<_> = ids.iter().map(|f| fleet.completion(*f)).collect();
            (report.events, report.end_time, report.exchanged, fcts)
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn fleet_ledgers_balance_exports_against_imports() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut fleet = FleetSim::new(topo, 11);
        let ids: Vec<_> = flows(fleet.topology())
            .iter()
            .map(|&(s, d, b)| fleet.install_flow(FlowSpec::new(s, d, b), SimTime::ZERO))
            .collect();
        let report = fleet.run(None);
        assert_eq!(report.stop, StopReason::Idle);
        for f in &ids {
            assert!(fleet.completion(*f).is_some(), "flow {f} never completed");
        }
        let (mut exported, mut imported) = (0, 0);
        for k in 0..fleet.num_shards() {
            exported += fleet.shard(k).ledger().exported;
            imported += fleet.shard(k).ledger().imported;
        }
        assert_eq!(exported, imported, "packets lost in transit between shards");
        assert_eq!(exported, report.exchanged);
    }

    #[test]
    fn fleet_respects_time_limits() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut fleet = FleetSim::new(topo, 3);
        let far = fleet.topology().hosts_in_dc(1)[0];
        fleet.install_flow(FlowSpec::new(HostId(0), far, 10_000_000), SimTime::ZERO);
        let early = fleet.run(Some(SimTime(1_000_000))); // 1 µs: nothing crosses yet
        assert_eq!(early.stop, StopReason::TimeLimit);
        let done = fleet.run(None);
        assert_eq!(done.stop, StopReason::Idle);
    }
}
