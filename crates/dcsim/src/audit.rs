//! Runtime invariant auditing: packet conservation, queue sanity, timer
//! accounting, and flow liveness.
//!
//! The simulator keeps a [`PacketLedger`] of every packet from the moment an
//! agent emits it ([`crate::agent::Effect::Send`]) to its terminal
//! disposition: delivered to a host agent, destroyed on arrival at a crashed
//! agent, blackholed/corrupted/lost by an injected fault, or dropped by a
//! full queue. Trimming is *not* terminal — the header keeps traveling — so
//! it is tracked separately as an informational counter.
//!
//! With an [`AuditConfig`] installed ([`crate::sim::Simulator::set_audit`])
//! the simulator cross-checks the ledger against the actual simulation state
//! at the end of every `run()` call (and optionally every N processed
//! events):
//!
//! * **Conservation** — `created + imported == delivered + lost_to_crash +
//!   lost_to_fault + dropped_queue + exported + in_flight`, where in-flight
//!   packets are counted by summing port-queue occupancy and walking the
//!   event slab for pending `Arrival`/`Inject` events. The
//!   `exported`/`imported` terms account for packets crossing shard
//!   boundaries in fleet runs (zero otherwise), so the balance holds on
//!   both sides of a fidelity or shard boundary mid-flight.
//! * **Queue sanity** — per-port byte counters match the queued packets,
//!   occupancy never exceeds the configured capacities, and
//!   `enqueued - dequeued == len`.
//! * **Timer accounting** — `armed == fired + canceled + pending`, and the
//!   slot/generation protocol never discards a stale pop
//!   (`discarded_stale == 0`), extending the PR 3 churn counters.
//! * **Flow liveness** (opt-in via [`AuditConfig::with_liveness`]) — a
//!   watchdog flags any bound, started, uncrashed, incomplete flow with no
//!   packet activity for the configured sim-time horizon; when the simulator
//!   goes idle, such flows are flagged regardless of horizon because no
//!   pending event can ever unwedge them.
//!
//! Checks never consult the RNG and never mutate simulation state, so a run
//! is bit-identical with auditing on, off, or at any checkpoint cadence —
//! only the failure behavior differs. [`AuditMode::Strict`] panics with a
//! structured report (tests, fuzzing); [`AuditMode::Collect`] surfaces the
//! violations in [`crate::sim::RunReport::violations`] (the chaos fuzzer
//! uses this to keep searching after a hit).

use crate::packet::{FlowId, PortId};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What to do when an invariant check fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditMode {
    /// Panic immediately with a structured violation report.
    Strict,
    /// Record violations; they surface in `RunReport::violations`.
    Collect,
}

/// Invariant-auditing configuration for a [`crate::sim::Simulator`].
///
/// Installing one is cheap: the ledger counters are maintained
/// unconditionally (a handful of integer increments per packet), so turning
/// auditing on only adds the checkpoint checks themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// Strict (panic) or collect (report) on violation.
    pub mode: AuditMode,
    /// Also run the checks every N processed events, not just at the end of
    /// `run()`. Catches transient violations (e.g. a queue briefly over
    /// capacity) that self-correct before the run ends.
    pub check_every_events: Option<u64>,
    /// Liveness watchdog horizon; `None` disables the watchdog. Must
    /// comfortably exceed the transport's maximum RTO backoff (2 s by
    /// default) or legitimately idle-but-retrying flows get flagged.
    pub liveness_horizon: Option<SimDuration>,
}

impl AuditConfig {
    /// Strict mode with periodic checks every 100k events; no liveness
    /// watchdog. The default for tests and fuzzing.
    pub fn strict() -> Self {
        AuditConfig {
            mode: AuditMode::Strict,
            check_every_events: Some(100_000),
            liveness_horizon: None,
        }
    }

    /// Collect mode with periodic checks every 100k events; no liveness
    /// watchdog. Used by the fuzzer so a violating run still reports how it
    /// terminated.
    pub fn collect() -> Self {
        AuditConfig {
            mode: AuditMode::Collect,
            check_every_events: Some(100_000),
            liveness_horizon: None,
        }
    }

    /// Override the periodic-check cadence (`None` = end of run only).
    pub fn every(mut self, events: Option<u64>) -> Self {
        self.check_every_events = events;
        self
    }

    /// Arm the liveness watchdog with the given silence horizon.
    pub fn with_liveness(mut self, horizon: SimDuration) -> Self {
        self.liveness_horizon = Some(horizon);
        self
    }
}

/// Counts every packet the simulator has seen, by disposition.
///
/// `created` counts `Effect::Send` applications — a proxy forwarding a
/// packet counts as a fresh creation, so conservation holds regardless of
/// agent behavior. `trimmed` is informational (a trimmed packet keeps
/// traveling as a header); it is *not* part of the conservation sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketLedger {
    /// Packets emitted by agents (`Effect::Send`), including forwards.
    pub created: u64,
    /// Packets dispatched to a live host agent.
    pub delivered: u64,
    /// Packets destroyed on arrival at a crashed agent.
    pub lost_to_crash: u64,
    /// Packets blackholed by a downed link, lost to an impairment draw, or
    /// destroyed by corruption of a control packet.
    pub lost_to_fault: u64,
    /// Packets dropped by a full queue (`EnqueueOutcome::Dropped`).
    pub dropped_queue: u64,
    /// Payloads cut to headers (queue trim or data corruption); the header
    /// keeps traveling, so this is not a terminal disposition.
    pub trimmed: u64,
    /// Packets handed to another shard of a fleet run. Terminal for *this*
    /// shard's ledger: conservation becomes `created + imported == terminal
    /// + exported + in_flight`. Zero outside fleet runs.
    pub exported: u64,
    /// Packets accepted from another shard of a fleet run; they enter this
    /// shard's conservation sum alongside `created`. Zero outside fleet
    /// runs.
    pub imported: u64,
    /// Packets advanced analytically by the hybrid-fidelity express path
    /// for at least one hop. Informational (such packets still appear in
    /// `delivered`/`in_flight` like any other); not part of the
    /// conservation sum.
    pub express: u64,
}

impl PacketLedger {
    /// Sum of terminal dispositions.
    pub fn terminal(&self) -> u64 {
        self.delivered + self.lost_to_crash + self.lost_to_fault + self.dropped_queue
    }
}

/// Counts every control-plane lease from grant to terminal disposition.
///
/// The sharded orchestrator (in the `core` crate) maintains one global
/// ledger across all shards; the invariant is `granted == released +
/// expired + reclaimed + active` at every step, and `active == 0` once the
/// control plane has quiesced. Shard crashes move leases around (into the
/// draining set, to a sibling, or to the decentralized fallback) but never
/// out of the ledger, so the balance catches both leaks (a lease forgotten
/// by everyone) and double-frees (a lease released twice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseLedger {
    /// Leases ever granted, including re-grants after a reclaim.
    pub granted: u64,
    /// Leases released by their holder (the incast completed).
    pub released: u64,
    /// Leases that ran out their term without renewal.
    pub expired: u64,
    /// Stale leases taken over from a crashed shard and re-granted.
    pub reclaimed: u64,
    /// Leases currently live (granted, not yet terminal).
    pub active: u64,
}

impl LeaseLedger {
    /// Sum of terminal dispositions plus live leases.
    pub fn accounted(&self) -> u64 {
        self.released + self.expired + self.reclaimed + self.active
    }

    /// True when every grant is accounted for.
    pub fn balanced(&self) -> bool {
        self.granted == self.accounted()
    }
}

/// A single invariant violation, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantViolation {
    /// The ledger does not balance: `created != terminal + in_flight`.
    PacketConservation {
        at: SimTime,
        ledger: PacketLedger,
        in_queues: u64,
        in_events: u64,
    },
    /// A port queue's occupancy exceeds its configured capacity.
    QueueOverCapacity {
        at: SimTime,
        port: PortId,
        data_bytes: u64,
        data_capacity: u64,
        ctrl_bytes: u64,
        ctrl_capacity: u64,
    },
    /// A port queue's internal accounting is inconsistent (byte counters vs
    /// queued packets, enqueue/dequeue stats vs length, class placement).
    QueueAccounting {
        at: SimTime,
        port: PortId,
        detail: String,
    },
    /// Timer churn counters do not balance: `armed != fired + canceled +
    /// pending`, or a stale timer pop was discarded.
    TimerAccounting {
        at: SimTime,
        armed: u64,
        fired: u64,
        canceled: u64,
        pending: u64,
        discarded_stale: u64,
    },
    /// A bound, started, uncrashed flow has made no forward progress for
    /// longer than the watchdog horizon (or the simulator went idle with the
    /// flow incomplete).
    StuckFlow {
        at: SimTime,
        flow: FlowId,
        last_activity: SimTime,
        idle: bool,
    },
    /// The control-plane lease ledger does not balance: `granted !=
    /// released + expired + reclaimed + active`, or leases were still
    /// active after quiescence.
    LeaseAccounting {
        at: SimTime,
        ledger: LeaseLedger,
        detail: String,
    },
}

impl InvariantViolation {
    /// Stable short name of the violation class; the fuzzer's shrinker
    /// matches on this to accept a shrunk candidate as "the same failure".
    pub fn kind(&self) -> &'static str {
        match self {
            InvariantViolation::PacketConservation { .. } => "PacketConservation",
            InvariantViolation::QueueOverCapacity { .. } => "QueueOverCapacity",
            InvariantViolation::QueueAccounting { .. } => "QueueAccounting",
            InvariantViolation::TimerAccounting { .. } => "TimerAccounting",
            InvariantViolation::StuckFlow { .. } => "StuckFlow",
            InvariantViolation::LeaseAccounting { .. } => "LeaseAccounting",
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::PacketConservation {
                at,
                ledger,
                in_queues,
                in_events,
            } => write!(
                f,
                "packet conservation broken at {at}: created={} + imported={} != \
                 terminal={} (delivered={} lost_to_crash={} lost_to_fault={} \
                 dropped_queue={}) + exported={} + in_flight={} \
                 (queues={in_queues} events={in_events})",
                ledger.created,
                ledger.imported,
                ledger.terminal(),
                ledger.delivered,
                ledger.lost_to_crash,
                ledger.lost_to_fault,
                ledger.dropped_queue,
                ledger.exported,
                in_queues + in_events,
            ),
            InvariantViolation::QueueOverCapacity {
                at,
                port,
                data_bytes,
                data_capacity,
                ctrl_bytes,
                ctrl_capacity,
            } => write!(
                f,
                "queue over capacity at {at} on {port:?}: \
                 data {data_bytes}/{data_capacity} B, ctrl {ctrl_bytes}/{ctrl_capacity} B",
            ),
            InvariantViolation::QueueAccounting { at, port, detail } => {
                write!(f, "queue accounting broken at {at} on {port:?}: {detail}")
            }
            InvariantViolation::TimerAccounting {
                at,
                armed,
                fired,
                canceled,
                pending,
                discarded_stale,
            } => write!(
                f,
                "timer accounting broken at {at}: armed={armed} != fired={fired} \
                 + canceled={canceled} + pending={pending} \
                 (discarded_stale={discarded_stale}, must be 0)",
            ),
            InvariantViolation::StuckFlow {
                at,
                flow,
                last_activity,
                idle,
            } => write!(
                f,
                "stuck flow {flow:?} at {at}: no activity since {last_activity}{}",
                if *idle {
                    " and the simulator is idle (no pending event can complete it)"
                } else {
                    ""
                },
            ),
            InvariantViolation::LeaseAccounting { at, ledger, detail } => write!(
                f,
                "lease accounting broken at {at}: granted={} != released={} \
                 + expired={} + reclaimed={} + active={} ({detail})",
                ledger.granted, ledger.released, ledger.expired, ledger.reclaimed, ledger.active,
            ),
        }
    }
}
