//! Run-level metrics: flow completion times and protocol counters.

use crate::agent::Counter;
use crate::packet::FlowId;
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;
use trace::Summary;

/// Metrics collected during one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Completion timestamp per flow (set by the receiving endpoint once it
    /// has every byte).
    completions: HashMap<FlowId, SimTime>,
    /// Protocol counters bumped by agents.
    counters: HashMap<Counter, u64>,
    /// Per-flow proxy-failover latencies (silence start → path switch).
    /// A flow can fail over more than once if the proxy flaps.
    failover_latencies: HashMap<FlowId, Vec<SimDuration>>,
    /// Number of events processed.
    pub events_processed: u64,
}

impl SimMetrics {
    /// Records a flow completion. First completion wins; duplicate
    /// completions (e.g. duplicate final ACKs) are ignored.
    pub(crate) fn flow_done(&mut self, flow: FlowId, at: SimTime) {
        self.completions.entry(flow).or_insert(at);
    }

    /// Bumps a counter.
    pub(crate) fn count(&mut self, counter: Counter, amount: u64) {
        *self.counters.entry(counter).or_insert(0) += amount;
    }

    /// Records one proxy-failover latency sample for `flow`.
    pub(crate) fn failover_latency(&mut self, flow: FlowId, latency: SimDuration) {
        self.failover_latencies
            .entry(flow)
            .or_default()
            .push(latency);
    }

    /// Completion time of a flow, if it completed.
    pub fn completion(&self, flow: FlowId) -> Option<SimTime> {
        self.completions.get(&flow).copied()
    }

    /// Number of completed flows.
    pub fn completed_flows(&self) -> usize {
        self.completions.len()
    }

    /// Latest completion among the given flows — the incast completion time
    /// when passed the incast's receiver-side flows. `None` if any flow has
    /// not completed.
    pub fn completion_of_all(&self, flows: &[FlowId]) -> Option<SimTime> {
        flows
            .iter()
            .map(|f| self.completion(*f))
            .collect::<Option<Vec<_>>>()
            .map(|ts| ts.into_iter().max().expect("non-empty flow set"))
    }

    /// Value of a counter (0 if never bumped).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.get(&counter).copied().unwrap_or(0)
    }

    /// Flow completion times relative to `start`, for the given flows,
    /// skipping flows that have not completed.
    pub fn completion_durations(&self, flows: &[FlowId], start: SimTime) -> Vec<SimDuration> {
        flows
            .iter()
            .filter_map(|f| self.completion(*f))
            .map(|t| t.since(start))
            .collect()
    }

    /// Failover latencies recorded for `flow` (empty if it never failed
    /// over). Each sample is the gap between the last feedback heard via
    /// the proxy and the moment the sender switched to the direct path.
    pub fn failover_latencies(&self, flow: FlowId) -> &[SimDuration] {
        self.failover_latencies
            .get(&flow)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All failover-latency samples across flows (unordered across flows).
    pub fn all_failover_latencies(&self) -> Vec<SimDuration> {
        let mut flows: Vec<&FlowId> = self.failover_latencies.keys().collect();
        flows.sort();
        flows
            .into_iter()
            .flat_map(|f| self.failover_latencies[f].iter().copied())
            .collect()
    }

    /// Summary (count/mean/min/max/std, in seconds) of the completion
    /// times of the given flows relative to `start` — the FCT statistics
    /// of a flow group (e.g. the victims of an incast, or the incast's
    /// own per-sender completions).
    ///
    /// Returns `None` when none of the flows completed.
    pub fn fct_summary(&self, flows: &[FlowId], start: SimTime) -> Option<Summary> {
        let secs: Vec<f64> = self
            .completion_durations(flows, start)
            .into_iter()
            .map(|d| d.as_secs_f64())
            .collect();
        (!secs.is_empty()).then(|| Summary::of(&secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_completion_wins() {
        let mut m = SimMetrics::default();
        m.flow_done(FlowId(1), SimTime(100));
        m.flow_done(FlowId(1), SimTime(200));
        assert_eq!(m.completion(FlowId(1)), Some(SimTime(100)));
        assert_eq!(m.completed_flows(), 1);
    }

    #[test]
    fn completion_of_all_requires_every_flow() {
        let mut m = SimMetrics::default();
        m.flow_done(FlowId(1), SimTime(100));
        m.flow_done(FlowId(2), SimTime(300));
        assert_eq!(
            m.completion_of_all(&[FlowId(1), FlowId(2)]),
            Some(SimTime(300))
        );
        assert_eq!(m.completion_of_all(&[FlowId(1), FlowId(3)]), None);
    }

    #[test]
    fn fct_summary_over_group() {
        let mut m = SimMetrics::default();
        m.flow_done(FlowId(0), SimTime(2_000_000));
        m.flow_done(FlowId(1), SimTime(4_000_000));
        let s = m
            .fct_summary(&[FlowId(0), FlowId(1), FlowId(9)], SimTime(1_000_000))
            .expect("two completed");
        assert_eq!(s.count, 2);
        assert!((s.min - 1e-6).abs() < 1e-12);
        assert!((s.max - 3e-6).abs() < 1e-12);
        assert!(m.fct_summary(&[FlowId(9)], SimTime::ZERO).is_none());
    }

    #[test]
    fn counters_accumulate() {
        let mut m = SimMetrics::default();
        m.count(Counter::Retransmits, 2);
        m.count(Counter::Retransmits, 3);
        assert_eq!(m.counter(Counter::Retransmits), 5);
        assert_eq!(m.counter(Counter::RtoFires), 0);
    }
}
