//! Run-level metrics: flow completion times and protocol counters.
//!
//! Storage is dense and index-addressed: counters live in a fixed
//! [`Counter::COUNT`]-sized array and per-flow data in `Vec`s indexed by
//! `FlowId` (flow ids are small dense integers handed out sequentially by
//! the simulator). The per-event hot paths — `count` and `flow_done` —
//! are array writes, not hash-map probes.

use crate::agent::Counter;
use crate::packet::FlowId;
use crate::time::{SimDuration, SimTime};
use trace::Summary;

/// Timer lifecycle counters: how many timer events were armed, moved in
/// place, canceled, and actually fired during a run.
///
/// With cancelable timer slots, `armed` counts heap insertions only — a
/// rearm that finds a live slot moves the existing entry and bumps
/// `rescheduled` instead. `discarded_stale` counts timer events that popped
/// dead (the pre-handle epoch-invalidation cost); it must stay zero now
/// that invalidation is explicit, and `scripts/check.sh` asserts that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerChurn {
    /// Timer events inserted into the heap (fresh slots).
    pub armed: u64,
    /// Rearms resolved by moving a live heap entry in place.
    pub rescheduled: u64,
    /// Live timers removed from the heap by an explicit cancel.
    pub canceled: u64,
    /// Timer events that popped and were dispatched to an agent.
    pub fired: u64,
    /// Timer events that popped dead and were thrown away. Always zero
    /// since epoch-based invalidation was retired; kept as a tripwire.
    pub discarded_stale: u64,
}

/// Metrics collected during one simulation run.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    /// Completion timestamp per flow, indexed by `FlowId` (set by the
    /// receiving endpoint once it has every byte); grown lazily.
    completions: Vec<Option<SimTime>>,
    /// Number of `Some` entries in `completions`.
    completed: usize,
    /// Protocol counters bumped by agents, indexed by [`Counter::index`].
    counters: [u64; Counter::COUNT],
    /// Per-flow proxy-failover latencies (silence start → path switch),
    /// indexed by `FlowId`; grown lazily. A flow can fail over more than
    /// once if the proxy flaps.
    failover_latencies: Vec<Vec<SimDuration>>,
    /// Number of events processed.
    pub events_processed: u64,
    /// Timer lifecycle counters (armed / rescheduled / canceled / fired).
    pub timer_churn: TimerChurn,
}

impl Default for SimMetrics {
    fn default() -> Self {
        SimMetrics {
            completions: Vec::new(),
            completed: 0,
            counters: [0; Counter::COUNT],
            failover_latencies: Vec::new(),
            events_processed: 0,
            timer_churn: TimerChurn::default(),
        }
    }
}

impl SimMetrics {
    /// Records a flow completion. First completion wins; duplicate
    /// completions (e.g. duplicate final ACKs) are ignored.
    pub(crate) fn flow_done(&mut self, flow: FlowId, at: SimTime) {
        let i = flow.index();
        if i >= self.completions.len() {
            self.completions.resize(i + 1, None);
        }
        if self.completions[i].is_none() {
            self.completions[i] = Some(at);
            self.completed += 1;
        }
    }

    /// Bumps a counter.
    #[inline]
    pub(crate) fn count(&mut self, counter: Counter, amount: u64) {
        self.counters[counter.index()] += amount;
    }

    /// Records one proxy-failover latency sample for `flow`.
    pub(crate) fn failover_latency(&mut self, flow: FlowId, latency: SimDuration) {
        let i = flow.index();
        if i >= self.failover_latencies.len() {
            self.failover_latencies.resize_with(i + 1, Vec::new);
        }
        self.failover_latencies[i].push(latency);
    }

    /// Completion time of a flow, if it completed.
    pub fn completion(&self, flow: FlowId) -> Option<SimTime> {
        self.completions.get(flow.index()).copied().flatten()
    }

    /// Number of completed flows.
    pub fn completed_flows(&self) -> usize {
        self.completed
    }

    /// Latest completion among the given flows — the incast completion time
    /// when passed the incast's receiver-side flows. `None` if any flow has
    /// not completed.
    pub fn completion_of_all(&self, flows: &[FlowId]) -> Option<SimTime> {
        flows
            .iter()
            .map(|f| self.completion(*f))
            .collect::<Option<Vec<_>>>()
            .map(|ts| ts.into_iter().max().expect("non-empty flow set"))
    }

    /// Value of a counter (0 if never bumped).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()]
    }

    /// All counters with non-zero values, in [`Counter::ALL`] order — the
    /// exhaustive report form.
    pub fn nonzero_counters(&self) -> Vec<(Counter, u64)> {
        Counter::ALL
            .into_iter()
            .filter(|c| self.counters[c.index()] > 0)
            .map(|c| (c, self.counters[c.index()]))
            .collect()
    }

    /// Flow completion times relative to `start`, for the given flows,
    /// skipping flows that have not completed.
    pub fn completion_durations(&self, flows: &[FlowId], start: SimTime) -> Vec<SimDuration> {
        flows
            .iter()
            .filter_map(|f| self.completion(*f))
            .map(|t| t.since(start))
            .collect()
    }

    /// Failover latencies recorded for `flow` (empty if it never failed
    /// over). Each sample is the gap between the last feedback heard via
    /// the proxy and the moment the sender switched to the direct path.
    pub fn failover_latencies(&self, flow: FlowId) -> &[SimDuration] {
        self.failover_latencies
            .get(flow.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All failover-latency samples across flows, in flow-id order.
    pub fn all_failover_latencies(&self) -> Vec<SimDuration> {
        self.failover_latencies
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect()
    }

    /// Summary (count/mean/min/max/std, in seconds) of the completion
    /// times of the given flows relative to `start` — the FCT statistics
    /// of a flow group (e.g. the victims of an incast, or the incast's
    /// own per-sender completions).
    ///
    /// Returns `None` when none of the flows completed.
    pub fn fct_summary(&self, flows: &[FlowId], start: SimTime) -> Option<Summary> {
        let secs: Vec<f64> = self
            .completion_durations(flows, start)
            .into_iter()
            .map(|d| d.as_secs_f64())
            .collect();
        (!secs.is_empty()).then(|| Summary::of(&secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_completion_wins() {
        let mut m = SimMetrics::default();
        m.flow_done(FlowId(1), SimTime(100));
        m.flow_done(FlowId(1), SimTime(200));
        assert_eq!(m.completion(FlowId(1)), Some(SimTime(100)));
        assert_eq!(m.completed_flows(), 1);
    }

    #[test]
    fn completion_of_all_requires_every_flow() {
        let mut m = SimMetrics::default();
        m.flow_done(FlowId(1), SimTime(100));
        m.flow_done(FlowId(2), SimTime(300));
        assert_eq!(
            m.completion_of_all(&[FlowId(1), FlowId(2)]),
            Some(SimTime(300))
        );
        assert_eq!(m.completion_of_all(&[FlowId(1), FlowId(3)]), None);
    }

    #[test]
    fn fct_summary_over_group() {
        let mut m = SimMetrics::default();
        m.flow_done(FlowId(0), SimTime(2_000_000));
        m.flow_done(FlowId(1), SimTime(4_000_000));
        let s = m
            .fct_summary(&[FlowId(0), FlowId(1), FlowId(9)], SimTime(1_000_000))
            .expect("two completed");
        assert_eq!(s.count, 2);
        assert!((s.min - 1e-6).abs() < 1e-12);
        assert!((s.max - 3e-6).abs() < 1e-12);
        assert!(m.fct_summary(&[FlowId(9)], SimTime::ZERO).is_none());
    }

    #[test]
    fn counters_accumulate() {
        let mut m = SimMetrics::default();
        m.count(Counter::Retransmits, 2);
        m.count(Counter::Retransmits, 3);
        assert_eq!(m.counter(Counter::Retransmits), 5);
        assert_eq!(m.counter(Counter::RtoFires), 0);
    }

    #[test]
    fn nonzero_counters_report_in_declaration_order() {
        let mut m = SimMetrics::default();
        m.count(Counter::PacketsLostToFault, 4);
        m.count(Counter::ProxyNacks, 1);
        assert_eq!(
            m.nonzero_counters(),
            vec![(Counter::ProxyNacks, 1), (Counter::PacketsLostToFault, 4)]
        );
    }

    #[test]
    fn timer_churn_defaults_to_zero() {
        let m = SimMetrics::default();
        assert_eq!(m.timer_churn, TimerChurn::default());
        assert_eq!(m.timer_churn.armed, 0);
        assert_eq!(m.timer_churn.discarded_stale, 0);
    }

    #[test]
    fn sparse_flow_ids_grow_lazily() {
        let mut m = SimMetrics::default();
        m.flow_done(FlowId(70), SimTime(9));
        m.failover_latency(FlowId(5), SimDuration(300));
        assert_eq!(m.completion(FlowId(70)), Some(SimTime(9)));
        assert_eq!(m.completion(FlowId(0)), None);
        assert_eq!(m.completion(FlowId(1000)), None);
        assert_eq!(m.failover_latencies(FlowId(5)), &[SimDuration(300)]);
        assert!(m.failover_latencies(FlowId(1000)).is_empty());
        assert_eq!(m.all_failover_latencies(), vec![SimDuration(300)]);
        assert_eq!(m.completed_flows(), 1);
    }
}
