//! The simulator: event loop, port transmit state machines, switch
//! forwarding with packet spraying, and agent dispatch.

use crate::agent::{Agent, Counter, Ctx, Effect, Note};
use crate::audit::{AuditConfig, AuditMode, InvariantViolation, PacketLedger};
use crate::events::{Event, EventQueue, FaultEvent, TimerHandle};
use crate::faults::{FaultError, FaultPlan};
use crate::fidelity::{ExpressStats, FidelityConfig, FidelityState};
use crate::metrics::SimMetrics;
use crate::packet::{AgentId, FlowId, HostId, NodeId, Packet, PacketKind, PortId};
use crate::protocol::{DctcpSender, Receiver};
use crate::queues::{EnqueueOutcome, PortQueue, QueueStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeRole, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use trace::{derive_seed, SplitMix64};

/// Why [`Simulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No events left: every flow is finished and every timer expired.
    Idle,
    /// The time limit was reached with events still pending.
    TimeLimit,
    /// The event-count safety cap was reached (indicates a livelock bug or
    /// an undersized cap).
    EventCap,
}

/// How a run terminated, for reporting: [`StopReason`] folded together with
/// the auditor's verdict so sweep binaries stop inferring completion from
/// side channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminatedReason {
    /// The simulator went idle: every flow finished, every timer expired.
    Completed,
    /// The time limit was reached with events still pending.
    TimeLimit,
    /// The event-count safety cap was reached.
    EventCap,
    /// The invariant auditor (in collect mode) recorded at least one
    /// violation; see [`RunReport::violations`].
    InvariantViolation,
}

impl fmt::Display for TerminatedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TerminatedReason::Completed => "completed",
            TerminatedReason::TimeLimit => "time-limit",
            TerminatedReason::EventCap => "event-cap",
            TerminatedReason::InvariantViolation => "invariant-violation",
        })
    }
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Simulated time at stop.
    pub end_time: SimTime,
    /// Events processed during this call.
    pub events: u64,
    /// Invariant violations recorded during this call (always empty unless
    /// auditing runs in [`AuditMode::Collect`]; strict mode panics instead).
    pub violations: Vec<InvariantViolation>,
}

impl RunReport {
    /// Folds the stop reason and the auditor's verdict into one label.
    /// Violations take precedence: a run that "completed" while breaking an
    /// invariant did not meaningfully complete.
    pub fn terminated_reason(&self) -> TerminatedReason {
        if !self.violations.is_empty() {
            return TerminatedReason::InvariantViolation;
        }
        match self.stop {
            StopReason::Idle => TerminatedReason::Completed,
            StopReason::TimeLimit => TerminatedReason::TimeLimit,
            StopReason::EventCap => TerminatedReason::EventCap,
        }
    }
}

struct PortRuntime {
    queue: PortQueue,
    busy: bool,
}

/// Arena slot for an agent. The two agent types instantiated per flow by
/// the workload installers live inline (no per-agent heap allocation, no
/// vtable indirection on the size/layout), so a million-flow fleet run
/// keeps its two million protocol agents in one dense `Vec`. Everything
/// else (proxies, orchestrators, test probes) stays boxed behind the same
/// `AgentId` index space.
///
/// The size skew is the point: boxing `DctcpSender` (the hot, common
/// variant) would reintroduce the pointer chase the arena exists to
/// remove, at the cost of a few hundred padding bytes on the rare
/// `Receiver`/`Boxed` slots.
#[allow(clippy::large_enum_variant)]
pub enum AgentSlot {
    Dctcp(DctcpSender),
    Receiver(Receiver),
    Boxed(Box<dyn Agent>),
}

impl AgentSlot {
    #[inline]
    fn as_mut(&mut self) -> &mut dyn Agent {
        match self {
            AgentSlot::Dctcp(a) => a,
            AgentSlot::Receiver(a) => a,
            AgentSlot::Boxed(b) => b.as_mut(),
        }
    }
}

/// Binding of a flow to the agent handling it at each host it touches.
/// Flows have two endpoints (three via a proxy), so the common cases live
/// inline; `spill` only allocates for exotic multi-endpoint bindings.
#[derive(Debug, Clone)]
struct FlowBinding {
    len: u8,
    slots: [(HostId, AgentId); 3],
    spill: Vec<(HostId, AgentId)>,
}

impl Default for FlowBinding {
    fn default() -> Self {
        FlowBinding {
            len: 0,
            slots: [(HostId(u32::MAX), AgentId(u32::MAX)); 3],
            spill: Vec::new(),
        }
    }
}

impl FlowBinding {
    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, host: HostId, agent: AgentId) {
        if (self.len as usize) < self.slots.len() {
            self.slots[self.len as usize] = (host, agent);
            self.len += 1;
        } else {
            self.spill.push((host, agent));
        }
    }

    #[inline]
    fn iter(&self) -> impl Iterator<Item = (HostId, AgentId)> + '_ {
        self.slots[..self.len as usize]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    #[inline]
    fn agent_at(&self, host: HostId) -> Option<AgentId> {
        self.iter().find(|&(h, _)| h == host).map(|(_, a)| a)
    }
}

/// A packet-level discrete-event network simulator.
pub struct Simulator {
    topo: Topology,
    events: EventQueue,
    ports: Vec<PortRuntime>,
    agents: Vec<AgentSlot>,
    flows: Vec<FlowBinding>,
    rng: SplitMix64,
    metrics: SimMetrics,
    event_cap: u64,
    effects_pool: Vec<Vec<Effect>>,
    /// Occupancy traces of designated ports, indexed by `PortId`: `Some`
    /// entries collect (time, total queued bytes) samples at every enqueue
    /// and dequeue; `None` entries are untraced. Dense indexing keeps the
    /// per-sample hot path a bounds-checked load instead of a hash probe.
    traces: Vec<Option<Vec<(SimTime, u64)>>>,
    /// Fast-path flag: true once any port is traced.
    tracing: bool,
    /// Per-port "link is down" flags toggled by fault events.
    link_down: Vec<bool>,
    /// Per-port (loss, corruption) probabilities from installed fault
    /// plans; all zero without faults, in which case `fault_rng` is never
    /// consulted and runs stay bit-identical to a fault-free simulator.
    impairments: Vec<(f64, f64)>,
    /// Per-agent crash flags; indexed like `agents`, grown lazily.
    crashed: Vec<bool>,
    /// Per-agent cancelable timer slots, indexed `[agent][slot]`; grown
    /// lazily. Each entry is the handle of the slot's pending heap event —
    /// possibly stale once the timer fires, which the handle's generation
    /// tag detects on the next rearm/cancel.
    timer_slots: Vec<Vec<Option<TimerHandle>>>,
    /// Dedicated RNG stream for impairment draws, separate from the
    /// spraying/ECN stream so fault plans never perturb routing draws.
    fault_rng: SplitMix64,
    /// Invariant auditing; `None` (the default) maintains the ledger but
    /// never checks it. See [`crate::audit`].
    audit: Option<AuditConfig>,
    /// Packet ledger: every packet's creation and terminal disposition.
    /// Maintained unconditionally (a few integer increments per packet);
    /// only cross-checked when auditing is enabled.
    ledger: PacketLedger,
    /// Sim-time of each flow's most recent packet activity (injection or
    /// delivery), indexed by `FlowId`; `None` until the flow first moves a
    /// packet. Feeds the liveness watchdog.
    flow_activity: Vec<Option<SimTime>>,
    /// Flows already reported as stuck, so the watchdog flags each wedged
    /// flow once instead of at every checkpoint.
    stuck_flagged: Vec<bool>,
    /// Violations collected since the last `run` call returned
    /// ([`AuditMode::Collect`] only).
    violations: Vec<InvariantViolation>,
    /// Hybrid-fidelity engine state (`None` = full packet fidelity, the
    /// default; runs are bit-identical to a pre-fidelity simulator).
    /// Boxed so the disabled case costs one pointer-null check.
    fidelity: Option<Box<FidelityState>>,
    /// Fleet sharding: the owning shard of every node, shared across the
    /// shard simulators of one fleet run. `None` outside fleet runs.
    shard_of: Option<Arc<Vec<u32>>>,
    /// This simulator's shard id within a fleet run.
    my_shard: u32,
    /// Packets bound for nodes owned by other shards, accumulated during a
    /// window and drained by the fleet driver's deterministic exchange.
    outbox: Vec<(SimTime, NodeId, Packet)>,
}

impl Simulator {
    /// Creates a simulator over `topo`. All randomness (packet spraying,
    /// ECN ramp draws) derives from `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let ports = (0..topo.port_count())
            .map(|i| PortRuntime {
                queue: PortQueue::new(topo.port(PortId(i as u32)).queue),
                busy: false,
            })
            .collect();
        let port_count = topo.port_count();
        Simulator {
            topo,
            events: EventQueue::with_capacity(1024),
            ports,
            agents: Vec::new(),
            flows: Vec::new(),
            rng: SplitMix64::new(derive_seed(seed, 0xD15C_0517)),
            metrics: SimMetrics::default(),
            event_cap: 2_000_000_000,
            effects_pool: Vec::new(),
            traces: vec![None; port_count],
            tracing: false,
            link_down: vec![false; port_count],
            impairments: vec![(0.0, 0.0); port_count],
            crashed: Vec::new(),
            timer_slots: Vec::new(),
            fault_rng: SplitMix64::new(derive_seed(seed, 0xFA_0175)),
            audit: None,
            ledger: PacketLedger::default(),
            flow_activity: Vec::new(),
            stuck_flagged: Vec::new(),
            violations: Vec::new(),
            fidelity: None,
            shard_of: None,
            my_shard: 0,
            outbox: Vec::new(),
        }
    }

    /// Enables the hybrid-fidelity engine: uncontended hops are advanced
    /// analytically (see [`crate::fidelity`]); contended and pinned ports
    /// keep full packet fidelity. Call before installing fault plans so
    /// fault-prone ports are pinned hot in both orders of operations.
    pub fn set_fidelity(&mut self, cfg: FidelityConfig) {
        let mut state = FidelityState::new(cfg, self.ports.len());
        // Ports already carrying impairments can never be modeled as
        // delay lines; pin them hot. (Plans installed later pin theirs in
        // `install_faults`.)
        for (i, &(loss, corrupt)) in self.impairments.iter().enumerate() {
            if loss > 0.0 || corrupt > 0.0 {
                state.always_hot[i] = true;
            }
        }
        self.fidelity = Some(Box::new(state));
    }

    /// True when the hybrid-fidelity engine is enabled.
    pub fn fidelity_enabled(&self) -> bool {
        self.fidelity.is_some()
    }

    /// Express-path counters, if the hybrid-fidelity engine is enabled.
    pub fn fidelity_stats(&self) -> Option<ExpressStats> {
        self.fidelity.as_ref().map(|f| f.stats)
    }

    /// Pins a port permanently hot: it keeps full packet fidelity for the
    /// whole run (receiver/proxy down-ToRs, backbone links under study).
    /// No-op when the hybrid-fidelity engine is disabled.
    pub fn pin_hot_port(&mut self, port: PortId) {
        if let Some(f) = &mut self.fidelity {
            f.always_hot[port.index()] = true;
        }
    }

    /// Joins this simulator to a fleet run: `shard_of` maps every `NodeId`
    /// to its owning shard, `my_shard` is this simulator's shard. Packets
    /// crossing into foreign nodes are diverted to the outbox instead of
    /// being scheduled locally.
    pub fn set_shard(&mut self, shard_of: Arc<Vec<u32>>, my_shard: u32) {
        assert_eq!(
            shard_of.len(),
            self.topo.node_count(),
            "shard map must cover every node"
        );
        self.shard_of = Some(shard_of);
        self.my_shard = my_shard;
    }

    /// Drains packets destined for other shards (fleet exchange).
    pub fn take_outbox(&mut self) -> Vec<(SimTime, NodeId, Packet)> {
        std::mem::take(&mut self.outbox)
    }

    /// Accepts a packet exported by another shard: schedules its arrival
    /// at the owning node and accounts it in the ledger.
    pub fn import_packet(&mut self, at: SimTime, node: NodeId, packet: Packet) {
        debug_assert!(
            self.shard_of
                .as_ref()
                .is_some_and(|s| s[node.index()] == self.my_shard),
            "imported packet for a node this shard does not own"
        );
        self.ledger.imported += 1;
        self.events.schedule(at, Event::Arrival { node, packet });
    }

    /// Earliest pending event time (fleet window skip-ahead).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Enables invariant auditing for subsequent `run` calls. Checks run at
    /// the end of every `run` call and, if configured, every N processed
    /// events. Auditing never perturbs the simulation (no RNG draws, no
    /// state changes): a run is bit-identical with auditing on or off.
    pub fn set_audit(&mut self, config: AuditConfig) {
        self.audit = Some(config);
    }

    /// The installed audit configuration, if any.
    pub fn audit_config(&self) -> Option<&AuditConfig> {
        self.audit.as_ref()
    }

    /// The packet ledger (maintained whether or not auditing is enabled).
    pub fn ledger(&self) -> &PacketLedger {
        &self.ledger
    }

    /// Installs a [`FaultPlan`]: validates it against this simulator's
    /// topology and agents, activates port impairments, and schedules the
    /// link and crash transitions on the event queue.
    ///
    /// May be called multiple times; impairment probabilities on the same
    /// port accumulate. Installing an empty plan is a no-op and keeps the
    /// run bit-identical to one without fault support.
    pub fn install_faults(&mut self, plan: &FaultPlan) -> Result<(), FaultError> {
        plan.validate()?;
        let now = self.now();
        // Bounds- and time-check everything before mutating any state, so
        // a rejected plan leaves the simulator untouched.
        for w in &plan.link_windows {
            if w.port.index() >= self.ports.len() {
                return Err(FaultError::UnknownPort {
                    port: w.port,
                    ports: self.ports.len(),
                });
            }
            if w.down_at < now {
                return Err(FaultError::InThePast { at: w.down_at, now });
            }
        }
        for imp in &plan.impairments {
            if imp.port.index() >= self.ports.len() {
                return Err(FaultError::UnknownPort {
                    port: imp.port,
                    ports: self.ports.len(),
                });
            }
            let (loss, corrupt) = self.impairments[imp.port.index()];
            let total = loss + imp.loss + corrupt + imp.corrupt;
            if total > 1.0 {
                return Err(FaultError::CombinedProbabilityTooHigh {
                    port: imp.port,
                    total,
                });
            }
        }
        for c in &plan.crashes {
            if c.agent.index() >= self.agents.len() {
                return Err(FaultError::UnknownAgent {
                    agent: c.agent,
                    agents: self.agents.len(),
                });
            }
            if c.at < now {
                return Err(FaultError::InThePast { at: c.at, now });
            }
        }
        for w in &plan.link_windows {
            self.events.schedule(
                w.down_at,
                Event::Fault(FaultEvent::LinkDown { port: w.port }),
            );
            if let Some(up) = w.up_at {
                self.events
                    .schedule(up, Event::Fault(FaultEvent::LinkUp { port: w.port }));
            }
        }
        for imp in &plan.impairments {
            let slot = &mut self.impairments[imp.port.index()];
            slot.0 += imp.loss;
            slot.1 += imp.corrupt;
        }
        for c in &plan.crashes {
            self.events.schedule(
                c.at,
                Event::Fault(FaultEvent::AgentCrash { agent: c.agent }),
            );
            if let Some(r) = c.restore_at {
                self.events
                    .schedule(r, Event::Fault(FaultEvent::AgentRestore { agent: c.agent }));
            }
        }
        if let Some(f) = &mut self.fidelity {
            // Fault-prone ports can go down or impair mid-flight; the
            // express path must never claim to have traversed them, so pin
            // them at full packet fidelity for the whole run.
            for w in &plan.link_windows {
                f.always_hot[w.port.index()] = true;
            }
            for imp in &plan.impairments {
                f.always_hot[imp.port.index()] = true;
            }
        }
        Ok(())
    }

    /// True while `agent` is crashed by an installed fault plan.
    pub fn is_agent_crashed(&self, agent: AgentId) -> bool {
        self.crashed.get(agent.index()).copied().unwrap_or(false)
    }

    /// True while `port`'s link is held down by an installed fault plan.
    pub fn is_link_down(&self, port: PortId) -> bool {
        self.link_down[port.index()]
    }

    /// The topology this simulator runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Queue statistics of a port (for congestion-point assertions).
    pub fn port_stats(&self, port: PortId) -> QueueStats {
        self.ports[port.index()].queue.stats()
    }

    /// Sets the safety cap on processed events per `run` call.
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Starts recording an occupancy trace of `port`: one `(time, queued
    /// bytes)` sample per enqueue and per dequeue.
    pub fn trace_port(&mut self, port: PortId) {
        self.traces[port.index()].get_or_insert_with(Vec::new);
        self.tracing = true;
    }

    /// The recorded occupancy trace of a port (empty unless
    /// [`Simulator::trace_port`] was called before running).
    pub fn port_trace(&self, port: PortId) -> &[(SimTime, u64)] {
        self.traces[port.index()].as_deref().unwrap_or(&[])
    }

    /// Number of registered agents (agent ids are `0..agent_count`).
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Registers a boxed agent, returning its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(AgentSlot::Boxed(agent));
        id
    }

    /// Registers a DCTCP sender inline in the agent arena (no per-agent
    /// box), returning its id. Ids share one space with boxed agents.
    pub fn add_dctcp_sender(&mut self, agent: DctcpSender) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(AgentSlot::Dctcp(agent));
        id
    }

    /// Registers a receiver inline in the agent arena, returning its id.
    pub fn add_receiver(&mut self, agent: Receiver) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(AgentSlot::Receiver(agent));
        id
    }

    /// Allocates a new flow id.
    pub fn new_flow(&mut self) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowBinding::default());
        id
    }

    /// Binds packets of `flow` arriving at `host` to `agent`.
    ///
    /// # Panics
    /// Panics if the (flow, host) pair is already bound.
    pub fn bind(&mut self, flow: FlowId, host: HostId, agent: AgentId) {
        let binding = &mut self.flows[flow.index()];
        assert!(
            binding.iter().all(|(h, _)| h != host),
            "{flow} already bound at {host}"
        );
        binding.push(host, agent);
    }

    /// Schedules an agent's `on_start` at `at`.
    pub fn schedule_start(&mut self, at: SimTime, agent: AgentId) {
        self.events.schedule(at, Event::FlowStart { agent });
    }

    /// Runs until idle, the optional time limit, or the event cap.
    pub fn run(&mut self, limit: Option<SimTime>) -> RunReport {
        let mut processed = 0u64;
        loop {
            if processed >= self.event_cap {
                return self.report(StopReason::EventCap, processed);
            }
            if let (Some(limit), Some(next)) = (limit, self.events.peek_time()) {
                if next > limit {
                    return self.report(StopReason::TimeLimit, processed);
                }
            }
            let Some((now, event)) = self.events.pop() else {
                return self.report(StopReason::Idle, processed);
            };
            processed += 1;
            self.metrics.events_processed += 1;
            match event {
                Event::Arrival { node, packet } => self.on_arrival(now, node, packet),
                Event::TxDone { port } => {
                    self.ports[port.index()].busy = false;
                    self.try_start_tx(now, port);
                }
                Event::Timer { agent, kind } => {
                    self.metrics.timer_churn.fired += 1;
                    self.dispatch(now, agent, |a, ctx| a.on_timer(kind, ctx));
                }
                Event::FlowStart { agent } => {
                    self.dispatch(now, agent, |a, ctx| a.on_start(ctx));
                }
                Event::Inject { port, packet } => {
                    self.enqueue_on_port(now, port, packet);
                }
                Event::Fault(fault) => self.apply_fault(now, fault),
            }
            if let Some(every) = self.audit.and_then(|a| a.check_every_events) {
                if processed.is_multiple_of(every) {
                    self.run_audit_checks(false);
                }
            }
        }
    }

    fn apply_fault(&mut self, now: SimTime, fault: FaultEvent) {
        match fault {
            FaultEvent::LinkDown { port } => {
                self.link_down[port.index()] = true;
            }
            FaultEvent::LinkUp { port } => {
                self.link_down[port.index()] = false;
                // Resume draining whatever survived the outage in-queue.
                self.try_start_tx(now, port);
            }
            FaultEvent::AgentCrash { agent } => {
                if self.crashed.len() < self.agents.len() {
                    self.crashed.resize(self.agents.len(), false);
                }
                self.crashed[agent.index()] = true;
                // `dispatch` skips crashed agents, but the crash handler
                // itself must still run (to drop soft state and cancel
                // timer slots), so build its context by hand.
                let mut effects = self.effects_pool.pop().unwrap_or_default();
                debug_assert!(effects.is_empty());
                {
                    let mut ctx = Ctx {
                        now,
                        self_id: agent,
                        effects: &mut effects,
                    };
                    self.agents[agent.index()].as_mut().on_crash(&mut ctx);
                }
                self.apply_effects(now, &mut effects);
                effects.clear();
                self.effects_pool.push(effects);
            }
            FaultEvent::AgentRestore { agent } => {
                if let Some(flag) = self.crashed.get_mut(agent.index()) {
                    *flag = false;
                }
                // Flow starts and timer fires addressed to the agent while
                // it was down were consumed without a handler; give it a
                // chance to restart its clocks.
                self.dispatch(now, agent, |a, ctx| a.on_restore(ctx));
            }
        }
    }

    fn report(&mut self, stop: StopReason, events: u64) -> RunReport {
        if self.audit.is_some() {
            self.run_audit_checks(stop == StopReason::Idle);
        }
        RunReport {
            stop,
            end_time: self.now(),
            events,
            violations: std::mem::take(&mut self.violations),
        }
    }

    /// Records the flow's most recent packet activity (for the liveness
    /// watchdog).
    #[inline]
    fn note_flow_activity(&mut self, now: SimTime, flow: FlowId) {
        if self.flow_activity.len() <= flow.index() {
            self.flow_activity.resize(flow.index() + 1, None);
        }
        self.flow_activity[flow.index()] = Some(now);
    }

    /// Runs every invariant check and routes violations per the audit mode:
    /// strict panics with the structured report, collect stores them for
    /// the next [`RunReport`]. `idle` marks an end-of-run check with an
    /// empty event queue, where an incomplete flow is stuck by definition.
    fn run_audit_checks(&mut self, idle: bool) {
        let Some(config) = self.audit else {
            return;
        };
        let now = self.now();
        let census = self.events.census();
        let mut found: Vec<InvariantViolation> = Vec::new();

        // Packet conservation: every packet created here or imported from
        // another shard is either terminally disposed of, demonstrably in
        // flight (queued on a port, or riding a pending Arrival/Inject
        // event), or exported to another shard. Outside fleet runs the
        // exported/imported terms are zero.
        let in_queues: u64 = self.ports.iter().map(|p| p.queue.len() as u64).sum();
        if self.ledger.created + self.ledger.imported
            != self.ledger.terminal() + in_queues + census.packets + self.ledger.exported
        {
            found.push(InvariantViolation::PacketConservation {
                at: now,
                ledger: self.ledger,
                in_queues,
                in_events: census.packets,
            });
        }

        // Queue sanity: per-port accounting and capacity bounds.
        for (i, rt) in self.ports.iter().enumerate() {
            let port = PortId(i as u32);
            let q = &rt.queue;
            let cfg = q.config();
            if q.data_bytes() > cfg.capacity_bytes || q.ctrl_bytes() > cfg.ctrl_capacity_bytes {
                found.push(InvariantViolation::QueueOverCapacity {
                    at: now,
                    port,
                    data_bytes: q.data_bytes(),
                    data_capacity: cfg.capacity_bytes,
                    ctrl_bytes: q.ctrl_bytes(),
                    ctrl_capacity: cfg.ctrl_capacity_bytes,
                });
            }
            if let Err(detail) = q.check_invariants() {
                found.push(InvariantViolation::QueueAccounting {
                    at: now,
                    port,
                    detail,
                });
            }
        }

        // Timer accounting, extending the PR 3 churn counters: every armed
        // timer fired, was canceled, or is still pending — and the
        // slot/generation protocol never let a stale timer pop through.
        let churn = self.metrics.timer_churn;
        if churn.armed != churn.fired + churn.canceled + census.timers || churn.discarded_stale != 0
        {
            found.push(InvariantViolation::TimerAccounting {
                at: now,
                armed: churn.armed,
                fired: churn.fired,
                canceled: churn.canceled,
                pending: census.timers,
                discarded_stale: churn.discarded_stale,
            });
        }

        // Flow liveness watchdog: a bound, started, uncrashed, incomplete
        // flow that has been silent past the horizon — or any such flow at
        // all once the simulator is idle, since no pending event can ever
        // complete it.
        if let Some(horizon) = config.liveness_horizon {
            if self.stuck_flagged.len() < self.flows.len() {
                self.stuck_flagged.resize(self.flows.len(), false);
            }
            for i in 0..self.flows.len() {
                let flow = FlowId(i as u32);
                if self.stuck_flagged[i]
                    || self.flows[i].is_empty()
                    || self.metrics.completion(flow).is_some()
                {
                    continue;
                }
                if self.flows[i].iter().any(|(_, a)| self.is_agent_crashed(a)) {
                    continue;
                }
                let Some(last) = self.flow_activity.get(i).copied().flatten() else {
                    // Never moved a packet: only damning once the queue is
                    // empty (its start event may simply not have fired yet).
                    if idle {
                        self.stuck_flagged[i] = true;
                        found.push(InvariantViolation::StuckFlow {
                            at: now,
                            flow,
                            last_activity: SimTime::ZERO,
                            idle,
                        });
                    }
                    continue;
                };
                if idle || now >= last + horizon {
                    self.stuck_flagged[i] = true;
                    found.push(InvariantViolation::StuckFlow {
                        at: now,
                        flow,
                        last_activity: last,
                        idle,
                    });
                }
            }
        }

        if found.is_empty() {
            return;
        }
        match config.mode {
            AuditMode::Strict => {
                let mut msg = format!(
                    "invariant audit failed at {now} ({} violation{}):",
                    found.len(),
                    if found.len() == 1 { "" } else { "s" }
                );
                for v in &found {
                    msg.push_str("\n  - ");
                    msg.push_str(&v.to_string());
                }
                panic!("{msg}");
            }
            AuditMode::Collect => self.violations.extend(found),
        }
    }

    /// Handles a packet arriving at a node: switches forward (with
    /// spraying), hosts dispatch to the bound agent.
    fn on_arrival(&mut self, now: SimTime, node: NodeId, packet: Packet) {
        match self.topo.role(node) {
            NodeRole::Host(host) => {
                debug_assert_eq!(
                    host, packet.dst,
                    "packet for {} delivered to {host}",
                    packet.dst
                );
                let agent = self.agent_for(packet.flow, host);
                if self.is_agent_crashed(agent) {
                    // The host process is down: the packet is destroyed on
                    // arrival instead of reaching a handler.
                    self.metrics.count(Counter::PacketsLostToFault, 1);
                    self.ledger.lost_to_crash += 1;
                    return;
                }
                self.ledger.delivered += 1;
                self.note_flow_activity(now, packet.flow);
                self.dispatch(now, agent, |a, ctx| a.on_packet(packet, ctx));
            }
            _ => {
                let cands = self.topo.candidates(node, packet.dst);
                debug_assert!(
                    !cands.is_empty(),
                    "switch {node} has no route to {}",
                    packet.dst
                );
                let pick = if cands.len() == 1 {
                    0
                } else {
                    self.rng.next_bounded(cands.len() as u64) as usize
                };
                let port = cands[pick];
                self.enqueue_on_port(now, port, packet);
            }
        }
    }

    fn agent_for(&self, flow: FlowId, host: HostId) -> AgentId {
        self.flows[flow.index()]
            .agent_at(host)
            .unwrap_or_else(|| panic!("{flow} has no agent bound at {host}"))
    }

    fn enqueue_on_port(&mut self, now: SimTime, port: PortId, mut packet: Packet) {
        // Any packet offered to a port counts as forward progress for its
        // flow — an RTO retransmission into a dead link is activity, so the
        // liveness watchdog only flags flows that stopped *trying*.
        self.note_flow_activity(now, packet.flow);
        if self.fidelity.is_some() && self.try_express(now, port, packet) {
            return;
        }
        if self.link_down[port.index()] {
            // A down link blackholes everything offered to it; packets
            // already queued stay put and drain after link-up.
            self.metrics.count(Counter::PacketsLostToFault, 1);
            self.ledger.lost_to_fault += 1;
            return;
        }
        let (loss, corrupt) = self.impairments[port.index()];
        if loss > 0.0 || corrupt > 0.0 {
            let draw = self.fault_rng.next_f64();
            if draw < loss {
                self.metrics.count(Counter::PacketsLostToFault, 1);
                self.ledger.lost_to_fault += 1;
                return;
            }
            if draw < loss + corrupt {
                if packet.kind == PacketKind::Data && !packet.trimmed {
                    // Corrupted payload: deliver the header only, like a
                    // trimming switch, so the receiver can NACK it.
                    packet.trim();
                    self.ledger.trimmed += 1;
                } else {
                    // Control packets have nothing to trim: destroyed.
                    self.metrics.count(Counter::PacketsLostToFault, 1);
                    self.ledger.lost_to_fault += 1;
                    return;
                }
            }
        }
        let outcome = self.ports[port.index()]
            .queue
            .enqueue(packet, &mut self.rng);
        match outcome {
            EnqueueOutcome::Trimmed => self.ledger.trimmed += 1,
            EnqueueOutcome::Dropped => self.ledger.dropped_queue += 1,
            EnqueueOutcome::Queued => {}
        }
        self.sample_trace(now, port);
        if outcome != EnqueueOutcome::Dropped {
            self.try_start_tx(now, port);
        }
        if self.fidelity.is_some() {
            self.note_congestion(now, port, outcome, packet);
        }
    }

    /// Hybrid-fidelity hysteresis: a trim, a drop, or queue occupancy past
    /// the ECN low watermark marks the port hot for the dwell window. On a
    /// cold→hot transition the flow's sender (if bound locally) is told via
    /// [`Note::FidelityShift`] so protocols can react to the regime change.
    fn note_congestion(
        &mut self,
        now: SimTime,
        port: PortId,
        outcome: EnqueueOutcome,
        packet: Packet,
    ) {
        let congested = outcome != EnqueueOutcome::Queued || {
            let q = &self.ports[port.index()].queue;
            q.data_bytes() >= q.config().mark_low_bytes
        };
        if !congested {
            return;
        }
        let Some(fid) = &mut self.fidelity else {
            return;
        };
        if fid.mark_hot(port.index(), now) {
            if let Some(agent) = self
                .flows
                .get(packet.flow.index())
                .and_then(|b| b.agent_at(packet.src))
            {
                self.dispatch(now, agent, |a, ctx| a.on_note(Note::FidelityShift, ctx));
            }
        }
    }

    /// True when the port can be modeled as a pure delay line: empty,
    /// healthy, not pinned, outside the congestion dwell window, and with a
    /// virtual backlog below the configured ceiling.
    ///
    /// A transmitting port with an empty queue is still cold: `free_at`
    /// tracks the in-flight packet's TxDone (`try_start_tx` keeps it
    /// current), so an express departure `max(t, free_at) + ser` lands
    /// exactly where FIFO store-and-forward would put it. This keeps
    /// steady full-rate streams on uncontended paths — back-to-back
    /// packets with no standing queue — on the express path.
    #[inline]
    fn port_is_cold(&self, fid: &FidelityState, port: PortId, t: SimTime) -> bool {
        let i = port.index();
        if fid.always_hot[i] || fid.hot_until[i] > t.0 || self.link_down[i] {
            return false;
        }
        self.ports[i].queue.is_empty()
            && fid.free_at[i].saturating_sub(t.0) <= fid.cfg.hot_backlog.0
    }

    /// Express cut-through: if `first` is cold, advance the packet across
    /// consecutive cold hops analytically and schedule exactly one event —
    /// the arrival at its destination host, an `Inject` on the first hot
    /// port, or an export to the owning shard. Returns false (taking no
    /// action) when the first port is hot.
    fn try_express(&mut self, now: SimTime, first: PortId, packet: Packet) -> bool {
        let mut fid = self.fidelity.take().expect("caller checked fidelity");
        let took = self.express_walk(&mut fid, now, first, packet);
        self.fidelity = Some(fid);
        took
    }

    fn express_walk(
        &mut self,
        fid: &mut FidelityState,
        now: SimTime,
        first: PortId,
        packet: Packet,
    ) -> bool {
        if !self.port_is_cold(fid, first, now) {
            return false;
        }
        let mut t = now;
        let mut port = first;
        let mut hops = 0u64;
        loop {
            // One cold hop in closed form: FIFO store-and-forward timing
            // against the port's virtual serialization horizon.
            let i = port.index();
            let spec = self.topo.port(port);
            let ser = spec.link.bandwidth.serialize_time(packet.size);
            let latency = spec.link.latency;
            let node = spec.to;
            let depart = SimTime(t.0.max(fid.free_at[i])) + ser;
            fid.free_at[i] = depart.0;
            t = depart + latency;
            hops += 1;
            if let Some(of) = &self.shard_of {
                if of[node.index()] != self.my_shard {
                    // Crossing the shard boundary: hand the packet to the
                    // owning shard at its arrival time.
                    self.outbox.push((t, node, packet));
                    self.ledger.exported += 1;
                    break;
                }
            }
            match self.topo.role(node) {
                NodeRole::Host(host) => {
                    debug_assert_eq!(
                        host, packet.dst,
                        "express walk for {} reached {host}",
                        packet.dst
                    );
                    self.events.schedule(t, Event::Arrival { node, packet });
                    break;
                }
                _ => {
                    // The spray draw happens here, exactly as the packet-
                    // level path would draw it at this switch.
                    let cands = self.topo.candidates(node, packet.dst);
                    debug_assert!(
                        !cands.is_empty(),
                        "switch {node} has no route to {}",
                        packet.dst
                    );
                    let pick = if cands.len() == 1 {
                        0
                    } else {
                        self.rng.next_bounded(cands.len() as u64) as usize
                    };
                    let next = cands[pick];
                    if t.0 - now.0 > fid.cfg.max_lookahead.0 {
                        // The walk's virtual clock has run too far ahead of
                        // the wall clock (a long-haul hop, typically) for
                        // current port state — or a `free_at` reservation —
                        // to mean anything at `t`. Defer: the Inject fires
                        // at `t` and re-tries the express path with fresh
                        // state.
                        fid.stats.deferrals += 1;
                        self.events
                            .schedule(t, Event::Inject { port: next, packet });
                        break;
                    }
                    if self.port_is_cold(fid, next, t) {
                        port = next;
                    } else {
                        // Hot port ahead: fall back to packet fidelity. The
                        // Inject re-enters `enqueue_on_port` directly, so
                        // the spray draw just made is not repeated.
                        fid.stats.fallbacks += 1;
                        self.events
                            .schedule(t, Event::Inject { port: next, packet });
                        break;
                    }
                }
            }
        }
        fid.stats.packets += 1;
        fid.stats.hops += hops;
        // Each analytic hop elides one TxDone and one Arrival; the walk
        // then schedules a single real event.
        fid.stats.saved_events += 2 * hops - 1;
        self.ledger.express += 1;
        true
    }

    #[inline]
    fn sample_trace(&mut self, now: SimTime, port: PortId) {
        if !self.tracing {
            return;
        }
        if let Some(trace) = &mut self.traces[port.index()] {
            let bytes = self.ports[port.index()].queue.total_bytes();
            trace.push((now, bytes));
        }
    }

    /// Starts transmitting the next queued packet if the port is idle:
    /// store-and-forward — the packet is delivered to the next node after
    /// serialization plus propagation.
    fn try_start_tx(&mut self, now: SimTime, port: PortId) {
        if self.link_down[port.index()] {
            return;
        }
        let rt = &mut self.ports[port.index()];
        if rt.busy {
            return;
        }
        let Some(pkt) = rt.queue.dequeue() else {
            return;
        };
        rt.busy = true;
        let spec = self.topo.port(port);
        let ser = spec.link.bandwidth.serialize_time(pkt.size);
        // With hybrid fidelity the transmitter may owe virtual backlog from
        // an earlier express walk; serialize behind it so per-port FIFO
        // ordering survives the fidelity transition. Disabled, `start` is
        // `now` and the schedule is bit-identical to the pre-fidelity
        // engine.
        let start = match &self.fidelity {
            Some(f) => SimTime(now.0.max(f.free_at[port.index()])),
            None => now,
        };
        let done = start + ser;
        let arrive = done + spec.link.latency;
        let to = spec.to;
        self.events.schedule(done, Event::TxDone { port });
        if let Some(f) = &mut self.fidelity {
            f.free_at[port.index()] = done.0;
        }
        let exported = match &self.shard_of {
            Some(of) if of[to.index()] != self.my_shard => {
                self.outbox.push((arrive, to, pkt));
                self.ledger.exported += 1;
                true
            }
            _ => false,
        };
        if !exported {
            self.events.schedule(
                arrive,
                Event::Arrival {
                    node: to,
                    packet: pkt,
                },
            );
        }
        self.sample_trace(now, port);
    }

    /// Invokes an agent handler and applies the effects it produced.
    fn dispatch<F>(&mut self, now: SimTime, agent: AgentId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut Ctx),
    {
        if self.is_agent_crashed(agent) {
            // Crashed agents run no handlers: timers, flow starts and
            // notifies addressed to them silently die.
            return;
        }
        let mut effects = self.effects_pool.pop().unwrap_or_default();
        debug_assert!(effects.is_empty());
        {
            let mut ctx = Ctx {
                now,
                self_id: agent,
                effects: &mut effects,
            };
            f(self.agents[agent.index()].as_mut(), &mut ctx);
        }
        self.apply_effects(now, &mut effects);
        effects.clear();
        self.effects_pool.push(effects);
    }

    /// The `[agent][slot]` cancelable-timer entry, growing both levels
    /// lazily. A free function over the field (not `&mut self`) so callers
    /// can hold the entry while also borrowing `self.events`.
    fn slot_entry(
        timer_slots: &mut Vec<Vec<Option<TimerHandle>>>,
        agent: AgentId,
        slot: u32,
    ) -> &mut Option<TimerHandle> {
        if timer_slots.len() <= agent.index() {
            timer_slots.resize_with(agent.index() + 1, Vec::new);
        }
        let slots = &mut timer_slots[agent.index()];
        if slots.len() <= slot as usize {
            slots.resize(slot as usize + 1, None);
        }
        &mut slots[slot as usize]
    }

    fn apply_effects(&mut self, now: SimTime, effects: &mut Vec<Effect>) {
        // Effects can nest (a Notify handler emits more effects), so move
        // the buffer out while iterating; nested dispatches use their own
        // buffer from the pool. The buffer (and its capacity) is handed
        // back to `effects` afterwards so the pool never loses warm
        // allocations to this drain.
        let mut drained: Vec<Effect> = std::mem::take(effects);
        for effect in drained.drain(..) {
            match effect {
                Effect::Send {
                    from,
                    packet,
                    delay,
                } => {
                    assert_ne!(packet.dst, from, "packet addressed to its own host");
                    self.ledger.created += 1;
                    let node = self.topo.host_node(from);
                    let egress = self.topo.ports_of(node);
                    assert_eq!(egress.len(), 1, "host {from} must have exactly one NIC");
                    let port = egress[0];
                    if delay == SimDuration::ZERO {
                        self.enqueue_on_port(now, port, packet);
                    } else {
                        self.events
                            .schedule(now + delay, Event::Inject { port, packet });
                    }
                }
                Effect::Timer { agent, at, kind } => {
                    self.events.schedule(at, Event::Timer { agent, kind });
                    self.metrics.timer_churn.armed += 1;
                }
                Effect::RearmTimer {
                    agent,
                    slot,
                    at,
                    kind,
                } => {
                    let entry = Self::slot_entry(&mut self.timer_slots, agent, slot);
                    // Move the live heap entry in place when the slot still
                    // holds one; otherwise (first arm, or the timer already
                    // fired) insert fresh and remember the new handle.
                    let moved = match *entry {
                        Some(h) if self.events.reschedule(h, at) => {
                            *self.events.event_mut(h).expect("live: just rescheduled") =
                                Event::Timer { agent, kind };
                            true
                        }
                        _ => false,
                    };
                    if moved {
                        self.metrics.timer_churn.rescheduled += 1;
                    } else {
                        *entry = Some(
                            self.events
                                .schedule_cancelable(at, Event::Timer { agent, kind }),
                        );
                        self.metrics.timer_churn.armed += 1;
                    }
                }
                Effect::CancelTimer { agent, slot } => {
                    let entry = Self::slot_entry(&mut self.timer_slots, agent, slot);
                    if let Some(h) = entry.take() {
                        if self.events.cancel(h).is_some() {
                            self.metrics.timer_churn.canceled += 1;
                        }
                    }
                }
                Effect::Notify { agent, note } => {
                    self.dispatch(now, agent, |a, ctx| a.on_note(note, ctx));
                }
                Effect::FlowDone { flow } => {
                    self.metrics.flow_done(flow, now);
                }
                Effect::Count { counter, amount } => {
                    self.metrics.count(counter, amount);
                }
                Effect::FailoverLatency { flow, latency } => {
                    self.metrics.failover_latency(flow, latency);
                }
            }
        }
        *effects = drained;
    }
}

#[cfg(test)]
mod tests {
    use crate::flows::{install_flow, FlowSpec};
    use crate::packet::HostId;
    use crate::sim::Simulator;
    use crate::time::{SimDuration, SimTime};
    use crate::topology::{two_dc_leaf_spine, TwoDcParams};

    #[test]
    fn port_trace_records_occupancy() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 3);
        let dst = sim.topology().hosts_in_dc(1)[0];
        let down_tor = sim.topology().down_tor_port(dst);
        sim.trace_port(down_tor);
        install_flow(
            &mut sim,
            FlowSpec::new(HostId(0), dst, 2_000_000),
            SimTime::ZERO,
        );
        sim.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
        let trace = sim.port_trace(down_tor);
        assert!(!trace.is_empty(), "traced port saw traffic");
        // Timestamps are non-decreasing and occupancy returns to zero.
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(trace.last().unwrap().1, 0, "queue drains by completion");
        assert!(trace.iter().any(|&(_, b)| b > 0), "queue actually built");
    }

    #[test]
    fn untraced_ports_record_nothing() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 3);
        let dst = sim.topology().hosts_in_dc(1)[0];
        let down_tor = sim.topology().down_tor_port(dst);
        install_flow(
            &mut sim,
            FlowSpec::new(HostId(0), dst, 100_000),
            SimTime::ZERO,
        );
        sim.run(None);
        assert!(sim.port_trace(down_tor).is_empty());
    }
}

#[cfg(test)]
mod dispatch_tests {
    use crate::agent::{Agent, Ctx, Note};
    use crate::events::TimerKind;
    use crate::flows::{install_flow, FlowSpec};
    use crate::packet::{AgentId, HostId, Packet};
    use crate::sim::Simulator;
    use crate::time::{SimDuration, SimTime};
    use crate::topology::{two_dc_leaf_spine, TwoDcParams};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// An agent that records when its callbacks fire.
    struct Probe {
        started_at: Arc<AtomicU64>,
        timer_at: Arc<AtomicU64>,
        notified: Arc<AtomicU64>,
        peer: Option<AgentId>,
    }

    impl Agent for Probe {
        fn on_start(&mut self, ctx: &mut Ctx) {
            // ordering: Relaxed — the simulator is single-threaded; atomics
            // here only give the test probes shared mutability.
            self.started_at.store(ctx.now.0, Ordering::Relaxed);
            ctx.arm_timer(
                ctx.now + SimDuration::from_micros(5),
                TimerKind::Custom { tag: 7 },
            );
            if let Some(peer) = self.peer {
                ctx.notify(peer, Note::PacketsGranted { count: 3 });
            }
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
            if matches!(kind, TimerKind::Custom { tag: 7, .. }) {
                // ordering: Relaxed — single-threaded simulator, see on_start.
                self.timer_at.store(ctx.now.0, Ordering::Relaxed);
            }
        }
        fn on_note(&mut self, note: Note, _ctx: &mut Ctx) {
            if let Note::PacketsGranted { count } = note {
                // ordering: Relaxed — single-threaded simulator, see on_start.
                self.notified.fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn timers_fire_at_the_armed_time() {
        let mut sim = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 1);
        let started = Arc::new(AtomicU64::new(0));
        let fired = Arc::new(AtomicU64::new(0));
        let agent = sim.add_agent(Box::new(Probe {
            started_at: started.clone(),
            timer_at: fired.clone(),
            notified: Arc::new(AtomicU64::new(0)),
            peer: None,
        }));
        let start = SimTime::ZERO + SimDuration::from_micros(3);
        sim.schedule_start(start, agent);
        sim.run(None);
        // ordering: Relaxed — single-threaded readback after the run.
        assert_eq!(started.load(Ordering::Relaxed), start.0);
        assert_eq!(
            // ordering: Relaxed — single-threaded readback after the run.
            fired.load(Ordering::Relaxed),
            (start + SimDuration::from_micros(5)).0
        );
    }

    #[test]
    fn notify_is_delivered_at_the_same_timestamp() {
        let mut sim = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 1);
        let notified = Arc::new(AtomicU64::new(0));
        let peer = sim.add_agent(Box::new(Probe {
            started_at: Arc::new(AtomicU64::new(0)),
            timer_at: Arc::new(AtomicU64::new(0)),
            notified: notified.clone(),
            peer: None,
        }));
        let sender = sim.add_agent(Box::new(Probe {
            started_at: Arc::new(AtomicU64::new(0)),
            timer_at: Arc::new(AtomicU64::new(0)),
            notified: Arc::new(AtomicU64::new(0)),
            peer: Some(peer),
        }));
        sim.schedule_start(SimTime::ZERO, sender);
        sim.run(None);
        // ordering: Relaxed — single-threaded readback after the run.
        assert_eq!(notified.load(Ordering::Relaxed), 3);
    }

    /// An agent that re-arms one timer slot on every firing for a fixed
    /// number of rounds, then cancels a second, never-firing slot.
    struct Rearmer {
        rounds_left: u64,
        fired: Arc<AtomicU64>,
    }

    impl Agent for Rearmer {
        fn on_start(&mut self, ctx: &mut Ctx) {
            // Slot 1 is armed once and canceled before it can ever fire.
            ctx.rearm_timer(1, ctx.now + SimDuration::from_secs(1), TimerKind::Rto);
            ctx.rearm_timer(
                0,
                ctx.now + SimDuration::from_micros(1),
                TimerKind::Custom { tag: 1 },
            );
            // Re-arm slot 0 many times within one handler: only the last
            // deadline may fire.
            for k in 2..100u64 {
                ctx.rearm_timer(
                    0,
                    ctx.now + SimDuration::from_micros(k),
                    TimerKind::Custom { tag: k },
                );
            }
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
            let TimerKind::Custom { tag } = kind else {
                panic!("slot 1 was canceled and must never fire");
            };
            assert_eq!(tag, 99, "only the last re-arm's payload may fire");
            // ordering: Relaxed — single-threaded simulator test probe.
            self.fired.fetch_add(1, Ordering::Relaxed);
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                ctx.rearm_timer(
                    0,
                    ctx.now + SimDuration::from_micros(99),
                    TimerKind::Custom { tag: 99 },
                );
            } else {
                ctx.cancel_timer(1);
            }
        }
    }

    #[test]
    fn rearmed_slot_fires_once_per_round_at_the_latest_deadline() {
        let mut sim = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 1);
        let fired = Arc::new(AtomicU64::new(0));
        let agent = sim.add_agent(Box::new(Rearmer {
            rounds_left: 9,
            fired: fired.clone(),
        }));
        sim.schedule_start(SimTime::ZERO, agent);
        let report = sim.run(None);
        assert_eq!(report.stop, crate::sim::StopReason::Idle);
        // ordering: Relaxed — single-threaded readback after the run.
        assert_eq!(fired.load(Ordering::Relaxed), 10, "one firing per round");
        let churn = sim.metrics().timer_churn;
        // Slot 0: 1 fresh arm, 98 in-place moves in `on_start`, and one
        // fresh arm per firing round (the old handle is stale once the
        // timer pops). Slot 1: 1 fresh arm, canceled at the end.
        assert_eq!(churn.armed, 2 + 9);
        assert_eq!(churn.rescheduled, 98);
        assert_eq!(churn.canceled, 1);
        assert_eq!(churn.fired, 10);
        assert_eq!(churn.discarded_stale, 0);
        // 1 start + 10 timer pops; the 107 re-arms added no heap traffic.
        assert_eq!(sim.metrics().events_processed, 11);
    }

    /// A delayed send (`send_after`) must reach the destination later than
    /// an immediate send issued at the same instant.
    struct DelayedSender {
        dst: HostId,
        src: HostId,
    }
    impl Agent for DelayedSender {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let immediate = Packet::data(crate::packet::FlowId(0), 0, self.src, self.dst, 0);
            let delayed = Packet::data(crate::packet::FlowId(0), 1, self.src, self.dst, 0);
            ctx.send_after(SimDuration::from_micros(50), self.src, delayed);
            ctx.send(self.src, immediate);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) {}
    }
    struct ArrivalLog {
        order: Arc<parking::Order>,
    }
    mod parking {
        use std::sync::Mutex;
        #[derive(Default)]
        pub struct Order(pub Mutex<Vec<(u64, u64)>>);
    }
    impl Agent for ArrivalLog {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
            self.order
                .0
                .lock()
                .expect("lock")
                .push((pkt.seq, ctx.now.0));
        }
    }

    #[test]
    fn send_after_delays_injection() {
        let mut sim = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 1);
        let order = Arc::new(parking::Order::default());
        let src = HostId(0);
        let dst = HostId(1);
        let flow = sim.new_flow();
        let tx = sim.add_agent(Box::new(DelayedSender { dst, src }));
        let rx = sim.add_agent(Box::new(ArrivalLog {
            order: order.clone(),
        }));
        sim.bind(flow, src, tx);
        sim.bind(flow, dst, rx);
        sim.schedule_start(SimTime::ZERO, tx);
        sim.run(None);
        let log = order.0.lock().expect("lock").clone();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, 0, "immediate packet first");
        assert_eq!(log[1].0, 1, "delayed packet second");
        assert!(
            log[1].1 >= log[0].1 + SimDuration::from_micros(50).0,
            "delay must be at least the processing time: {log:?}"
        );
    }

    /// Installing an *empty* fault plan must leave a run bit-identical to
    /// one without the fault machinery: same event count, same end time,
    /// same completion. (The fault RNG is a separate stream only drawn for
    /// ports with impairments, and an empty plan schedules nothing.)
    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let run = |with_plan: bool| {
            let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
            let mut sim = Simulator::new(topo, 42);
            let dst = sim.topology().hosts_in_dc(1)[0];
            let handle = install_flow(
                &mut sim,
                FlowSpec::new(HostId(0), dst, 2_000_000),
                SimTime::ZERO,
            );
            if with_plan {
                sim.install_faults(&crate::faults::FaultPlan::new())
                    .expect("empty plan is valid");
            }
            let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
            let done = sim.metrics().completion(handle.flow).expect("completes");
            (report.events, report.end_time, done)
        };
        assert_eq!(run(false), run(true));
    }

    /// A link-down window blackholes packets offered to the port while it
    /// is down; the flow still completes after the link returns (RTO-driven
    /// retransmission), and the destroyed packets are counted.
    #[test]
    fn link_flap_blackholes_then_flow_recovers() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 7);
        let dst = sim.topology().hosts_in_dc(1)[0];
        let down_tor = sim.topology().down_tor_port(dst);
        let handle = install_flow(
            &mut sim,
            FlowSpec::new(HostId(0), dst, 2_000_000),
            SimTime::ZERO,
        );
        let down = SimTime::ZERO + SimDuration::from_micros(50);
        let plan = crate::faults::FaultPlan::new().link_down_window(
            down_tor,
            down,
            down + SimDuration::from_micros(300),
        );
        sim.install_faults(&plan).expect("valid plan");
        let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
        assert_eq!(report.stop, crate::sim::StopReason::Idle);
        assert!(sim.metrics().completion(handle.flow).is_some());
        assert!(
            sim.metrics()
                .counter(crate::agent::Counter::PacketsLostToFault)
                > 0,
            "the outage overlaps the transfer"
        );
    }

    /// The strict auditor (with the liveness watchdog armed) must stay
    /// silent through a faulty but recovering run: link flap, blackholed
    /// packets, RTO retransmissions — everything still conserves.
    #[test]
    fn strict_audit_is_clean_through_a_link_flap() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 7);
        sim.set_audit(
            crate::audit::AuditConfig::strict()
                .every(Some(1_000))
                .with_liveness(SimDuration::from_secs(10)),
        );
        let dst = sim.topology().hosts_in_dc(1)[0];
        let down_tor = sim.topology().down_tor_port(dst);
        let handle = install_flow(
            &mut sim,
            FlowSpec::new(HostId(0), dst, 2_000_000),
            SimTime::ZERO,
        );
        let down = SimTime::ZERO + SimDuration::from_micros(50);
        let plan = crate::faults::FaultPlan::new().link_down_window(
            down_tor,
            down,
            down + SimDuration::from_micros(300),
        );
        sim.install_faults(&plan).expect("valid plan");
        let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
        assert_eq!(report.stop, crate::sim::StopReason::Idle);
        assert!(report.violations.is_empty());
        assert_eq!(
            report.terminated_reason(),
            crate::sim::TerminatedReason::Completed
        );
        assert!(sim.metrics().completion(handle.flow).is_some());
        // At idle nothing is in flight: the ledger must balance exactly.
        let ledger = *sim.ledger();
        assert_eq!(ledger.created, ledger.terminal());
        assert!(ledger.delivered > 0);
        assert!(ledger.lost_to_fault > 0, "the outage destroyed packets");
    }

    /// A sender that fires one packet and never retransmits wedges its
    /// flow; the collect-mode watchdog must flag it when the simulator
    /// goes idle with the flow incomplete.
    #[test]
    fn collect_mode_flags_a_wedged_flow_at_idle() {
        struct OneShot {
            src: HostId,
            dst: HostId,
        }
        impl Agent for OneShot {
            fn on_start(&mut self, ctx: &mut Ctx) {
                let pkt = Packet::data(crate::packet::FlowId(0), 0, self.src, self.dst, 0);
                ctx.send(self.src, pkt);
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) {}
        }
        struct Swallow;
        impl Agent for Swallow {
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) {}
        }
        let mut sim = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 1);
        sim.set_audit(
            crate::audit::AuditConfig::collect().with_liveness(SimDuration::from_secs(1)),
        );
        let (src, dst) = (HostId(0), HostId(1));
        let flow = sim.new_flow();
        let tx = sim.add_agent(Box::new(OneShot { src, dst }));
        let rx = sim.add_agent(Box::new(Swallow));
        sim.bind(flow, src, tx);
        sim.bind(flow, dst, rx);
        sim.schedule_start(SimTime::ZERO, tx);
        let report = sim.run(None);
        assert_eq!(report.stop, crate::sim::StopReason::Idle);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            crate::audit::InvariantViolation::StuckFlow { idle: true, .. }
        ));
        assert_eq!(
            report.terminated_reason(),
            crate::sim::TerminatedReason::InvariantViolation
        );
    }

    /// A crash window on the receiving agent destroys packets on arrival;
    /// after restoration the sender's retransmissions complete the flow.
    #[test]
    fn agent_crash_window_recovers_after_restore() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 9);
        let dst = sim.topology().hosts_in_dc(1)[0];
        let handle = install_flow(
            &mut sim,
            FlowSpec::new(HostId(0), dst, 2_000_000),
            SimTime::ZERO,
        );
        let crash = SimTime::ZERO + SimDuration::from_micros(50);
        let plan = crate::faults::FaultPlan::new().crash_agent_window(
            handle.receiver,
            crash,
            crash + SimDuration::from_micros(500),
        );
        sim.install_faults(&plan).expect("valid plan");
        let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
        assert_eq!(report.stop, crate::sim::StopReason::Idle);
        assert!(sim.metrics().completion(handle.flow).is_some());
        assert!(
            sim.metrics()
                .counter(crate::agent::Counter::PacketsLostToFault)
                > 0
        );
    }
}
