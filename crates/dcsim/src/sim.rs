//! The simulator: event loop, port transmit state machines, switch
//! forwarding with packet spraying, and agent dispatch.

use crate::agent::{Agent, Ctx, Effect};
use crate::events::{Event, EventQueue};
use crate::metrics::SimMetrics;
use crate::packet::{AgentId, FlowId, HostId, NodeId, Packet, PortId};
use crate::queues::{EnqueueOutcome, PortQueue, QueueStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeRole, Topology};
use trace::{derive_seed, SplitMix64};

/// Why [`Simulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No events left: every flow is finished and every timer expired.
    Idle,
    /// The time limit was reached with events still pending.
    TimeLimit,
    /// The event-count safety cap was reached (indicates a livelock bug or
    /// an undersized cap).
    EventCap,
}

/// Outcome of a run.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Simulated time at stop.
    pub end_time: SimTime,
    /// Events processed during this call.
    pub events: u64,
}

struct PortRuntime {
    queue: PortQueue,
    busy: bool,
}

/// Binding of a flow to the agent handling it at each host it touches.
#[derive(Debug, Default, Clone)]
struct FlowBinding {
    endpoints: Vec<(HostId, AgentId)>,
}

/// A packet-level discrete-event network simulator.
pub struct Simulator {
    topo: Topology,
    events: EventQueue,
    ports: Vec<PortRuntime>,
    agents: Vec<Box<dyn Agent>>,
    flows: Vec<FlowBinding>,
    rng: SplitMix64,
    metrics: SimMetrics,
    event_cap: u64,
    effects_pool: Vec<Vec<Effect>>,
    /// Occupancy traces of designated ports: (time, total queued bytes)
    /// sampled at every enqueue and dequeue.
    traces: std::collections::HashMap<PortId, Vec<(SimTime, u64)>>,
}

impl Simulator {
    /// Creates a simulator over `topo`. All randomness (packet spraying,
    /// ECN ramp draws) derives from `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let ports = (0..topo.port_count())
            .map(|i| PortRuntime {
                queue: PortQueue::new(topo.port(PortId(i as u32)).queue),
                busy: false,
            })
            .collect();
        Simulator {
            topo,
            events: EventQueue::new(),
            ports,
            agents: Vec::new(),
            flows: Vec::new(),
            rng: SplitMix64::new(derive_seed(seed, 0xD15C_0517)),
            metrics: SimMetrics::default(),
            event_cap: 2_000_000_000,
            effects_pool: Vec::new(),
            traces: std::collections::HashMap::new(),
        }
    }

    /// The topology this simulator runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Queue statistics of a port (for congestion-point assertions).
    pub fn port_stats(&self, port: PortId) -> QueueStats {
        self.ports[port.index()].queue.stats()
    }

    /// Sets the safety cap on processed events per `run` call.
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Starts recording an occupancy trace of `port`: one `(time, queued
    /// bytes)` sample per enqueue and per dequeue.
    pub fn trace_port(&mut self, port: PortId) {
        self.traces.entry(port).or_default();
    }

    /// The recorded occupancy trace of a port (empty unless
    /// [`Simulator::trace_port`] was called before running).
    pub fn port_trace(&self, port: PortId) -> &[(SimTime, u64)] {
        self.traces.get(&port).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Registers an agent, returning its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(agent);
        id
    }

    /// Allocates a new flow id.
    pub fn new_flow(&mut self) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowBinding::default());
        id
    }

    /// Binds packets of `flow` arriving at `host` to `agent`.
    ///
    /// # Panics
    /// Panics if the (flow, host) pair is already bound.
    pub fn bind(&mut self, flow: FlowId, host: HostId, agent: AgentId) {
        let binding = &mut self.flows[flow.index()];
        assert!(
            binding.endpoints.iter().all(|&(h, _)| h != host),
            "{flow} already bound at {host}"
        );
        binding.endpoints.push((host, agent));
    }

    /// Schedules an agent's `on_start` at `at`.
    pub fn schedule_start(&mut self, at: SimTime, agent: AgentId) {
        self.events.schedule(at, Event::FlowStart { agent });
    }

    /// Runs until idle, the optional time limit, or the event cap.
    pub fn run(&mut self, limit: Option<SimTime>) -> RunReport {
        let mut processed = 0u64;
        loop {
            if processed >= self.event_cap {
                return self.report(StopReason::EventCap, processed);
            }
            if let (Some(limit), Some(next)) = (limit, self.events.peek_time()) {
                if next > limit {
                    return self.report(StopReason::TimeLimit, processed);
                }
            }
            let Some((now, event)) = self.events.pop() else {
                return self.report(StopReason::Idle, processed);
            };
            processed += 1;
            self.metrics.events_processed += 1;
            match event {
                Event::Arrival { node, packet } => self.on_arrival(now, node, packet),
                Event::TxDone { port } => {
                    self.ports[port.index()].busy = false;
                    self.try_start_tx(now, port);
                }
                Event::Timer { agent, kind } => {
                    self.dispatch(now, agent, |a, ctx| a.on_timer(kind, ctx));
                }
                Event::FlowStart { agent } => {
                    self.dispatch(now, agent, |a, ctx| a.on_start(ctx));
                }
                Event::Inject { port, packet } => {
                    self.enqueue_on_port(now, port, packet);
                }
            }
        }
    }

    fn report(&self, stop: StopReason, events: u64) -> RunReport {
        RunReport {
            stop,
            end_time: self.now(),
            events,
        }
    }

    /// Handles a packet arriving at a node: switches forward (with
    /// spraying), hosts dispatch to the bound agent.
    fn on_arrival(&mut self, now: SimTime, node: NodeId, packet: Packet) {
        match self.topo.role(node) {
            NodeRole::Host(host) => {
                debug_assert_eq!(
                    host, packet.dst,
                    "packet for {} delivered to {host}",
                    packet.dst
                );
                let agent = self.agent_for(packet.flow, host);
                self.dispatch(now, agent, |a, ctx| a.on_packet(packet, ctx));
            }
            _ => {
                let cands = self.topo.candidates(node, packet.dst);
                debug_assert!(!cands.is_empty(), "switch {node} has no route to {}", packet.dst);
                let pick = if cands.len() == 1 {
                    0
                } else {
                    self.rng.next_bounded(cands.len() as u64) as usize
                };
                let port = cands[pick];
                self.enqueue_on_port(now, port, packet);
            }
        }
    }

    fn agent_for(&self, flow: FlowId, host: HostId) -> AgentId {
        let binding = &self.flows[flow.index()];
        binding
            .endpoints
            .iter()
            .find(|&&(h, _)| h == host)
            .map(|&(_, a)| a)
            .unwrap_or_else(|| panic!("{flow} has no agent bound at {host}"))
    }

    fn enqueue_on_port(&mut self, now: SimTime, port: PortId, packet: Packet) {
        let outcome = self.ports[port.index()].queue.enqueue(packet, &mut self.rng);
        self.sample_trace(now, port);
        if outcome != EnqueueOutcome::Dropped {
            self.try_start_tx(now, port);
        }
    }

    #[inline]
    fn sample_trace(&mut self, now: SimTime, port: PortId) {
        if self.traces.is_empty() {
            return;
        }
        let bytes = self.ports[port.index()].queue.total_bytes();
        if let Some(trace) = self.traces.get_mut(&port) {
            trace.push((now, bytes));
        }
    }

    /// Starts transmitting the next queued packet if the port is idle:
    /// store-and-forward — the packet is delivered to the next node after
    /// serialization plus propagation.
    fn try_start_tx(&mut self, now: SimTime, port: PortId) {
        let rt = &mut self.ports[port.index()];
        if rt.busy {
            return;
        }
        let Some(pkt) = rt.queue.dequeue() else {
            return;
        };
        rt.busy = true;
        let spec = self.topo.port(port);
        let ser = spec.link.bandwidth.serialize_time(pkt.size);
        let arrive = now + ser + spec.link.latency;
        self.events.schedule(now + ser, Event::TxDone { port });
        self.events.schedule(
            arrive,
            Event::Arrival {
                node: spec.to,
                packet: pkt,
            },
        );
        self.sample_trace(now, port);
    }

    /// Invokes an agent handler and applies the effects it produced.
    fn dispatch<F>(&mut self, now: SimTime, agent: AgentId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut Ctx),
    {
        let mut effects = self.effects_pool.pop().unwrap_or_default();
        debug_assert!(effects.is_empty());
        {
            let mut ctx = Ctx {
                now,
                self_id: agent,
                effects: &mut effects,
            };
            f(self.agents[agent.index()].as_mut(), &mut ctx);
        }
        self.apply_effects(now, &mut effects);
        effects.clear();
        self.effects_pool.push(effects);
    }

    fn apply_effects(&mut self, now: SimTime, effects: &mut Vec<Effect>) {
        // Effects can nest (a Notify handler emits more effects), so drain
        // by index; nested dispatches use their own buffer from the pool.
        let drained: Vec<Effect> = std::mem::take(effects);
        for effect in drained {
            match effect {
                Effect::Send {
                    from,
                    packet,
                    delay,
                } => {
                    assert_ne!(packet.dst, from, "packet addressed to its own host");
                    let node = self.topo.host_node(from);
                    let egress = self.topo.ports_of(node);
                    assert_eq!(egress.len(), 1, "host {from} must have exactly one NIC");
                    let port = egress[0];
                    if delay == SimDuration::ZERO {
                        self.enqueue_on_port(now, port, packet);
                    } else {
                        self.events
                            .schedule(now + delay, Event::Inject { port, packet });
                    }
                }
                Effect::Timer { agent, at, kind } => {
                    self.events.schedule(at, Event::Timer { agent, kind });
                }
                Effect::Notify { agent, note } => {
                    self.dispatch(now, agent, |a, ctx| a.on_note(note, ctx));
                }
                Effect::FlowDone { flow } => {
                    self.metrics.flow_done(flow, now);
                }
                Effect::Count { counter, amount } => {
                    self.metrics.count(counter, amount);
                }
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use crate::flows::{install_flow, FlowSpec};
    use crate::packet::HostId;
    use crate::sim::Simulator;
    use crate::time::{SimDuration, SimTime};
    use crate::topology::{two_dc_leaf_spine, TwoDcParams};

    #[test]
    fn port_trace_records_occupancy() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 3);
        let dst = sim.topology().hosts_in_dc(1)[0];
        let down_tor = sim.topology().down_tor_port(dst);
        sim.trace_port(down_tor);
        install_flow(&mut sim, FlowSpec::new(HostId(0), dst, 2_000_000), SimTime::ZERO);
        sim.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
        let trace = sim.port_trace(down_tor);
        assert!(!trace.is_empty(), "traced port saw traffic");
        // Timestamps are non-decreasing and occupancy returns to zero.
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(trace.last().unwrap().1, 0, "queue drains by completion");
        assert!(trace.iter().any(|&(_, b)| b > 0), "queue actually built");
    }

    #[test]
    fn untraced_ports_record_nothing() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 3);
        let dst = sim.topology().hosts_in_dc(1)[0];
        let down_tor = sim.topology().down_tor_port(dst);
        install_flow(&mut sim, FlowSpec::new(HostId(0), dst, 100_000), SimTime::ZERO);
        sim.run(None);
        assert!(sim.port_trace(down_tor).is_empty());
    }
}

#[cfg(test)]
mod dispatch_tests {
    use crate::agent::{Agent, Ctx, Note};
    use crate::events::TimerKind;
    use crate::packet::{AgentId, HostId, Packet};
    use crate::sim::Simulator;
    use crate::time::{SimDuration, SimTime};
    use crate::topology::{two_dc_leaf_spine, TwoDcParams};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// An agent that records when its callbacks fire.
    struct Probe {
        started_at: Arc<AtomicU64>,
        timer_at: Arc<AtomicU64>,
        notified: Arc<AtomicU64>,
        peer: Option<AgentId>,
    }

    impl Agent for Probe {
        fn on_start(&mut self, ctx: &mut Ctx) {
            self.started_at.store(ctx.now.0, Ordering::Relaxed);
            ctx.arm_timer(
                ctx.now + SimDuration::from_micros(5),
                TimerKind::Custom { tag: 7, epoch: 0 },
            );
            if let Some(peer) = self.peer {
                ctx.notify(peer, Note::PacketsGranted { count: 3 });
            }
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) {}
        fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
            if matches!(kind, TimerKind::Custom { tag: 7, .. }) {
                self.timer_at.store(ctx.now.0, Ordering::Relaxed);
            }
        }
        fn on_note(&mut self, note: Note, _ctx: &mut Ctx) {
            let Note::PacketsGranted { count } = note;
            self.notified.fetch_add(count, Ordering::Relaxed);
        }
    }

    #[test]
    fn timers_fire_at_the_armed_time() {
        let mut sim = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 1);
        let started = Arc::new(AtomicU64::new(0));
        let fired = Arc::new(AtomicU64::new(0));
        let agent = sim.add_agent(Box::new(Probe {
            started_at: started.clone(),
            timer_at: fired.clone(),
            notified: Arc::new(AtomicU64::new(0)),
            peer: None,
        }));
        let start = SimTime::ZERO + SimDuration::from_micros(3);
        sim.schedule_start(start, agent);
        sim.run(None);
        assert_eq!(started.load(Ordering::Relaxed), start.0);
        assert_eq!(
            fired.load(Ordering::Relaxed),
            (start + SimDuration::from_micros(5)).0
        );
    }

    #[test]
    fn notify_is_delivered_at_the_same_timestamp() {
        let mut sim = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 1);
        let notified = Arc::new(AtomicU64::new(0));
        let peer = sim.add_agent(Box::new(Probe {
            started_at: Arc::new(AtomicU64::new(0)),
            timer_at: Arc::new(AtomicU64::new(0)),
            notified: notified.clone(),
            peer: None,
        }));
        let sender = sim.add_agent(Box::new(Probe {
            started_at: Arc::new(AtomicU64::new(0)),
            timer_at: Arc::new(AtomicU64::new(0)),
            notified: Arc::new(AtomicU64::new(0)),
            peer: Some(peer),
        }));
        sim.schedule_start(SimTime::ZERO, sender);
        sim.run(None);
        assert_eq!(notified.load(Ordering::Relaxed), 3);
    }

    /// A delayed send (`send_after`) must reach the destination later than
    /// an immediate send issued at the same instant.
    struct DelayedSender {
        dst: HostId,
        src: HostId,
    }
    impl Agent for DelayedSender {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let immediate = Packet::data(crate::packet::FlowId(0), 0, self.src, self.dst, 0);
            let delayed = Packet::data(crate::packet::FlowId(0), 1, self.src, self.dst, 0);
            ctx.send_after(SimDuration::from_micros(50), self.src, delayed);
            ctx.send(self.src, immediate);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) {}
    }
    struct ArrivalLog {
        order: Arc<parking::Order>,
    }
    mod parking {
        use std::sync::Mutex;
        #[derive(Default)]
        pub struct Order(pub Mutex<Vec<(u64, u64)>>);
    }
    impl Agent for ArrivalLog {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
            self.order.0.lock().expect("lock").push((pkt.seq, ctx.now.0));
        }
    }

    #[test]
    fn send_after_delays_injection() {
        let mut sim = Simulator::new(two_dc_leaf_spine(&TwoDcParams::small_test()), 1);
        let order = Arc::new(parking::Order::default());
        let src = HostId(0);
        let dst = HostId(1);
        let flow = sim.new_flow();
        let tx = sim.add_agent(Box::new(DelayedSender { dst, src }));
        let rx = sim.add_agent(Box::new(ArrivalLog { order: order.clone() }));
        sim.bind(flow, src, tx);
        sim.bind(flow, dst, rx);
        sim.schedule_start(SimTime::ZERO, tx);
        sim.run(None);
        let log = order.0.lock().expect("lock").clone();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, 0, "immediate packet first");
        assert_eq!(log[1].0, 1, "delayed packet second");
        assert!(
            log[1].1 >= log[0].1 + SimDuration::from_micros(50).0,
            "delay must be at least the processing time: {log:?}"
        );
    }
}
