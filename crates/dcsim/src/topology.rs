//! Topology description and route computation.
//!
//! A topology is a directed graph of nodes (hosts and switches) connected by
//! ports (queue + link pairs). Routes are computed once at build time by a
//! breadth-first search per destination host: each node stores *all*
//! equal-cost next-hop ports toward each host, and switches spray packets
//! uniformly across them at forwarding time (§4.1: "We use packet
//! spraying").
//!
//! [`two_dc_leaf_spine`] builds the exact §4.1 evaluation topology: two
//! leaf–spine datacenters (8 spines × 8 leaves × 8 hosts/leaf) joined by 64
//! backbone routers, each backbone peering one spine in each datacenter over
//! a long-haul link.

use crate::packet::{HostId, NodeId, PortId};
use crate::queues::QueueConfig;
use crate::time::{Bandwidth, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Physical properties of a unidirectional link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkProps {
    /// Link rate.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub latency: SimDuration,
}

impl LinkProps {
    /// 100 Gbps / 1 µs: the intra-datacenter links of §4.1.
    pub fn datacenter() -> Self {
        LinkProps {
            bandwidth: Bandwidth::gbps(100),
            latency: SimDuration::from_micros(1),
        }
    }

    /// 100 Gbps / 1 ms: the spine↔backbone long-haul links of §4.1.
    pub fn long_haul() -> Self {
        LinkProps {
            bandwidth: Bandwidth::gbps(100),
            latency: SimDuration::from_millis(1),
        }
    }
}

/// What a node is; used for diagnostics and by experiment code that needs
/// to pick hosts per datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRole {
    /// A server. Carries its host index.
    Host(HostId),
    /// A top-of-rack (leaf) switch.
    Leaf,
    /// A spine switch.
    Spine,
    /// A backbone (long-haul) router.
    Backbone,
    /// A switch in a hand-built topology.
    Generic,
}

/// A unidirectional port: the queue and link from `from` to `to`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PortSpec {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Link properties.
    pub link: LinkProps,
    /// Queue configuration at the transmitting side.
    pub queue: QueueConfig,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct NodeSpec {
    pub role: NodeRole,
    /// Datacenter index for structured topologies (None for generic nodes).
    pub dc: Option<u32>,
    /// Output ports of this node.
    pub ports: Vec<PortId>,
}

/// Dimensions of a structured two-DC leaf–spine topology, for closed-form
/// routing. With these, candidate sets are arithmetic over each node's
/// in-order port list instead of a BFS-filled `nodes × hosts` table — the
/// table is what caps the dense representation at a few hundred hosts
/// (10k hosts × 20k nodes would be 200M inner vectors), while the closed
/// form is O(1) memory at any scale.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoDcLayout {
    /// Spines per datacenter.
    pub spines: usize,
    /// Leaves per datacenter.
    pub leaves: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Backbone routers per spine pair.
    pub backbones_per_spine: usize,
}

impl TwoDcLayout {
    fn nodes_per_dc(&self) -> usize {
        self.leaves + self.spines + self.leaves * self.hosts_per_leaf
    }

    fn hosts_per_dc(&self) -> usize {
        self.leaves * self.hosts_per_leaf
    }
}

/// Route representation: a dense BFS table for arbitrary graphs, or the
/// closed form for structured two-DC topologies. The closed form returns
/// exactly the slices the BFS would have stored (same ports, same order),
/// verified exhaustively by `structured_routes_match_bfs`.
#[derive(Debug, Clone)]
enum Routes {
    /// routes[node][host] = equal-cost output ports toward that host.
    Dense(Vec<Vec<Vec<PortId>>>),
    /// Arithmetic candidates over the two-DC layout.
    TwoDc(TwoDcLayout),
}

/// An immutable, route-annotated topology.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    ports: Vec<PortSpec>,
    /// host index -> node id.
    hosts: Vec<NodeId>,
    routes: Routes,
    /// host index -> the switch port transmitting to that host.
    down_tor: Vec<PortId>,
}

/// Incrementally builds a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeSpec>,
    ports: Vec<PortSpec>,
    hosts: Vec<NodeId>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host and returns its id.
    pub fn add_host(&mut self, dc: Option<u32>) -> HostId {
        let host = HostId(self.hosts.len() as u32);
        let node = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSpec {
            role: NodeRole::Host(host),
            dc,
            ports: Vec::new(),
        });
        self.hosts.push(node);
        host
    }

    /// Adds a switch and returns its node id.
    pub fn add_switch(&mut self, role: NodeRole, dc: Option<u32>) -> NodeId {
        assert!(!matches!(role, NodeRole::Host(_)), "use add_host for hosts");
        let node = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSpec {
            role,
            dc,
            ports: Vec::new(),
        });
        node
    }

    /// Node id of a host.
    pub fn host_node(&self, host: HostId) -> NodeId {
        self.hosts[host.index()]
    }

    /// Adds a unidirectional port from `from` to `to`.
    ///
    /// # Panics
    /// Panics on unknown nodes or an invalid queue config — catching a bad
    /// config at construction, with the offending link named, instead of
    /// deep inside [`crate::sim::Simulator::new`].
    pub fn add_port(
        &mut self,
        from: NodeId,
        to: NodeId,
        link: LinkProps,
        queue: QueueConfig,
    ) -> PortId {
        assert!(from.index() < self.nodes.len(), "unknown node {from}");
        assert!(to.index() < self.nodes.len(), "unknown node {to}");
        if let Err(e) = queue.validate() {
            panic!("invalid queue config on port {from} -> {to}: {e}");
        }
        let port = PortId(self.ports.len() as u32);
        self.ports.push(PortSpec {
            from,
            to,
            link,
            queue,
        });
        self.nodes[from.index()].ports.push(port);
        port
    }

    /// Adds a bidirectional link: one port in each direction, with possibly
    /// different queue configs per side (e.g. a shallow host NIC queue
    /// facing a deep switch buffer).
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        link: LinkProps,
        queue_a: QueueConfig,
        queue_b: QueueConfig,
    ) -> (PortId, PortId) {
        let ab = self.add_port(a, b, link, queue_a);
        let ba = self.add_port(b, a, link, queue_b);
        (ab, ba)
    }

    /// Computes routes and freezes the topology.
    ///
    /// # Panics
    /// Panics if some host is unreachable from some node (a disconnected
    /// topology is always a construction bug in this repository).
    pub fn build(self) -> Topology {
        let n = self.nodes.len();
        let mut routes: Vec<Vec<Vec<PortId>>> = vec![vec![Vec::new(); self.hosts.len()]; n];
        // Reverse adjacency: for BFS from each destination host.
        let mut rev: Vec<Vec<(NodeId, PortId)>> = vec![Vec::new(); n];
        for (i, p) in self.ports.iter().enumerate() {
            rev[p.to.index()].push((p.from, PortId(i as u32)));
        }
        for (h, &host_node) in self.hosts.iter().enumerate() {
            let mut dist = vec![u32::MAX; n];
            dist[host_node.index()] = 0;
            let mut q = VecDeque::from([host_node]);
            while let Some(node) = q.pop_front() {
                let d = dist[node.index()];
                for &(prev, _) in &rev[node.index()] {
                    if dist[prev.index()] == u32::MAX {
                        dist[prev.index()] = d + 1;
                        q.push_back(prev);
                    }
                }
            }
            for (i, node) in self.nodes.iter().enumerate() {
                if NodeId(i as u32) == host_node {
                    continue;
                }
                assert!(dist[i] != u32::MAX, "node {} cannot reach host {}", i, h);
                for &port in &node.ports {
                    let to = self.ports[port.index()].to;
                    if dist[to.index()] + 1 == dist[i] {
                        routes[i][h].push(port);
                    }
                }
                debug_assert!(!routes[i][h].is_empty());
            }
        }
        Topology::finish(self.nodes, self.ports, self.hosts, Routes::Dense(routes))
    }

    /// Freezes a topology constructed by [`two_dc_leaf_spine`] with
    /// closed-form routing — no BFS and no `nodes × hosts` table, which is
    /// what makes 10k+ host fleets constructible. The builder's contents
    /// must match `layout` exactly (checked).
    fn build_two_dc(self, layout: TwoDcLayout) -> Topology {
        assert_eq!(self.nodes.len(), {
            2 * layout.nodes_per_dc() + layout.spines * layout.backbones_per_spine
        });
        assert_eq!(self.hosts.len(), 2 * layout.hosts_per_dc());
        Topology::finish(self.nodes, self.ports, self.hosts, Routes::TwoDc(layout))
    }
}

impl Topology {
    /// Finalizes a topology: precomputes the dense host → down-ToR port
    /// map (first port transmitting to each host, matching the historical
    /// linear-scan order).
    fn finish(
        nodes: Vec<NodeSpec>,
        ports: Vec<PortSpec>,
        hosts: Vec<NodeId>,
        routes: Routes,
    ) -> Topology {
        let mut host_of_node: Vec<Option<HostId>> = vec![None; nodes.len()];
        for (h, &node) in hosts.iter().enumerate() {
            host_of_node[node.index()] = Some(HostId(h as u32));
        }
        let mut down_tor: Vec<Option<PortId>> = vec![None; hosts.len()];
        for (i, p) in ports.iter().enumerate() {
            if let Some(host) = host_of_node[p.to.index()] {
                let slot = &mut down_tor[host.index()];
                if slot.is_none() {
                    *slot = Some(PortId(i as u32));
                }
            }
        }
        let down_tor = down_tor
            .into_iter()
            .map(|p| p.expect("every host hangs off a switch"))
            .collect();
        Topology {
            nodes,
            ports,
            hosts,
            routes,
            down_tor,
        }
    }

    /// Number of nodes (hosts + switches).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unidirectional ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Node id of a host.
    pub fn host_node(&self, host: HostId) -> NodeId {
        self.hosts[host.index()]
    }

    /// Role of a node.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.nodes[node.index()].role
    }

    /// Datacenter index of a node, if it belongs to a structured topology.
    pub fn dc_of(&self, node: NodeId) -> Option<u32> {
        self.nodes[node.index()].dc
    }

    /// Datacenter index of a host.
    pub fn host_dc(&self, host: HostId) -> Option<u32> {
        self.dc_of(self.host_node(host))
    }

    /// All hosts in a given datacenter.
    pub fn hosts_in_dc(&self, dc: u32) -> Vec<HostId> {
        (0..self.hosts.len() as u32)
            .map(HostId)
            .filter(|&h| self.host_dc(h) == Some(dc))
            .collect()
    }

    /// Port descriptor.
    pub fn port(&self, port: PortId) -> &PortSpec {
        &self.ports[port.index()]
    }

    /// Output ports of a node.
    pub fn ports_of(&self, node: NodeId) -> &[PortId] {
        &self.nodes[node.index()].ports
    }

    /// The "down-ToR" port of a host: the switch port transmitting *to*
    /// the host. This is where incast congestion materializes (the
    /// receiver's down-ToR in the baseline, the proxy's under the proxy
    /// schemes).
    pub fn down_tor_port(&self, host: HostId) -> PortId {
        self.down_tor[host.index()]
    }

    /// Equal-cost candidate ports at `node` toward `dst`.
    ///
    /// Empty exactly when `node` *is* the destination host.
    #[inline]
    pub fn candidates(&self, node: NodeId, dst: HostId) -> &[PortId] {
        match &self.routes {
            Routes::Dense(r) => &r[node.index()][dst.index()],
            Routes::TwoDc(l) => self.two_dc_candidates(*l, node, dst),
        }
    }

    /// Closed-form equal-cost candidates for the structured two-DC
    /// topology. Relies on the port-addition order of [`two_dc_leaf_spine`]:
    /// leaves hold `[down_0..down_{K-1}, up_spine_0..up_spine_{S-1}]`,
    /// spines `[to_leaf_0..to_leaf_{L-1}, to_bb_0..to_bb_{B-1}]`, backbones
    /// `[to_spine_dc0, to_spine_dc1]`, hosts their single NIC — so every
    /// BFS candidate set is a contiguous slice of the node's in-order port
    /// list, and this returns those exact slices.
    fn two_dc_candidates(&self, l: TwoDcLayout, node: NodeId, dst: HostId) -> &[PortId] {
        let per_dc = l.nodes_per_dc();
        let hosts_per_dc = l.hosts_per_dc();
        let dst_dc = dst.index() / hosts_per_dc;
        let local = dst.index() % hosts_per_dc;
        let dst_leaf = local / l.hosts_per_leaf;
        let dst_slot = local % l.hosts_per_leaf;
        let ports = &self.nodes[node.index()].ports;
        let i = node.index();
        if i >= 2 * per_dc {
            // Backbone router: one way on, toward the destination DC's
            // peer spine.
            return &ports[dst_dc..dst_dc + 1];
        }
        let dc = i / per_dc;
        let off = i % per_dc;
        if off < l.leaves {
            // Leaf switch.
            if dc == dst_dc && off == dst_leaf {
                &ports[dst_slot..dst_slot + 1]
            } else {
                &ports[l.hosts_per_leaf..l.hosts_per_leaf + l.spines]
            }
        } else if off < l.leaves + l.spines {
            // Spine switch.
            if dc == dst_dc {
                &ports[dst_leaf..dst_leaf + 1]
            } else {
                &ports[l.leaves..l.leaves + l.backbones_per_spine]
            }
        } else {
            // Host: its single NIC, or nothing if it *is* the destination.
            if self.hosts[dst.index()] == node {
                &[]
            } else {
                ports
            }
        }
    }

    /// Number of hops (links) on a shortest path between two hosts.
    pub fn path_hops(&self, src: HostId, dst: HostId) -> usize {
        self.walk_path(src, dst).len()
    }

    /// One-way propagation latency along a shortest path (all equal-cost
    /// paths in the structured topologies have identical latency).
    pub fn path_latency(&self, src: HostId, dst: HostId) -> SimDuration {
        self.walk_path(src, dst)
            .iter()
            .fold(SimDuration::ZERO, |acc, &p| {
                acc + self.ports[p.index()].link.latency
            })
    }

    /// Minimum link bandwidth along a shortest path.
    pub fn path_bottleneck(&self, src: HostId, dst: HostId) -> Bandwidth {
        self.walk_path(src, dst)
            .iter()
            .map(|&p| self.ports[p.index()].link.bandwidth)
            .min()
            .expect("empty path")
    }

    /// Base RTT estimate between two hosts: propagation both ways plus one
    /// serialization of `data_bytes` and `ack_bytes` per hop (store-and-
    /// forward).
    pub fn base_rtt(
        &self,
        src: HostId,
        dst: HostId,
        data_bytes: u64,
        ack_bytes: u64,
    ) -> SimDuration {
        let fwd = self.walk_path(src, dst);
        let rev = self.walk_path(dst, src);
        let mut rtt = SimDuration::ZERO;
        for &p in &fwd {
            let spec = &self.ports[p.index()];
            rtt = rtt + spec.link.latency + spec.link.bandwidth.serialize_time(data_bytes);
        }
        for &p in &rev {
            let spec = &self.ports[p.index()];
            rtt = rtt + spec.link.latency + spec.link.bandwidth.serialize_time(ack_bytes);
        }
        rtt
    }

    /// Follows first-candidate ports from `src` to `dst`, returning the port
    /// sequence. Used for path metrics, not for forwarding.
    fn walk_path(&self, src: HostId, dst: HostId) -> Vec<PortId> {
        assert_ne!(src, dst, "path to self");
        let mut node = self.host_node(src);
        let dst_node = self.host_node(dst);
        let mut path = Vec::new();
        while node != dst_node {
            let cands = self.candidates(node, dst);
            let port = *cands.first().expect("no route");
            path.push(port);
            node = self.ports[port.index()].to;
            assert!(path.len() <= self.nodes.len(), "routing loop");
        }
        path
    }
}

/// Parameters for the §4.1 two-datacenter topology.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TwoDcParams {
    /// Spine switches per datacenter (paper: 8).
    pub spines_per_dc: usize,
    /// Leaf switches per datacenter (paper: 8).
    pub leaves_per_dc: usize,
    /// Servers per leaf (paper: 8).
    pub hosts_per_leaf: usize,
    /// Backbone routers connected to each spine (paper: 8; total backbone
    /// routers = spines_per_dc × this).
    pub backbones_per_spine: usize,
    /// Intra-datacenter links (paper: 100 Gbps / 1 µs).
    pub dc_link: LinkProps,
    /// Relative jitter applied to each leaf↔spine link's latency
    /// (multiplied by `1 + jitter·u`, u uniform per link): models
    /// unequal-depth equal-cost paths, which make packet spraying reorder.
    /// 0.0 (the paper's symmetric topology) by default.
    pub intra_latency_jitter: f64,
    /// Seed for the jitter draw (topology construction stays
    /// deterministic).
    pub jitter_seed: u64,
    /// Spine↔backbone long-haul links (paper: 100 Gbps / 1 ms).
    pub wan_link: LinkProps,
    /// Switch buffers inside the datacenter.
    pub dc_queue: QueueConfig,
    /// Backbone router buffers.
    pub backbone_queue: QueueConfig,
    /// Host NIC egress queue.
    pub host_queue: QueueConfig,
}

impl Default for TwoDcParams {
    fn default() -> Self {
        TwoDcParams {
            spines_per_dc: 8,
            leaves_per_dc: 8,
            hosts_per_leaf: 8,
            backbones_per_spine: 8,
            dc_link: LinkProps::datacenter(),
            intra_latency_jitter: 0.0,
            jitter_seed: 0,
            wan_link: LinkProps::long_haul(),
            dc_queue: QueueConfig::datacenter(),
            backbone_queue: QueueConfig::backbone(),
            host_queue: QueueConfig::host(),
        }
    }
}

impl TwoDcParams {
    /// A scaled-down topology (2 spines × 2 leaves × 4 hosts/leaf) for fast
    /// unit and integration tests. Links and buffers shrink together so the
    /// paper's regime is preserved: the long-haul latency drops to 100 µs
    /// (BDP ≈ 5 MB) and switch buffers to ~1.7 MB, keeping the
    /// buffer-to-BDP ratio of §4.1 (~0.34) — a few-MB incast overloads the
    /// bottleneck exactly like 100 MB does at paper scale.
    pub fn small_test() -> Self {
        let dc_queue = QueueConfig {
            capacity_bytes: 1_700_000,
            ctrl_capacity_bytes: 500_000,
            ..QueueConfig::datacenter()
        };
        let backbone_queue = QueueConfig {
            capacity_bytes: 5_000_000,
            ctrl_capacity_bytes: 500_000,
            mark_low_bytes: 1_000_000,
            mark_high_bytes: 4_000_000,
            trim: true,
        };
        TwoDcParams {
            spines_per_dc: 2,
            leaves_per_dc: 2,
            hosts_per_leaf: 4,
            backbones_per_spine: 2,
            wan_link: LinkProps {
                bandwidth: Bandwidth::gbps(100),
                latency: SimDuration::from_micros(100),
            },
            dc_queue,
            backbone_queue,
            ..Default::default()
        }
    }

    /// Sets the long-haul link latency (the Figure 3 sweep variable).
    pub fn with_wan_latency(mut self, latency: SimDuration) -> Self {
        self.wan_link.latency = latency;
        self
    }

    /// Enables or disables packet trimming on every switch queue (§4.1
    /// enables trimming for the Streamlined scheme only; Baseline and
    /// Naive run drop-tail).
    pub fn with_trim(mut self, trim: bool) -> Self {
        self.dc_queue.trim = trim;
        self.backbone_queue.trim = trim;
        self
    }

    /// Sets the leaf↔spine latency jitter (see `intra_latency_jitter`).
    pub fn with_path_jitter(mut self, jitter: f64, seed: u64) -> Self {
        assert!(
            (0.0..=10.0).contains(&jitter),
            "unreasonable jitter {jitter}"
        );
        self.intra_latency_jitter = jitter;
        self.jitter_seed = seed;
        self
    }

    /// Hosts per datacenter.
    pub fn hosts_per_dc(&self) -> usize {
        self.leaves_per_dc * self.hosts_per_leaf
    }
}

/// Scales a link's latency by `1 + jitter·u`, u uniform in [0, 1).
fn jittered(link: LinkProps, jitter: f64, rng: &mut trace::SplitMix64) -> LinkProps {
    if jitter == 0.0 {
        return link;
    }
    LinkProps {
        bandwidth: link.bandwidth,
        latency: crate::time::SimDuration(
            (link.latency.0 as f64 * (1.0 + jitter * rng.next_f64())) as u64,
        ),
    }
}

/// Builds the two-datacenter leaf–spine topology of §4.1.
///
/// Hosts `0 .. hosts_per_dc` are in DC 0, the rest in DC 1. Host `i` of a
/// datacenter sits under leaf `i / hosts_per_leaf`. Routing is closed-form
/// (no BFS table), so fleet-scale parameter choices (10k+ hosts) build in
/// milliseconds and O(nodes + ports) memory.
pub fn two_dc_leaf_spine(p: &TwoDcParams) -> Topology {
    let (b, layout) = two_dc_builder(p);
    b.build_two_dc(layout)
}

/// The builder half of [`two_dc_leaf_spine`], shared with the route-
/// equivalence test (which freezes the same construction with BFS routes).
fn two_dc_builder(p: &TwoDcParams) -> (TopologyBuilder, TwoDcLayout) {
    let mut b = TopologyBuilder::new();
    let mut jitter_rng = trace::SplitMix64::new(trace::derive_seed(p.jitter_seed, 0x70B0));
    let mut leaves = vec![Vec::new(); 2];
    let mut spines = vec![Vec::new(); 2];
    for dc in 0..2u32 {
        for _ in 0..p.leaves_per_dc {
            leaves[dc as usize].push(b.add_switch(NodeRole::Leaf, Some(dc)));
        }
        for _ in 0..p.spines_per_dc {
            spines[dc as usize].push(b.add_switch(NodeRole::Spine, Some(dc)));
        }
        for &leaf in &leaves[dc as usize] {
            for _ in 0..p.hosts_per_leaf {
                let h = b.add_host(Some(dc));
                let hn = b.host_node(h);
                b.add_duplex(hn, leaf, p.dc_link, p.host_queue, p.dc_queue);
            }
        }
        for &leaf in &leaves[dc as usize] {
            for &spine in &spines[dc as usize] {
                let link = jittered(p.dc_link, p.intra_latency_jitter, &mut jitter_rng);
                b.add_duplex(leaf, spine, link, p.dc_queue, p.dc_queue);
            }
        }
    }
    // Backbone routers: backbone (s, k) peers spine s in both DCs.
    for (&spine0, &spine1) in spines[0].iter().zip(&spines[1]) {
        for _ in 0..p.backbones_per_spine {
            let bb = b.add_switch(NodeRole::Backbone, None);
            b.add_duplex(spine0, bb, p.wan_link, p.dc_queue, p.backbone_queue);
            b.add_duplex(spine1, bb, p.wan_link, p.dc_queue, p.backbone_queue);
        }
    }
    let layout = TwoDcLayout {
        spines: p.spines_per_dc,
        leaves: p.leaves_per_dc,
        hosts_per_leaf: p.hosts_per_leaf,
        backbones_per_spine: p.backbones_per_spine,
    };
    (b, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::HostId;

    #[test]
    #[should_panic(expected = "invalid queue config")]
    fn add_port_rejects_invalid_queue_config() {
        let mut b = TopologyBuilder::new();
        let ha = b.add_host(None);
        let hc = b.add_host(None);
        let a = b.host_node(ha);
        let c = b.host_node(hc);
        let bad = QueueConfig {
            capacity_bytes: 0,
            ..QueueConfig::datacenter()
        };
        b.add_port(a, c, LinkProps::datacenter(), bad);
    }

    #[test]
    fn paper_topology_dimensions() {
        let t = two_dc_leaf_spine(&TwoDcParams::default());
        // 128 hosts + 16 leaves + 16 spines + 64 backbones.
        assert_eq!(t.host_count(), 128);
        assert_eq!(t.node_count(), 128 + 16 + 16 + 64);
        assert_eq!(t.hosts_in_dc(0).len(), 64);
        assert_eq!(t.hosts_in_dc(1).len(), 64);
    }

    #[test]
    fn inter_dc_path_shape() {
        let t = two_dc_leaf_spine(&TwoDcParams::default());
        let src = HostId(0);
        let dst = t.hosts_in_dc(1)[0];
        // host -> leaf -> spine -> backbone -> spine -> leaf -> host = 6 links.
        assert_eq!(t.path_hops(src, dst), 6);
        // One-way propagation: 4 x 1us + 2 x 1ms.
        assert_eq!(
            t.path_latency(src, dst),
            SimDuration::from_micros(4) + SimDuration::from_millis(2)
        );
    }

    #[test]
    fn intra_dc_paths() {
        let t = two_dc_leaf_spine(&TwoDcParams::default());
        // Same leaf: host -> leaf -> host.
        assert_eq!(t.path_hops(HostId(0), HostId(1)), 2);
        // Different leaves, same DC: host -> leaf -> spine -> leaf -> host.
        assert_eq!(t.path_hops(HostId(0), HostId(8)), 4);
    }

    #[test]
    fn spraying_candidates_match_fan_out() {
        let p = TwoDcParams::default();
        let t = two_dc_leaf_spine(&p);
        let src = HostId(0);
        let dst = t.hosts_in_dc(1)[0];
        // At the source leaf, all spines are equal-cost.
        let leaf = t.port(t.candidates(t.host_node(src), dst)[0]).to;
        assert_eq!(t.candidates(leaf, dst).len(), p.spines_per_dc);
        // At a spine, all its backbones are equal-cost.
        let spine = t.port(t.candidates(leaf, dst)[0]).to;
        assert_eq!(t.candidates(spine, dst).len(), p.backbones_per_spine);
        // At a backbone, exactly one way on: its peer spine in DC 1.
        let bb = t.port(t.candidates(spine, dst)[0]).to;
        assert_eq!(t.candidates(bb, dst).len(), 1);
    }

    #[test]
    fn all_pairs_reachable_in_small_topology() {
        let t = two_dc_leaf_spine(&TwoDcParams::small_test());
        for a in 0..t.host_count() as u32 {
            for b in 0..t.host_count() as u32 {
                if a == b {
                    continue;
                }
                assert!(t.path_hops(HostId(a), HostId(b)) >= 2);
            }
        }
    }

    #[test]
    fn base_rtt_includes_serialization() {
        let t = two_dc_leaf_spine(&TwoDcParams::small_test());
        let src = HostId(0);
        let dst = t.hosts_in_dc(1)[0];
        let rtt = t.base_rtt(src, dst, 1500, 64);
        let prop = SimDuration(t.path_latency(src, dst).0 * 2);
        assert!(rtt > prop);
        // 6 hops x 120ns (data) + 6 hops x 5.12ns (ack) on 100G links.
        let ser = SimDuration::from_nanos(6 * 120) + SimDuration(6 * 5_120);
        assert_eq!(rtt, prop + ser);
    }

    #[test]
    fn wan_latency_override() {
        let p = TwoDcParams::default().with_wan_latency(SimDuration::from_micros(100));
        let t = two_dc_leaf_spine(&p);
        let dst = t.hosts_in_dc(1)[0];
        assert_eq!(
            t.path_latency(HostId(0), dst),
            SimDuration::from_micros(4) + SimDuration::from_micros(200)
        );
    }

    #[test]
    fn generic_builder_line_topology() {
        let mut b = TopologyBuilder::new();
        let h0 = b.add_host(None);
        let h1 = b.add_host(None);
        let sw = b.add_switch(NodeRole::Generic, None);
        let n0 = b.host_node(h0);
        let n1 = b.host_node(h1);
        let q = QueueConfig::datacenter();
        b.add_duplex(n0, sw, LinkProps::datacenter(), q, q);
        b.add_duplex(sw, n1, LinkProps::datacenter(), q, q);
        let t = b.build();
        assert_eq!(t.path_hops(h0, h1), 2);
        assert_eq!(t.candidates(sw, h1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot reach")]
    fn disconnected_topology_panics() {
        let mut b = TopologyBuilder::new();
        b.add_host(None);
        b.add_host(None);
        b.build();
    }

    /// The closed-form two-DC router must return exactly the candidate
    /// slices BFS would have stored — same ports, same order — so packet
    /// spraying draws identical picks and every golden stays bit-exact.
    #[test]
    fn structured_routes_match_bfs() {
        let shapes = [
            TwoDcParams::small_test(),
            // Deliberately asymmetric to catch transposed dimensions.
            TwoDcParams {
                spines_per_dc: 3,
                leaves_per_dc: 2,
                hosts_per_leaf: 4,
                backbones_per_spine: 2,
                ..TwoDcParams::small_test()
            },
            TwoDcParams {
                spines_per_dc: 2,
                leaves_per_dc: 4,
                hosts_per_leaf: 1,
                backbones_per_spine: 3,
                ..TwoDcParams::small_test()
            },
        ];
        for p in shapes {
            let structured = two_dc_leaf_spine(&p);
            let (builder, _) = super::two_dc_builder(&p);
            let dense = builder.build();
            assert_eq!(structured.node_count(), dense.node_count());
            for n in 0..structured.node_count() as u32 {
                for h in 0..structured.host_count() as u32 {
                    assert_eq!(
                        structured.candidates(NodeId(n), HostId(h)),
                        dense.candidates(NodeId(n), HostId(h)),
                        "candidates diverge at node {n} toward host {h} \
                         (shape {}x{}x{}x{})",
                        p.spines_per_dc,
                        p.leaves_per_dc,
                        p.hosts_per_leaf,
                        p.backbones_per_spine,
                    );
                }
            }
            for h in 0..structured.host_count() as u32 {
                assert_eq!(
                    structured.down_tor_port(HostId(h)),
                    dense.down_tor_port(HostId(h))
                );
            }
        }
    }

    #[test]
    fn fleet_scale_topology_builds_cheaply() {
        // 2 DCs x (16 leaves x 64 hosts) = 2048 hosts; with the dense BFS
        // table this would be ~2100 nodes x 2048 hosts of route vectors.
        let p = TwoDcParams {
            spines_per_dc: 8,
            leaves_per_dc: 16,
            hosts_per_leaf: 64,
            backbones_per_spine: 8,
            ..TwoDcParams::default()
        };
        let t = two_dc_leaf_spine(&p);
        assert_eq!(t.host_count(), 2048);
        let dst = t.hosts_in_dc(1)[0];
        assert_eq!(t.path_hops(HostId(0), dst), 6);
        assert_eq!(t.candidates(t.host_node(HostId(0)), dst).len(), 1);
    }

    #[test]
    fn host_roles_and_dcs() {
        let t = two_dc_leaf_spine(&TwoDcParams::small_test());
        let h = HostId(0);
        assert!(matches!(t.role(t.host_node(h)), NodeRole::Host(x) if x == h));
        assert_eq!(t.host_dc(h), Some(0));
        let far = t.hosts_in_dc(1)[0];
        assert_eq!(t.host_dc(far), Some(1));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::packet::HostId;

    #[test]
    fn down_tor_port_points_at_the_host() {
        let t = two_dc_leaf_spine(&TwoDcParams::small_test());
        for h in 0..t.host_count() as u32 {
            let port = t.down_tor_port(HostId(h));
            assert_eq!(t.port(port).to, t.host_node(HostId(h)));
            assert!(matches!(t.role(t.port(port).from), NodeRole::Leaf));
        }
    }

    #[test]
    fn jitter_spreads_leaf_spine_latencies() {
        let p = TwoDcParams::small_test().with_path_jitter(0.5, 7);
        let t = two_dc_leaf_spine(&p);
        // Collect the latencies of leaf->spine ports.
        let mut latencies = Vec::new();
        for i in 0..t.port_count() as u32 {
            let spec = t.port(crate::packet::PortId(i));
            if matches!(t.role(spec.from), NodeRole::Leaf)
                && matches!(t.role(spec.to), NodeRole::Spine)
            {
                latencies.push(spec.link.latency);
            }
        }
        assert!(!latencies.is_empty());
        let min = latencies.iter().min().unwrap();
        let max = latencies.iter().max().unwrap();
        assert!(max > min, "jitter must create unequal paths");
        assert!(
            max.0 <= SimDuration::from_micros(1).0 * 3 / 2,
            "bounded by 1.5x"
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let latencies = |seed: u64| {
            let t = two_dc_leaf_spine(&TwoDcParams::small_test().with_path_jitter(0.5, seed));
            (0..t.port_count() as u32)
                .map(|i| t.port(crate::packet::PortId(i)).link.latency)
                .collect::<Vec<_>>()
        };
        assert_eq!(latencies(1), latencies(1));
        assert_ne!(latencies(1), latencies(2));
    }

    #[test]
    fn zero_jitter_keeps_symmetric_paths() {
        let t = two_dc_leaf_spine(&TwoDcParams::small_test());
        for i in 0..t.port_count() as u32 {
            let spec = t.port(crate::packet::PortId(i));
            if matches!(t.role(spec.from), NodeRole::Leaf)
                && matches!(t.role(spec.to), NodeRole::Spine)
            {
                assert_eq!(spec.link.latency, SimDuration::from_micros(1));
            }
        }
    }
}

/// Parameters for the unstructured (random-graph) two-datacenter topology
/// of [`two_dc_unstructured`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UnstructuredParams {
    /// Switches per datacenter.
    pub switches_per_dc: usize,
    /// Random switch↔switch links per datacenter beyond the connectivity
    /// ring.
    pub extra_links_per_dc: usize,
    /// Hosts per datacenter (attached to switches round-robin).
    pub hosts_per_dc: usize,
    /// Gateway switch pairs joined across datacenters by long-haul links.
    pub gateways: usize,
    /// Intra-datacenter links.
    pub dc_link: LinkProps,
    /// Long-haul links between gateway switches.
    pub wan_link: LinkProps,
    /// Switch buffers.
    pub dc_queue: QueueConfig,
    /// Host NIC egress queues.
    pub host_queue: QueueConfig,
    /// Seed for the random wiring.
    pub seed: u64,
}

impl Default for UnstructuredParams {
    fn default() -> Self {
        UnstructuredParams {
            switches_per_dc: 16,
            extra_links_per_dc: 24,
            hosts_per_dc: 32,
            gateways: 4,
            dc_link: LinkProps::datacenter(),
            wan_link: LinkProps::long_haul(),
            dc_queue: QueueConfig::datacenter(),
            host_queue: QueueConfig::host(),
            seed: 1,
        }
    }
}

/// Builds an *unstructured* two-datacenter topology: per datacenter, a
/// connected random graph of switches (a ring for connectivity plus
/// random chords) with hosts attached round-robin; random gateway pairs
/// joined across the long haul.
///
/// §5 FW#1 calls out that "unstructured topology can cause more reordered
/// packets with varied-length paths" — shortest paths here genuinely vary
/// in hop count across equal-cost choices' downstream continuations, so
/// packet spraying produces the reordering that study needs.
pub fn two_dc_unstructured(p: &UnstructuredParams) -> Topology {
    assert!(p.switches_per_dc >= 3, "need at least 3 switches per DC");
    assert!(p.hosts_per_dc >= 1, "need hosts");
    assert!(p.gateways >= 1, "need at least one gateway pair");
    let mut rng = trace::SplitMix64::new(trace::derive_seed(p.seed, 0x0457));
    let mut b = TopologyBuilder::new();
    let mut switches = [Vec::new(), Vec::new()];
    for dc in 0..2u32 {
        for _ in 0..p.switches_per_dc {
            switches[dc as usize].push(b.add_switch(NodeRole::Generic, Some(dc)));
        }
        let sw = &switches[dc as usize];
        // Connectivity ring.
        for i in 0..sw.len() {
            let j = (i + 1) % sw.len();
            b.add_duplex(sw[i], sw[j], p.dc_link, p.dc_queue, p.dc_queue);
        }
        // Random chords (dedup against the ring is unnecessary: parallel
        // links are legal and just add equal-cost capacity).
        for _ in 0..p.extra_links_per_dc {
            let i = rng.next_bounded(sw.len() as u64) as usize;
            let mut j = rng.next_bounded(sw.len() as u64) as usize;
            while j == i {
                j = rng.next_bounded(sw.len() as u64) as usize;
            }
            b.add_duplex(sw[i], sw[j], p.dc_link, p.dc_queue, p.dc_queue);
        }
        // Hosts round-robin across switches.
        for h in 0..p.hosts_per_dc {
            let host = b.add_host(Some(dc));
            let hn = b.host_node(host);
            b.add_duplex(hn, sw[h % sw.len()], p.dc_link, p.host_queue, p.dc_queue);
        }
    }
    // Gateways: random pairs across the two DCs.
    for _ in 0..p.gateways {
        let a = switches[0][rng.next_bounded(p.switches_per_dc as u64) as usize];
        let z = switches[1][rng.next_bounded(p.switches_per_dc as u64) as usize];
        b.add_duplex(a, z, p.wan_link, p.dc_queue, p.dc_queue);
    }
    b.build()
}

#[cfg(test)]
mod unstructured_tests {
    use super::*;
    use crate::packet::HostId;

    #[test]
    fn builds_and_routes() {
        let t = two_dc_unstructured(&UnstructuredParams::default());
        assert_eq!(t.host_count(), 64);
        assert_eq!(t.hosts_in_dc(0).len(), 32);
        // Every cross-DC pair is reachable.
        let src = t.hosts_in_dc(0)[0];
        let dst = t.hosts_in_dc(1)[0];
        assert!(t.path_hops(src, dst) >= 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let hops = |seed| {
            let t = two_dc_unstructured(&UnstructuredParams {
                seed,
                ..Default::default()
            });
            let src = t.hosts_in_dc(0)[0];
            (0..32u32)
                .map(|i| t.path_hops(src, t.hosts_in_dc(1)[i as usize % 32]))
                .collect::<Vec<_>>()
        };
        assert_eq!(hops(3), hops(3));
    }

    #[test]
    fn paths_vary_in_length() {
        // The defining property: different destinations (and different
        // equal-cost choices) see different hop counts.
        let t = two_dc_unstructured(&UnstructuredParams::default());
        let src = HostId(0);
        let mut lengths: Vec<usize> = t
            .hosts_in_dc(1)
            .iter()
            .map(|&d| t.path_hops(src, d))
            .collect();
        lengths.sort_unstable();
        lengths.dedup();
        assert!(lengths.len() > 1, "all paths equal length: {lengths:?}");
    }

    #[test]
    fn flows_complete_on_unstructured_topology() {
        use crate::flows::{install_flow, FlowSpec};
        use crate::sim::{Simulator, StopReason};
        use crate::time::SimTime;
        let params = UnstructuredParams {
            switches_per_dc: 6,
            extra_links_per_dc: 6,
            hosts_per_dc: 8,
            gateways: 2,
            wan_link: LinkProps {
                bandwidth: Bandwidth::gbps(100),
                latency: SimDuration::from_micros(100),
            },
            ..Default::default()
        };
        let mut sim = Simulator::new(two_dc_unstructured(&params), 4);
        let dst = sim.topology().hosts_in_dc(1)[0];
        let h = install_flow(
            &mut sim,
            FlowSpec::new(HostId(0), dst, 2_000_000),
            SimTime::ZERO,
        );
        let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(60)));
        assert_eq!(report.stop, StopReason::Idle, "{report:?}");
        assert!(sim.metrics().completion(h.flow).is_some());
    }
}
