//! Hybrid-fidelity engine state: packet-level events only where it matters.
//!
//! The full-fidelity simulator schedules three events per packet per hop
//! (enqueue → TxDone → Arrival).  On an uncontended path that is pure
//! overhead: an empty FIFO port with no marking, trimming, or impairment is
//! a deterministic delay line, so the packet's departure time can be
//! computed in closed form.  The hybrid engine exploits this with an
//! *express cut-through*: when a packet is offered to a **cold** port it
//! walks the remaining cold hops analytically — advancing a per-port
//! virtual serialization horizon (`free_at`) instead of materializing
//! TxDone events — and schedules exactly one event: the Arrival at the
//! destination host, or an `Inject` on the first **hot** port it meets.
//!
//! A port is *cold* when all of the following hold (see
//! `Simulator::port_is_cold`):
//!
//! - fidelity is enabled and the port is not pinned always-hot (receiver
//!   and proxy down-ToRs, backbone links under fault windows),
//! - the link is up and carries no loss/corruption impairment,
//! - the port's queue is empty (a packet still on the wire is fine — the
//!   `free_at` horizon tracks its TxDone, so express departures serialize
//!   behind it exactly as FIFO would),
//! - no congestion signal was observed within the last `cold_dwell`
//!   (hysteresis, tracked in `hot_until`),
//! - the virtual backlog `free_at - now` is below `hot_backlog`.
//!
//! The `free_at` horizon reproduces FIFO store-and-forward timing exactly:
//! `depart = max(now, free_at) + serialize; free_at' = depart`.  Because
//! `PortQueue::enqueue` only draws from the RNG once `data_bytes` crosses
//! the ECN low watermark, a cold hop consumes the same number of RNG draws
//! (one per multi-candidate spray decision, zero otherwise) as the
//! packet-level path, keeping per-flow behaviour statistically equivalent.
//! The one approximation: an express walk claims downstream horizons at
//! processing time rather than arrival time.  That lookahead is capped by
//! `max_lookahead` — a walk whose virtual clock runs further ahead of the
//! wall clock (crossing a long-haul link, say) defers to an `Inject` and
//! resumes against fresh port state — so horizons are only ever claimed
//! near the present and `tests/fidelity_equivalence.rs` bounds the
//! resulting FCT error.  With fidelity disabled the engine is bit-identical to the
//! full-fidelity simulator (golden-locked by `tests/timer_identity.rs`).

use crate::time::{SimDuration, SimTime};

/// Tuning knobs for the hybrid-fidelity engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityConfig {
    /// Virtual-backlog ceiling: a port whose `free_at` horizon is further
    /// than this ahead of now is treated as hot.  Kept below the serialize
    /// time of the ECN low watermark (33.2 KB at 100 Gbps ≈ 2.65 µs) so a
    /// cold port can never have accumulated enough virtual backlog to have
    /// marked packets had it run at full fidelity.
    pub hot_backlog: SimDuration,
    /// Hysteresis: after a congestion signal (queue build-up past the ECN
    /// low watermark, a trim, or a drop) the port stays hot for this long.
    pub cold_dwell: SimDuration,
    /// Staleness ceiling on express walks: a walk whose packet would reach
    /// the next port more than this far ahead of the wall clock stops and
    /// schedules an `Inject` there instead (the packet re-enters the
    /// express path when the event fires, against fresh port state).
    ///
    /// Coldness checks read *current* queue/busy state and `free_at`
    /// reservations feed back into packet-level transmissions via
    /// `try_start_tx`, so both are only meaningful near the present.
    /// Without this bound a walk crossing a long-haul link would reserve a
    /// port's horizon ~100 µs in the future and stall every real packet
    /// transiting it until then — enough to fire spurious RTOs.  Must
    /// exceed the fabric's accumulated intra-DC path latency (a few µs) so
    /// in-DC walks stay unbroken, and sit well below WAN latencies and
    /// protocol RTO timescales.  The default (20 µs) clears the worst
    /// intra-DC walk — 4 hops, each waiting up to `hot_backlog` behind a
    /// virtual backlog plus 1 µs of propagation — with margin, while
    /// staying 50× below the 1 ms long-haul latency.
    pub max_lookahead: SimDuration,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig {
            hot_backlog: SimDuration::from_micros(2),
            cold_dwell: SimDuration::from_micros(10),
            max_lookahead: SimDuration::from_micros(20),
        }
    }
}

/// Counters describing how much work the express path saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpressStats {
    /// Packets that took at least one express hop.
    pub packets: u64,
    /// Total cold hops traversed analytically.
    pub hops: u64,
    /// Events that would have been scheduled at full fidelity but were
    /// not: each express hop elides one TxDone and one Arrival, minus the
    /// single event actually scheduled at the end of the walk.
    pub saved_events: u64,
    /// Express walks that hit a hot port and fell back to packet fidelity
    /// mid-path (the scheduled `Inject` re-enters the normal queue path).
    pub fallbacks: u64,
    /// Express walks cut short by the `max_lookahead` staleness ceiling
    /// (typically once per long-haul crossing); the packet re-enters the
    /// express path at the deferred port when its `Inject` fires.
    pub deferrals: u64,
}

/// Per-port hybrid-fidelity state, dense-indexed by `PortId`.
#[derive(Debug)]
pub struct FidelityState {
    pub cfg: FidelityConfig,
    /// Virtual serialization horizon per port (picoseconds): the earliest
    /// time the port's transmitter is free.  Also consulted by
    /// `try_start_tx` so packet-level transmissions serialize behind
    /// virtually-advanced ones.
    pub free_at: Vec<u64>,
    /// Hysteresis deadline per port: the port is hot until this instant.
    pub hot_until: Vec<u64>,
    /// Ports pinned permanently hot (contended or fault-prone by
    /// construction: receiver/proxy down-ToRs, links with fault windows).
    pub always_hot: Vec<bool>,
    pub stats: ExpressStats,
}

impl FidelityState {
    pub fn new(cfg: FidelityConfig, ports: usize) -> Self {
        FidelityState {
            cfg,
            free_at: vec![0; ports],
            hot_until: vec![0; ports],
            always_hot: vec![false; ports],
            stats: ExpressStats::default(),
        }
    }

    /// Marks a port hot for the dwell window; returns true when the port
    /// was cold before (a cold→hot fidelity transition).
    pub fn mark_hot(&mut self, port: usize, now: SimTime) -> bool {
        let was_cold = self.hot_until[port] <= now.0 && !self.always_hot[port];
        self.hot_until[port] = now.0 + self.cfg.cold_dwell.0;
        was_cold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hot_backlog_is_below_ecn_watermark_serialize_time() {
        // 33_200 bytes at 100 Gbps = 2.656 µs; the default virtual-backlog
        // ceiling must sit below it so cold ports can never have marked.
        let cfg = FidelityConfig::default();
        let mark_low_serialize = crate::time::Bandwidth::gbps(100).serialize_time(33_200);
        assert!(cfg.hot_backlog < mark_low_serialize);
    }

    #[test]
    fn mark_hot_reports_transition_once_per_dwell() {
        let mut st = FidelityState::new(FidelityConfig::default(), 4);
        let t0 = SimTime(1_000_000);
        assert!(st.mark_hot(2, t0));
        // Within the dwell window: already hot, no transition.
        assert!(!st.mark_hot(2, SimTime(t0.0 + 1)));
        // After the dwell expires the port cools down and can transition
        // again.
        let later = SimTime(t0.0 + st.cfg.cold_dwell.0 + 2);
        assert!(st.mark_hot(2, later));
    }

    #[test]
    fn pinned_ports_never_report_transitions() {
        let mut st = FidelityState::new(FidelityConfig::default(), 2);
        st.always_hot[1] = true;
        assert!(!st.mark_hot(1, SimTime(5)));
    }
}
