//! Transport protocol endpoints: the DCTCP-like sender of §4.1, the
//! per-packet-ACK receiver, RTT/RTO estimation, and sequence tracking.

pub mod dctcp;
pub mod rate;
pub mod receiver;
pub mod rto;
pub mod seqtrack;

pub use dctcp::{packets_for_bytes, CcConfig, DctcpSender, FailoverConfig};
pub use rate::{RateCcConfig, RateSender};
pub use receiver::Receiver;
pub use rto::{RtoConfig, RttEstimator};
pub use seqtrack::SeqSet;
