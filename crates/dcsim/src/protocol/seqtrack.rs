//! Dense sequence-number set: a fixed-size bitmap over `0..capacity`.
//!
//! Senders track acked/outstanding/retransmit-pending sequence numbers;
//! receivers track received ones. Flows know their packet count up front,
//! so a dense bitmap is both the fastest and the smallest representation
//! (one bit per packet: a 100 MB flow is ~70k packets ⇒ ~9 KB).

/// A set of sequence numbers in `0..capacity`.
#[derive(Debug, Clone)]
pub struct SeqSet {
    bits: Vec<u64>,
    capacity: u64,
    count: u64,
}

impl SeqSet {
    /// Creates an empty set over `0..capacity`.
    pub fn new(capacity: u64) -> Self {
        SeqSet {
            bits: vec![0; capacity.div_ceil(64) as usize],
            capacity,
            count: 0,
        }
    }

    /// The exclusive upper bound of the tracked range.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of members.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True when every sequence in range is a member.
    pub fn is_full(&self) -> bool {
        self.count == self.capacity
    }

    #[inline]
    fn index(&self, seq: u64) -> (usize, u64) {
        assert!(
            seq < self.capacity,
            "seq {seq} out of range 0..{}",
            self.capacity
        );
        ((seq / 64) as usize, 1u64 << (seq % 64))
    }

    /// Inserts `seq`; returns true if it was newly inserted.
    pub fn insert(&mut self, seq: u64) -> bool {
        let (word, mask) = self.index(seq);
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.count += 1;
        true
    }

    /// Removes `seq`; returns true if it was a member.
    pub fn remove(&mut self, seq: u64) -> bool {
        let (word, mask) = self.index(seq);
        if self.bits[word] & mask == 0 {
            return false;
        }
        self.bits[word] &= !mask;
        self.count -= 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, seq: u64) -> bool {
        let (word, mask) = self.index(seq);
        self.bits[word] & mask != 0
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.bits.iter().enumerate().flat_map(move |(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                Some(w as u64 * 64 + tz)
            })
        })
    }

    /// Drains all members into a vector, leaving the set empty.
    pub fn drain_to_vec(&mut self) -> Vec<u64> {
        let out: Vec<u64> = self.iter().collect();
        for b in &mut self.bits {
            *b = 0;
        }
        self.count = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SeqSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5), "duplicate insert");
        assert!(s.contains(5));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5), "duplicate remove");
        assert!(s.is_empty());
    }

    #[test]
    fn full_detection() {
        let mut s = SeqSet::new(3);
        for seq in 0..3 {
            s.insert(seq);
        }
        assert!(s.is_full());
        s.remove(1);
        assert!(!s.is_full());
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = SeqSet::new(200);
        for seq in [199, 0, 64, 63, 65, 128, 3] {
            s.insert(seq);
        }
        let v: Vec<u64> = s.iter().collect();
        assert_eq!(v, vec![0, 3, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn drain_empties() {
        let mut s = SeqSet::new(64);
        s.insert(1);
        s.insert(60);
        assert_eq!(s.drain_to_vec(), vec![1, 60]);
        assert!(s.is_empty());
        assert!(!s.contains(1));
    }

    #[test]
    fn word_boundaries() {
        let mut s = SeqSet::new(129);
        for seq in [0, 63, 64, 127, 128] {
            assert!(s.insert(seq));
            assert!(s.contains(seq));
        }
        assert_eq!(s.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        SeqSet::new(10).insert(10);
    }

    #[test]
    fn zero_capacity_is_trivially_full() {
        let s = SeqSet::new(0);
        assert!(s.is_full());
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn capacity_not_a_multiple_of_64() {
        // 70 seqs span two words with the second only partially used; the
        // set must fill exactly at 70 members and reject seq 70.
        let mut s = SeqSet::new(70);
        for seq in 0..70 {
            assert!(s.insert(seq));
            assert_eq!(s.is_full(), seq == 69, "full only at the last seq");
        }
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        s.remove(64);
        assert!(!s.is_full());
        assert!(s.insert(64));
        assert!(s.is_full());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn first_seq_past_partial_word_panics() {
        SeqSet::new(70).insert(70);
    }

    #[test]
    fn iter_at_word_boundaries() {
        // Members hugging every edge of the first three words, in a set
        // whose capacity ends mid-word.
        let mut s = SeqSet::new(130);
        let members = [0u64, 1, 62, 63, 64, 65, 126, 127, 128, 129];
        for &seq in members.iter().rev() {
            s.insert(seq);
        }
        let v: Vec<u64> = s.iter().collect();
        assert_eq!(v, members);
    }

    #[test]
    fn drain_to_vec_at_word_boundaries() {
        let mut s = SeqSet::new(130);
        for seq in [63, 64, 127, 128, 129] {
            s.insert(seq);
        }
        assert_eq!(s.drain_to_vec(), vec![63, 64, 127, 128, 129]);
        assert!(s.is_empty());
        assert_eq!(s.drain_to_vec(), Vec::<u64>::new(), "second drain empty");
        // The set is reusable after a drain.
        assert!(s.insert(128));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![128]);
    }

    #[test]
    fn exactly_one_word() {
        let mut s = SeqSet::new(64);
        for seq in 0..64 {
            s.insert(seq);
        }
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 64);
        assert_eq!(s.drain_to_vec().len(), 64);
        assert!(!s.is_full());
    }
}
