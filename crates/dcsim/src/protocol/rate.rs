//! A rate-based, loss-resilient sender (BBR-flavoured).
//!
//! §5 FW#1 notes that the answers to proxy-side loss detection "are
//! intertwined with ... congestion control (e.g., BBR is more resilient
//! to loss)". This module provides that other point in the design space:
//! a sender that
//!
//! * **paces** packets at a rate derived from a windowed-max estimate of
//!   the delivery rate (bottleneck bandwidth) instead of dumping a
//!   window,
//! * treats NACKs purely as *retransmission* signals — no rate cut on
//!   loss (the loss-resilience BBR is known for), and
//! * bounds inflight at `cwnd_gain ×` the estimated BDP.
//!
//! The model is deliberately BBR-lite: STARTUP (rate doubles per round
//! until the bandwidth estimate stops growing) then PROBE_BW (an 8-phase
//! gain cycle `1.25, 0.75, 1 × 6`). No PROBE_RTT state — flows here are
//! short relative to the 10 s PROBE_RTT cadence.

use crate::agent::{Agent, Counter, Ctx, Note};
use crate::events::TimerKind;
use crate::packet::{FlowId, HostId, Packet, PacketKind, DATA_PKT_SIZE};
use crate::protocol::rto::{RtoConfig, RttEstimator};
use crate::protocol::seqtrack::SeqSet;
use crate::time::{Bandwidth, SimDuration, SimTime, PS_PER_SEC};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the rate-based sender.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RateCcConfig {
    /// Initial pacing rate (a guess at the fair share; the estimator takes
    /// over within a round).
    pub initial_rate: Bandwidth,
    /// Floor for the pacing rate.
    pub min_rate: Bandwidth,
    /// STARTUP pacing gain (rate multiplier on the bandwidth estimate).
    pub startup_gain: f64,
    /// Inflight cap as a multiple of the estimated BDP.
    pub cwnd_gain: f64,
    /// Rounds of bandwidth-estimate stagnation that end STARTUP.
    pub startup_full_bw_rounds: u32,
    /// Bandwidth max-filter window, in rounds.
    pub bw_window_rounds: usize,
    /// Base RTT hint (pre-sample round length and BDP denominator).
    pub base_rtt: SimDuration,
    /// RTO parameters (tail-loss last resort).
    pub rto: RtoConfig,
}

impl RateCcConfig {
    /// A config for a path with the given base RTT and bottleneck.
    pub fn for_path(base_rtt: SimDuration, bottleneck: Bandwidth) -> Self {
        RateCcConfig {
            // Start at a tenth of the line rate: aggressive enough to
            // ramp in a few rounds, conservative enough not to replicate
            // the windowed sender's first-RTT catastrophe by fiat.
            initial_rate: Bandwidth(bottleneck.bps() / 10),
            min_rate: Bandwidth::mbps(10),
            startup_gain: 2.0,
            cwnd_gain: 2.0,
            startup_full_bw_rounds: 3,
            bw_window_rounds: 10,
            base_rtt,
            rto: RtoConfig::for_base_rtt(base_rtt),
        }
    }
}

/// PROBE_BW's 8-phase pacing-gain cycle.
const PROBE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// Timer tag carried by the pacing tick.
const PACE_TAG: u64 = 1;

/// Cancelable timer slot holding the retransmission timeout.
const RTO_SLOT: u32 = 0;
/// Cancelable timer slot holding the pacing tick.
const PACE_SLOT: u32 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Startup,
    ProbeBw(usize),
}

/// The rate-based sending endpoint of one flow.
pub struct RateSender {
    flow: FlowId,
    src: HostId,
    to: HostId,
    config: RateCcConfig,
    total: u64,
    granted: u64,
    next_new: u64,
    acked: SeqSet,
    outstanding: SeqSet,
    rtx_pending: SeqSet,
    rtx_queue: VecDeque<u64>,
    /// Per-seq (send time, delivered count at send) for rate samples.
    send_snapshot: Vec<Option<(SimTime, u64)>>,
    /// Packets delivered (acked) so far.
    delivered: u64,
    /// Windowed max of delivery-rate samples: (round index, rate bps).
    bw_samples: VecDeque<(u64, u64)>,
    /// Current round index (advances once per base RTT of acks).
    round: u64,
    round_start: SimTime,
    /// Best bandwidth seen when the current STARTUP stagnation check began.
    full_bw: u64,
    full_bw_rounds: u32,
    phase: Phase,
    est: RttEstimator,
    /// True while the pace slot holds a pending tick; lets `on_note` keep
    /// an earlier deadline instead of pushing it out.
    pace_armed: bool,
    started: bool,
    done: bool,
}

impl RateSender {
    /// Creates a sender for a fixed-size flow.
    pub fn new(
        flow: FlowId,
        src: HostId,
        to: HostId,
        total_packets: u64,
        config: RateCcConfig,
    ) -> Self {
        assert!(total_packets > 0, "empty flow");
        RateSender {
            flow,
            src,
            to,
            total: total_packets,
            granted: total_packets,
            next_new: 0,
            acked: SeqSet::new(total_packets),
            outstanding: SeqSet::new(total_packets),
            rtx_pending: SeqSet::new(total_packets),
            rtx_queue: VecDeque::new(),
            send_snapshot: vec![None; total_packets as usize],
            delivered: 0,
            bw_samples: VecDeque::new(),
            round: 0,
            round_start: SimTime::ZERO,
            full_bw: 0,
            full_bw_rounds: 0,
            phase: Phase::Startup,
            est: RttEstimator::new(config.rto),
            pace_armed: false,
            started: false,
            done: false,
            config,
        }
    }

    /// Current bottleneck-bandwidth estimate (bps), or the initial rate
    /// before any sample.
    pub fn btl_bw(&self) -> Bandwidth {
        Bandwidth(
            self.bw_samples
                .iter()
                .map(|&(_, bw)| bw)
                .max()
                .unwrap_or(self.config.initial_rate.bps()),
        )
    }

    /// The current pacing gain.
    fn gain(&self) -> f64 {
        match self.phase {
            Phase::Startup => self.config.startup_gain,
            Phase::ProbeBw(i) => PROBE_GAINS[i % PROBE_GAINS.len()],
        }
    }

    /// The current pacing rate (bps).
    pub fn pacing_rate(&self) -> Bandwidth {
        let rate = (self.btl_bw().bps() as f64 * self.gain()) as u64;
        Bandwidth(rate.max(self.config.min_rate.bps()))
    }

    /// Inflight cap in packets: cwnd_gain × BDP(btl_bw, rtprop).
    fn inflight_cap(&self) -> u64 {
        let rtt = self.est.srtt().unwrap_or(self.config.base_rtt);
        let bdp = self.btl_bw().bdp_bytes(rtt);
        (((bdp as f64 * self.config.cwnd_gain) as u64) / DATA_PKT_SIZE).max(4)
    }

    /// True once every packet is acked.
    pub fn is_complete(&self) -> bool {
        self.acked.is_full()
    }

    fn record_bw_sample(&mut self, now: SimTime, seq: u64) {
        let Some(Some((sent_at, delivered_at_send))) =
            self.send_snapshot.get(seq as usize).copied()
        else {
            return;
        };
        let elapsed = now.0.saturating_sub(sent_at.0);
        if elapsed == 0 {
            return;
        }
        let delivered_pkts = self.delivered.saturating_sub(delivered_at_send).max(1);
        let bps = (delivered_pkts as u128 * DATA_PKT_SIZE as u128 * 8 * PS_PER_SEC as u128
            / elapsed as u128) as u64;
        self.bw_samples.push_back((self.round, bps));
        let window = self.config.bw_window_rounds as u64;
        while let Some(&(r, _)) = self.bw_samples.front() {
            if r + window <= self.round {
                self.bw_samples.pop_front();
            } else {
                break;
            }
        }
    }

    fn advance_round_if_due(&mut self, now: SimTime) {
        let round_len = self.est.srtt().unwrap_or(self.config.base_rtt);
        if now.0 < self.round_start.0 + round_len.0 {
            return;
        }
        self.round += 1;
        self.round_start = now;
        match self.phase {
            Phase::Startup => {
                let bw = self.btl_bw().bps();
                // Full pipe: bandwidth stopped growing by >25% per round.
                if bw > self.full_bw + self.full_bw / 4 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= self.config.startup_full_bw_rounds {
                        self.phase = Phase::ProbeBw(0);
                    }
                }
            }
            Phase::ProbeBw(i) => {
                self.phase = Phase::ProbeBw((i + 1) % PROBE_GAINS.len());
            }
        }
    }

    fn pop_rtx(&mut self) -> Option<u64> {
        while let Some(seq) = self.rtx_queue.pop_front() {
            self.rtx_pending.remove(seq);
            if !self.acked.contains(seq) {
                return Some(seq);
            }
        }
        None
    }

    fn next_seq_to_send(&mut self) -> Option<(u64, bool)> {
        if let Some(seq) = self.pop_rtx() {
            return Some((seq, true));
        }
        if self.next_new < self.total.min(self.granted) {
            let seq = self.next_new;
            self.next_new += 1;
            return Some((seq, false));
        }
        None
    }

    /// Sends one packet if pacing allows, then re-arms the pace timer.
    fn pace_tick(&mut self, ctx: &mut Ctx) {
        self.pace_armed = false;
        if self.done {
            return;
        }
        if self.outstanding.len() >= self.inflight_cap() {
            // Inflight-capped: nothing to send until feedback arrives (an
            // ACK/NACK or the RTO re-arms the pace clock). Crucially,
            // leave the timers alone — a no-op tick that called
            // `arm_rto` here would push the RTO deadline out by a full
            // RTO every pace gap, so the timeout could never fire while
            // every in-flight packet sat lost in a downed link: a
            // livelock (found by the chaos fuzzer as an event-cap blowup
            // and a stuck-flow violation).
            return;
        }
        if let Some((seq, is_retx)) = self.next_seq_to_send() {
            if is_retx {
                ctx.count(Counter::Retransmits, 1);
            }
            self.outstanding.insert(seq);
            self.send_snapshot[seq as usize] = Some((ctx.now, self.delivered));
            let pkt = Packet::data(self.flow, seq, self.src, self.to, ctx.now.0);
            ctx.send(self.src, pkt);
        }
        self.arm_rto(ctx);
    }

    fn arm_pace(&mut self, ctx: &mut Ctx) {
        if self.pace_armed || self.done {
            return;
        }
        // Nothing to send and nothing pending: the next ACK/NACK re-arms.
        if self.rtx_queue.is_empty() && self.next_new >= self.total.min(self.granted) {
            return;
        }
        let rate = self.pacing_rate();
        let gap = rate.serialize_time(DATA_PKT_SIZE);
        self.pace_armed = true;
        ctx.rearm_timer(
            PACE_SLOT,
            ctx.now + gap,
            TimerKind::Custom { tag: PACE_TAG },
        );
    }

    /// Re-anchors both timer slots at `now`: the RTO moves to `now + rto`
    /// (or is canceled when nothing is outstanding) and the pace tick is
    /// re-armed from scratch at the current rate.
    fn arm_rto(&mut self, ctx: &mut Ctx) {
        if self.is_complete() || self.outstanding.is_empty() {
            ctx.cancel_timer(RTO_SLOT);
        } else {
            ctx.rearm_timer(RTO_SLOT, ctx.now + self.est.rto(), TimerKind::Rto);
        }
        self.pace_armed = false;
        self.arm_pace(ctx);
        if !self.pace_armed {
            // No work to pace: drop any tick still pending from before.
            ctx.cancel_timer(PACE_SLOT);
        }
    }
}

impl Agent for RateSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.started = true;
        self.round_start = ctx.now;
        self.pace_tick(ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        match pkt.kind {
            PacketKind::Ack => {
                if pkt.ece {
                    ctx.count(Counter::MarkedAcks, 1);
                }
                if !self.acked.insert(pkt.seq) {
                    return;
                }
                self.outstanding.remove(pkt.seq);
                self.delivered += 1;
                self.est
                    .sample(SimDuration(ctx.now.0.saturating_sub(pkt.ts_echo)));
                self.record_bw_sample(ctx.now, pkt.seq);
                self.advance_round_if_due(ctx.now);
                if self.is_complete() {
                    self.done = true;
                    self.pace_armed = false;
                    ctx.cancel_timer(RTO_SLOT);
                    ctx.cancel_timer(PACE_SLOT);
                    return;
                }
            }
            PacketKind::Nack => {
                // Loss-resilient: retransmit, no rate cut.
                if self.acked.contains(pkt.seq) || self.rtx_pending.contains(pkt.seq) {
                    return;
                }
                self.outstanding.remove(pkt.seq);
                self.rtx_pending.insert(pkt.seq);
                self.rtx_queue.push_back(pkt.seq);
            }
            PacketKind::Data => panic!("sender received a data packet"),
        }
        self.arm_rto(ctx);
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
        match kind {
            TimerKind::Custom { tag: PACE_TAG } => self.pace_tick(ctx),
            TimerKind::Rto => {
                // Both slots are canceled on completion, so a firing timer
                // is always current.
                debug_assert!(!self.done, "RTO fired on a completed flow");
                ctx.count(Counter::RtoFires, 1);
                self.est.on_timeout();
                for seq in self.outstanding.drain_to_vec() {
                    if !self.acked.contains(seq) && self.rtx_pending.insert(seq) {
                        self.rtx_queue.push_back(seq);
                    }
                }
                self.arm_rto(ctx);
            }
            TimerKind::Custom { .. } => {}
        }
    }

    fn on_note(&mut self, note: Note, ctx: &mut Ctx) {
        match note {
            Note::PacketsGranted { count } => {
                self.granted = (self.granted + count).min(self.total);
            }
            Note::GrantWatermark { granted } => {
                self.granted = self.granted.max(granted).min(self.total);
            }
            // Rate senders are never relays today; nothing to serve.
            Note::GrantSync => return,
            // Fidelity regime change on the path: counted, not acted on.
            Note::FidelityShift => {
                ctx.count(Counter::FidelityHotSignals, 1);
                return;
            }
        }
        if self.started {
            self.arm_pace(ctx);
        }
    }

    fn on_restore(&mut self, ctx: &mut Ctx) {
        if self.done || self.is_complete() {
            return;
        }
        if !self.started {
            // The FlowStart event died while the host was down.
            self.on_start(ctx);
            return;
        }
        // Pace/RTO ticks that fired during the outage were consumed
        // without a handler (and `pace_armed` may stale-claim a pending
        // tick). Requeue everything outstanding and restart both clocks.
        self.est.on_timeout();
        for seq in self.outstanding.drain_to_vec() {
            if !self.acked.contains(seq) && self.rtx_pending.insert(seq) {
                self.rtx_queue.push_back(seq);
            }
        }
        self.pace_armed = false;
        self.arm_rto(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowSpec;
    use crate::sim::{Simulator, StopReason};
    use crate::topology::{two_dc_leaf_spine, TwoDcParams};

    fn config() -> RateCcConfig {
        RateCcConfig::for_path(SimDuration::from_micros(10), Bandwidth::gbps(100))
    }

    #[test]
    fn pacing_rate_tracks_gain_and_floor() {
        let s = RateSender::new(FlowId(0), HostId(0), HostId(1), 10, config());
        // No samples: initial rate x startup gain.
        assert_eq!(s.pacing_rate().bps(), 20_000_000_000);
        let tiny = RateSender::new(
            FlowId(0),
            HostId(0),
            HostId(1),
            10,
            RateCcConfig {
                initial_rate: Bandwidth(1),
                ..config()
            },
        );
        assert_eq!(tiny.pacing_rate().bps(), 10_000_000, "floored at min_rate");
    }

    #[test]
    fn bw_estimate_is_windowed_max() {
        let mut s = RateSender::new(FlowId(0), HostId(0), HostId(1), 100, config());
        s.bw_samples.push_back((0, 5_000_000_000));
        s.bw_samples.push_back((1, 9_000_000_000));
        s.bw_samples.push_back((2, 7_000_000_000));
        assert_eq!(s.btl_bw().bps(), 9_000_000_000);
    }

    /// End-to-end: a rate-based flow across the test topology completes
    /// and reaches a sane bandwidth estimate.
    #[test]
    fn single_flow_completes_with_pacing() {
        let topo = two_dc_leaf_spine(&TwoDcParams::small_test());
        let mut sim = Simulator::new(topo, 5);
        let dst = sim.topology().hosts_in_dc(1)[0];
        let cc = RateCcConfig::for_path(
            sim.topology().base_rtt(HostId(0), dst, 1500, 64),
            Bandwidth::gbps(100),
        );
        let spec = FlowSpec::new(HostId(0), dst, 5_000_000);
        let packets = crate::protocol::packets_for_bytes(spec.bytes);
        let flow = sim.new_flow();
        let sender = sim.add_agent(Box::new(RateSender::new(
            flow, spec.src, spec.dst, packets, cc,
        )));
        let receiver = sim.add_agent(Box::new(crate::protocol::Receiver::new(
            flow, spec.dst, packets,
        )));
        sim.bind(flow, spec.src, sender);
        sim.bind(flow, spec.dst, receiver);
        sim.schedule_start(SimTime::ZERO, sender);
        let report = sim.run(Some(SimTime::ZERO + SimDuration::from_secs(30)));
        assert_eq!(report.stop, StopReason::Idle, "{report:?}");
        let done = sim.metrics().completion(flow).expect("completes");
        // 5 MB at ≥ 10 Gbps effective with ~400 µs RTT: well under 50 ms.
        assert!(
            done < SimTime::ZERO + SimDuration::from_millis(50),
            "done at {done}"
        );
    }

    #[test]
    fn nack_retransmits_without_rate_cut() {
        let mut s = RateSender::new(FlowId(0), HostId(0), HostId(1), 100, config());
        let mut fx = Vec::new();
        s.on_start(&mut Ctx::harness(
            SimTime(0),
            crate::packet::AgentId(0),
            &mut fx,
        ));
        let rate_before = s.pacing_rate();
        // Simulate a sent packet then a NACK for it.
        s.outstanding.insert(0);
        s.send_snapshot[0] = Some((SimTime(0), 0));
        let mut d = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        d.trim();
        let nack = Packet::nack_for(&d, HostId(1));
        let mut fx = Vec::new();
        s.on_packet(
            nack,
            &mut Ctx::harness(SimTime(1000), crate::packet::AgentId(0), &mut fx),
        );
        assert_eq!(s.pacing_rate(), rate_before, "loss must not cut the rate");
        assert!(s.rtx_pending.contains(0));
    }

    #[test]
    fn startup_exits_on_bandwidth_plateau() {
        let mut s = RateSender::new(FlowId(0), HostId(0), HostId(1), 1000, config());
        assert_eq!(s.phase, Phase::Startup);
        s.est.sample(SimDuration::from_micros(10));
        // Feed flat bandwidth samples across rounds.
        for round in 0..6u64 {
            s.bw_samples.push_back((round, 10_000_000_000));
            s.round_start = SimTime(round * 100_000_000);
            s.advance_round_if_due(SimTime((round + 1) * 100_000_000));
        }
        assert!(matches!(s.phase, Phase::ProbeBw(_)), "{:?}", s.phase);
    }

    #[test]
    fn duplicate_nack_queues_once() {
        let mut s = RateSender::new(FlowId(0), HostId(0), HostId(1), 10, config());
        s.outstanding.insert(3);
        let mut d = Packet::data(FlowId(0), 3, HostId(0), HostId(1), 0);
        d.trim();
        let nack = Packet::nack_for(&d, HostId(1));
        let mut fx = Vec::new();
        let mut ctx = Ctx::harness(SimTime(0), crate::packet::AgentId(0), &mut fx);
        s.on_packet(nack, &mut ctx);
        s.on_packet(nack, &mut ctx);
        assert_eq!(s.rtx_queue.len(), 1);
    }
}
