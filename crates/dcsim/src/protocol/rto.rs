//! RTT estimation and retransmission-timeout computation (Jacobson/Karels,
//! RFC 6298 structure) over simulated time.
//!
//! The RTO floor is the knob that distinguishes path classes in the paper:
//! an intra-datacenter connection (sender→proxy in the Naive design) can
//! afford "microsecond-level timeout for loss detection" (§5), while an
//! end-to-end inter-datacenter connection must keep a millisecond-scale
//! floor to avoid spurious timeouts.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// RTO configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RtoConfig {
    /// Lower bound on the computed RTO.
    pub min_rto: SimDuration,
    /// Upper bound on the computed RTO (also caps exponential backoff).
    pub max_rto: SimDuration,
    /// RTO to use before the first RTT sample.
    pub initial_rto: SimDuration,
}

impl RtoConfig {
    /// A floor suited to a path with the given base RTT: 3× base RTT, but
    /// never below 10 µs (scheduler granularity the paper assumes for
    /// eBPF-assisted loss detection) and never above 50 ms.
    pub fn for_base_rtt(base_rtt: SimDuration) -> Self {
        let floor = SimDuration((base_rtt.0.saturating_mul(3)).clamp(
            SimDuration::from_micros(10).0,
            SimDuration::from_millis(50).0,
        ));
        RtoConfig {
            min_rto: floor,
            max_rto: SimDuration::from_secs(2),
            initial_rto: SimDuration(floor.0.saturating_mul(3)),
        }
    }
}

/// Online RTT estimator producing RTO values.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    config: RtoConfig,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    /// Current backoff multiplier (doubles per timeout, resets on sample).
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with no samples yet.
    pub fn new(config: RtoConfig) -> Self {
        RttEstimator {
            config,
            srtt: None,
            rttvar: SimDuration::ZERO,
            backoff: 0,
        }
    }

    /// Smoothed RTT, if at least one sample arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Feeds one RTT sample; resets backoff (Karn's algorithm is enforced by
    /// the caller, which only samples unambiguous acks).
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = SimDuration(rtt.0 / 2);
            }
            Some(srtt) => {
                let err = srtt.0.abs_diff(rtt.0);
                // rttvar = 3/4 rttvar + 1/4 |err| ; srtt = 7/8 srtt + 1/8 rtt
                self.rttvar = SimDuration((3 * self.rttvar.0 + err) / 4);
                self.srtt = Some(SimDuration((7 * srtt.0 + rtt.0) / 8));
            }
        }
        self.backoff = 0;
    }

    /// Doubles the timeout after an expiry (capped at `max_rto`).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.config.initial_rto,
            Some(srtt) => SimDuration(
                (srtt.0 + 4 * self.rttvar.0).clamp(self.config.min_rto.0, self.config.max_rto.0),
            ),
        };
        SimDuration(
            base.0
                .saturating_mul(1u64 << self.backoff.min(16))
                .min(self.config.max_rto.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RtoConfig {
        RtoConfig {
            min_rto: SimDuration::from_micros(100),
            max_rto: SimDuration::from_secs(1),
            initial_rto: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn initial_rto_before_samples() {
        let est = RttEstimator::new(cfg());
        assert_eq!(est.rto(), SimDuration::from_millis(1));
        assert!(est.srtt().is_none());
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut est = RttEstimator::new(cfg());
        est.sample(SimDuration::from_micros(200));
        assert_eq!(est.srtt(), Some(SimDuration::from_micros(200)));
        // rto = srtt + 4 * (srtt/2) = 3*srtt = 600us.
        assert_eq!(est.rto(), SimDuration::from_micros(600));
    }

    #[test]
    fn stable_rtt_converges_to_min_floor() {
        let mut est = RttEstimator::new(cfg());
        for _ in 0..100 {
            est.sample(SimDuration::from_micros(10));
        }
        // rttvar decays toward zero; rto clamps at min_rto.
        assert_eq!(est.rto(), SimDuration::from_micros(100));
    }

    #[test]
    fn variance_raises_rto() {
        let mut est = RttEstimator::new(cfg());
        for i in 0..50 {
            let us = if i % 2 == 0 { 100 } else { 500 };
            est.sample(SimDuration::from_micros(us));
        }
        assert!(est.rto() > SimDuration::from_micros(500));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut est = RttEstimator::new(cfg());
        est.sample(SimDuration::from_micros(100));
        let base = est.rto();
        est.on_timeout();
        assert_eq!(est.rto(), SimDuration(base.0 * 2));
        est.on_timeout();
        assert_eq!(est.rto(), SimDuration(base.0 * 4));
        for _ in 0..30 {
            est.on_timeout();
        }
        assert_eq!(est.rto(), SimDuration::from_secs(1), "capped at max_rto");
    }

    #[test]
    fn sample_resets_backoff() {
        let mut est = RttEstimator::new(cfg());
        est.sample(SimDuration::from_micros(100));
        est.on_timeout();
        est.on_timeout();
        est.sample(SimDuration::from_micros(100));
        assert!(est.rto() < SimDuration::from_millis(1));
    }

    #[test]
    fn for_base_rtt_scales_floor() {
        let intra = RtoConfig::for_base_rtt(SimDuration::from_micros(8));
        assert_eq!(intra.min_rto, SimDuration::from_micros(24));
        let inter = RtoConfig::for_base_rtt(SimDuration::from_millis(4));
        assert_eq!(inter.min_rto, SimDuration::from_millis(12));
        let tiny = RtoConfig::for_base_rtt(SimDuration::from_nanos(100));
        assert_eq!(tiny.min_rto, SimDuration::from_micros(10), "floor at 10us");
        let huge = RtoConfig::for_base_rtt(SimDuration::from_secs(1));
        assert_eq!(huge.min_rto, SimDuration::from_millis(50), "cap at 50ms");
    }
}
