//! The receiving endpoint: per-packet ACKs with ECN echo, NACKs for
//! trimmed packets, completion detection, and (for the Naive proxy's
//! ingress side) packet grants to a colocated relay sender.

use crate::agent::{Agent, Counter, Ctx, Note};
use crate::packet::{AgentId, FlowId, HostId, Packet, PacketKind};
use crate::protocol::seqtrack::SeqSet;

/// The receiving endpoint of one flow.
pub struct Receiver {
    flow: FlowId,
    /// This receiver's host.
    host: HostId,
    /// Where to address feedback: the sender directly, or the proxy when
    /// the return path is proxied (Streamlined routes ACKs back through the
    /// proxy, which forwards them to the sender).
    reply_via: Option<HostId>,
    received: SeqSet,
    /// Colocated relay sender to grant packets to (Naive proxy ingress).
    grant_to: Option<AgentId>,
    done_signaled: bool,
}

impl Receiver {
    /// Plain receiver: replies directly to the packet source.
    pub fn new(flow: FlowId, host: HostId, total_packets: u64) -> Self {
        Receiver {
            flow,
            host,
            reply_via: None,
            received: SeqSet::new(total_packets),
            grant_to: None,
            done_signaled: false,
        }
    }

    /// Routes feedback through `proxy` instead of directly to the sender.
    pub fn with_reply_via(mut self, proxy: HostId) -> Self {
        self.reply_via = Some(proxy);
        self
    }

    /// Grants each newly received packet to a colocated relay sender
    /// (the Naive proxy's ingress→egress coupling).
    pub fn with_grants_to(mut self, agent: AgentId) -> Self {
        self.grant_to = Some(agent);
        self
    }

    /// Packets received so far (distinct).
    pub fn received_packets(&self) -> u64 {
        self.received.len()
    }

    /// True once every packet arrived.
    pub fn is_complete(&self) -> bool {
        self.received.is_full()
    }

    fn addressed(&self, mut feedback: Packet) -> Packet {
        // Data flagged `direct` arrived on the fallback path because the
        // sender gave up on the proxy — replying through the proxy would
        // blackhole the feedback on the very path that failed, so reply
        // straight to the source instead.
        if !feedback.direct {
            if let Some(via) = self.reply_via {
                feedback.dst = via;
            }
        }
        feedback
    }
}

impl Agent for Receiver {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        assert_eq!(pkt.kind, PacketKind::Data, "receiver expects data packets");
        debug_assert!(pkt.seq < self.received.capacity(), "seq out of range");
        if pkt.trimmed {
            // The payload was cut by a full queue somewhere on the path:
            // tell the sender which sequence to retransmit.
            ctx.count(Counter::ReceiverNacks, 1);
            let nack = self.addressed(Packet::nack_for(&pkt, self.host));
            ctx.send(self.host, nack);
            return;
        }
        // Per-packet ACK (duplicates included: the sender dedups, and the
        // ECN echo is informative regardless).
        let ack = self.addressed(Packet::ack_for(&pkt, self.host));
        ctx.send(self.host, ack);
        if self.received.insert(pkt.seq) {
            if let Some(agent) = self.grant_to {
                ctx.notify(agent, Note::PacketsGranted { count: 1 });
            }
            if self.received.is_full() && !self.done_signaled {
                self.done_signaled = true;
                ctx.flow_done(self.flow);
            }
        }
    }

    fn on_note(&mut self, note: Note, ctx: &mut Ctx) {
        // A restored relay asking where the grant watermark stands: reply
        // with the absolute count of distinct packets received, which is
        // exactly the number of `PacketsGranted { count: 1 }` notes ever
        // issued (some of which may have died against a crashed relay).
        if note == Note::GrantSync {
            if let Some(agent) = self.grant_to {
                ctx.notify(
                    agent,
                    Note::GrantWatermark {
                        granted: self.received.len(),
                    },
                );
            }
        }
    }

    fn on_restore(&mut self, ctx: &mut Ctx) {
        // If the relay restored first, its `GrantSync` died against this
        // crashed ingress; push the watermark unprompted. Harmless when
        // nothing was lost: the watermark never lowers the relay's count.
        if let Some(agent) = self.grant_to {
            ctx.notify(
                agent,
                Note::GrantWatermark {
                    granted: self.received.len(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Effect;
    use crate::packet::{Ecn, DATA_PKT_SIZE};
    use crate::time::SimTime;

    fn ctx_with<'a>(effects: &'a mut Vec<Effect>) -> Ctx<'a> {
        Ctx {
            now: SimTime(0),
            self_id: AgentId(1),
            effects,
        }
    }

    fn data(seq: u64) -> Packet {
        Packet::data(FlowId(0), seq, HostId(0), HostId(1), 42)
    }

    #[test]
    fn acks_every_data_packet() {
        let mut r = Receiver::new(FlowId(0), HostId(1), 10);
        let mut fx = Vec::new();
        r.on_packet(data(3), &mut ctx_with(&mut fx));
        let acks: Vec<&Packet> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Send { packet, .. } if packet.kind == PacketKind::Ack => Some(packet),
                _ => None,
            })
            .collect();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].seq, 3);
        assert_eq!(acks[0].dst, HostId(0));
        assert_eq!(acks[0].ts_echo, 42);
        assert_eq!(r.received_packets(), 1);
    }

    #[test]
    fn echoes_ecn_mark() {
        let mut r = Receiver::new(FlowId(0), HostId(1), 10);
        let mut fx = Vec::new();
        let mut p = data(0);
        p.ecn = Ecn::Ce;
        r.on_packet(p, &mut ctx_with(&mut fx));
        match &fx[0] {
            Effect::Send { packet, .. } => assert!(packet.ece),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nacks_trimmed_packets_without_counting_them() {
        let mut r = Receiver::new(FlowId(0), HostId(1), 10);
        let mut fx = Vec::new();
        let mut p = data(7);
        p.trim();
        r.on_packet(p, &mut ctx_with(&mut fx));
        assert_eq!(r.received_packets(), 0, "trimmed packets carry no payload");
        match &fx[1] {
            Effect::Send { packet, .. } => {
                assert_eq!(packet.kind, PacketKind::Nack);
                assert_eq!(packet.seq, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            fx[0],
            Effect::Count {
                counter: Counter::ReceiverNacks,
                amount: 1
            }
        ));
    }

    #[test]
    fn completion_signaled_once() {
        let mut r = Receiver::new(FlowId(0), HostId(1), 2);
        let mut fx = Vec::new();
        r.on_packet(data(0), &mut ctx_with(&mut fx));
        assert!(!fx.iter().any(|e| matches!(e, Effect::FlowDone { .. })));
        r.on_packet(data(1), &mut ctx_with(&mut fx));
        assert!(r.is_complete());
        let dones = fx
            .iter()
            .filter(|e| matches!(e, Effect::FlowDone { .. }))
            .count();
        assert_eq!(dones, 1);
        // A duplicate of the last packet must not re-signal.
        r.on_packet(data(1), &mut ctx_with(&mut fx));
        let dones = fx
            .iter()
            .filter(|e| matches!(e, Effect::FlowDone { .. }))
            .count();
        assert_eq!(dones, 1);
    }

    #[test]
    fn reply_via_redirects_feedback() {
        let proxy = HostId(9);
        let mut r = Receiver::new(FlowId(0), HostId(1), 4).with_reply_via(proxy);
        let mut fx = Vec::new();
        r.on_packet(data(0), &mut ctx_with(&mut fx));
        match &fx[0] {
            Effect::Send { packet, .. } => assert_eq!(packet.dst, proxy),
            other => panic!("unexpected {other:?}"),
        }
        let mut t = data(1);
        t.trim();
        r.on_packet(t, &mut ctx_with(&mut fx));
        match &fx[2] {
            Effect::Send { packet, .. } => assert_eq!(packet.dst, proxy),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn direct_data_bypasses_reply_via() {
        let proxy = HostId(9);
        let mut r = Receiver::new(FlowId(0), HostId(1), 4).with_reply_via(proxy);
        let mut fx = Vec::new();
        let mut p = data(0);
        p.direct = true;
        r.on_packet(p, &mut ctx_with(&mut fx));
        match &fx[0] {
            Effect::Send { packet, .. } => {
                assert_eq!(packet.dst, HostId(0), "direct data must be acked directly");
                assert!(packet.direct, "the flag must survive into the feedback");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn grants_flow_to_relay_once_per_distinct_packet() {
        let relay = AgentId(5);
        let mut r = Receiver::new(FlowId(0), HostId(1), 4).with_grants_to(relay);
        let mut fx = Vec::new();
        r.on_packet(data(0), &mut ctx_with(&mut fx));
        r.on_packet(data(0), &mut ctx_with(&mut fx)); // duplicate
        r.on_packet(data(1), &mut ctx_with(&mut fx));
        let grants = fx
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Notify {
                        agent,
                        note: Note::PacketsGranted { count: 1 }
                    } if *agent == relay
                )
            })
            .count();
        assert_eq!(grants, 2, "one grant per distinct data packet");
    }

    #[test]
    fn grant_sync_replies_with_the_absolute_watermark() {
        let relay = AgentId(5);
        let mut r = Receiver::new(FlowId(0), HostId(1), 4).with_grants_to(relay);
        let mut fx = Vec::new();
        r.on_packet(data(0), &mut ctx_with(&mut fx));
        r.on_packet(data(0), &mut ctx_with(&mut fx)); // duplicate: not re-granted
        r.on_packet(data(2), &mut ctx_with(&mut fx));
        fx.clear();
        r.on_note(Note::GrantSync, &mut ctx_with(&mut fx));
        assert!(
            fx.iter().any(|e| matches!(
                e,
                Effect::Notify {
                    agent,
                    note: Note::GrantWatermark { granted: 2 }
                } if *agent == relay
            )),
            "watermark must equal distinct packets received: {fx:?}"
        );
    }

    #[test]
    fn restore_pushes_the_watermark_unprompted() {
        let relay = AgentId(5);
        let mut r = Receiver::new(FlowId(0), HostId(1), 4).with_grants_to(relay);
        let mut fx = Vec::new();
        r.on_packet(data(1), &mut ctx_with(&mut fx));
        fx.clear();
        // A relay that restored while this ingress was down got no reply to
        // its sync query; the ingress re-states the watermark on restore.
        r.on_restore(&mut ctx_with(&mut fx));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Notify {
                agent,
                note: Note::GrantWatermark { granted: 1 }
            } if *agent == relay
        )));
    }

    #[test]
    fn grantless_receiver_ignores_sync_and_restore() {
        let mut r = Receiver::new(FlowId(0), HostId(1), 4);
        let mut fx = Vec::new();
        r.on_note(Note::GrantSync, &mut ctx_with(&mut fx));
        r.on_restore(&mut ctx_with(&mut fx));
        assert!(fx.is_empty());
    }

    #[test]
    fn ack_size_is_header_only() {
        let mut r = Receiver::new(FlowId(0), HostId(1), 1);
        let mut fx = Vec::new();
        r.on_packet(data(0), &mut ctx_with(&mut fx));
        match &fx[0] {
            Effect::Send { packet, .. } => assert!(packet.size < DATA_PKT_SIZE),
            other => panic!("unexpected {other:?}"),
        }
    }
}
