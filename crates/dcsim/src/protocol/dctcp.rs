//! The DCTCP-like sender of §4.1.
//!
//! "Senders follow a DCTCP-like congestion control where the sender resets
//! its congestion window upon timeout, decreases the window upon receiving
//! marked ACK packet or NACK packet and increases the window upon receiving
//! unmarked ACK packet. Initial window is set to be 1 BDP."
//!
//! Loss is detected two ways, as in NDP-style transports: a NACK names a
//! specific trimmed sequence (fast path), and the retransmission timeout
//! catches everything else (dropped headers, lost ACKs).
//!
//! Multiplicative decreases are rate-limited to one per *feedback delay* —
//! the sender's running estimate of how long its congestion signals take to
//! arrive (measured from the timestamp echo). This is the mechanism the
//! paper's insights hinge on: with a proxy the feedback delay is
//! microseconds, so the sender can react to every congestion episode; end
//! to end it is milliseconds, so the sender necessarily reacts at
//! millisecond granularity.

use crate::agent::{Agent, Counter, Ctx, Note};
use crate::events::TimerKind;
use crate::packet::{AgentId, FlowId, HostId, Packet, PacketKind, DATA_PKT_SIZE, MSS};
use crate::protocol::rto::{RtoConfig, RttEstimator};
use crate::protocol::seqtrack::SeqSet;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the sender reacts to ECN marks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EcnResponse {
    /// True DCTCP: estimate the marked fraction α per RTT round (EWMA with
    /// gain `g`) and cut `cwnd *= 1 − α/2` once per round containing marks.
    /// Gentle under transient marking, halving under persistent marking.
    DctcpAlpha {
        /// EWMA gain (DCTCP recommends 1/16).
        g: f64,
    },
    /// Simplified response: one multiplicative decrease (by `md_factor`)
    /// per round containing marks. Used by the `cc_response` ablation.
    HalvePerRound,
}

impl Default for EcnResponse {
    fn default() -> Self {
        EcnResponse::DctcpAlpha { g: 1.0 / 16.0 }
    }
}

/// Congestion-control configuration for one sender.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CcConfig {
    /// Initial congestion window in bytes (the paper: 1 BDP of the path).
    pub init_cwnd_bytes: u64,
    /// Floor for the window (default: one packet).
    pub min_cwnd_bytes: u64,
    /// Optional ceiling for the window.
    pub max_cwnd_bytes: Option<u64>,
    /// Additive increase per window of unmarked ACKs, in bytes (default:
    /// one packet per RTT, standard AIMD).
    pub ai_bytes: u64,
    /// Multiplicative decrease factor applied on a congestion signal
    /// (marked ACK or NACK): `cwnd *= md_factor`.
    pub md_factor: f64,
    /// Initial feedback-delay estimate, used to rate-limit decreases before
    /// the first congestion signal measures the true loop delay (set this
    /// to the path's base RTT).
    pub base_feedback_delay: SimDuration,
    /// RTO parameters.
    pub rto: RtoConfig,
    /// ECN-mark response (default: true DCTCP α estimation).
    pub ecn_response: EcnResponse,
}

impl CcConfig {
    /// A config for a path with the given base RTT and bottleneck-derived
    /// BDP (`init_cwnd = 1 BDP`, per §4.1 following Homa's aggressive
    /// first-RTT behaviour).
    pub fn for_rtt(base_rtt: SimDuration, bdp_bytes: u64) -> Self {
        CcConfig {
            init_cwnd_bytes: bdp_bytes.max(DATA_PKT_SIZE),
            min_cwnd_bytes: DATA_PKT_SIZE,
            max_cwnd_bytes: None,
            ai_bytes: DATA_PKT_SIZE,
            md_factor: 0.5,
            base_feedback_delay: base_rtt,
            rto: RtoConfig::for_base_rtt(base_rtt),
            ecn_response: EcnResponse::default(),
        }
    }
}

/// Timer tag used by the proxy-health probe timer (failover re-probing).
const PROBE_TAG: u64 = 0xFA11;

/// Cancelable timer slot holding the retransmission timeout.
const RTO_SLOT: u32 = 0;
/// Cancelable timer slot holding the proxy re-probe timer.
const PROBE_SLOT: u32 = 1;

/// Configuration of proxy failover for a proxied sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverConfig {
    /// Consecutive RTO fires with no feedback at all before the sender
    /// declares the proxy unreachable and falls back to the direct path.
    pub rto_threshold: u32,
    /// Ceiling on the exponential backoff between proxy re-probes while on
    /// the direct path (the first probe fires one RTO after failover).
    pub probe_backoff_max: SimDuration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            rto_threshold: 3,
            probe_backoff_max: SimDuration::from_millis(50),
        }
    }
}

/// Which path a failover-capable sender is currently using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathMode {
    /// Normal operation: data via the proxy.
    ViaProxy,
    /// Degraded: proxy declared dead, data on the direct path.
    Direct,
}

/// Sender-side proxy-health state (present only on proxied senders built
/// with [`DctcpSender::with_failover`]).
struct Failover {
    cfg: FailoverConfig,
    /// The receiver, for addressing direct-path packets.
    direct: HostId,
    mode: PathMode,
    /// RTO fires since the last feedback of any kind.
    consecutive_rtos: u32,
    /// When the last ACK/NACK arrived (or the flow started).
    last_feedback: SimTime,
    /// Current re-probe interval (doubles per probe, clamped).
    probe_backoff: SimDuration,
}

/// The DCTCP-like sending endpoint of one flow.
pub struct DctcpSender {
    flow: FlowId,
    /// This sender's host.
    src: HostId,
    /// Host packets are steered to (the receiver, or the proxy when the
    /// flow is proxied).
    to: HostId,
    config: CcConfig,
    /// Total packets this flow will carry.
    total: u64,
    /// Packets currently permitted (relay senders are granted packets
    /// incrementally by their ingress side; plain senders get all packets
    /// up front).
    granted: u64,
    /// Next never-sent sequence.
    next_new: u64,
    acked: SeqSet,
    /// Sent and not yet acked/nacked.
    outstanding: SeqSet,
    /// Queued for retransmission (bitmap deduplicates the queue).
    rtx_pending: SeqSet,
    rtx_queue: VecDeque<u64>,
    /// Sequences ever retransmitted (Karn: excluded from RTT sampling).
    ever_retx: SeqSet,
    cwnd: f64,
    est: RttEstimator,
    /// EWMA of the congestion feedback delay (signal arrival − send time).
    feedback_delay: SimDuration,
    /// DCTCP α: EWMA of the fraction of marked bytes per round.
    alpha: f64,
    /// Start of the current observation round.
    round_start: SimTime,
    /// Acks counted in the current round.
    round_acked: u64,
    /// Marked acks counted in the current round.
    round_marked: u64,
    /// Last time a multiplicative decrease (or timeout reset) was applied.
    last_decrease: Option<SimTime>,
    started: bool,
    /// Proxy-health monitor; `None` on unproxied senders (zero overhead).
    failover: Option<Failover>,
    /// The agent granting packets to this relay (the Naive ingress), if
    /// any. Lets a restored relay pull the grant watermark back: grants
    /// notified during a crash window died with the crash.
    grant_src: Option<AgentId>,
}

impl DctcpSender {
    /// Creates a sender for a fixed-size flow of `total_packets`, fully
    /// granted up front.
    pub fn new(
        flow: FlowId,
        src: HostId,
        to: HostId,
        total_packets: u64,
        config: CcConfig,
    ) -> Self {
        Self::with_grants(flow, src, to, total_packets, total_packets, config)
    }

    /// Creates a relay sender that may only transmit granted packets
    /// (grants arrive via [`Note::PacketsGranted`]).
    pub fn relay(
        flow: FlowId,
        src: HostId,
        to: HostId,
        total_packets: u64,
        config: CcConfig,
    ) -> Self {
        Self::with_grants(flow, src, to, total_packets, 0, config)
    }

    fn with_grants(
        flow: FlowId,
        src: HostId,
        to: HostId,
        total: u64,
        granted: u64,
        config: CcConfig,
    ) -> Self {
        assert!(total > 0, "empty flow");
        DctcpSender {
            flow,
            src,
            to,
            total,
            granted,
            next_new: 0,
            acked: SeqSet::new(total),
            outstanding: SeqSet::new(total),
            rtx_pending: SeqSet::new(total),
            rtx_queue: VecDeque::new(),
            ever_retx: SeqSet::new(total),
            cwnd: config.init_cwnd_bytes as f64,
            est: RttEstimator::new(config.rto),
            feedback_delay: config.base_feedback_delay,
            alpha: 1.0,
            round_start: SimTime::ZERO,
            round_acked: 0,
            round_marked: 0,
            last_decrease: None,
            started: false,
            failover: None,
            grant_src: None,
            config,
        }
    }

    /// Remembers the agent that grants packets to this relay (the Naive
    /// ingress receiver), so a crash restore can re-synchronize the grant
    /// watermark instead of wedging on grants that died with the crash.
    pub fn with_grant_source(mut self, agent: AgentId) -> Self {
        self.grant_src = Some(agent);
        self
    }

    /// Enables proxy failover: when feedback via the proxy (`to`) goes
    /// silent for `cfg.rto_threshold` consecutive RTOs, the sender falls
    /// back to sending directly to `direct` (the receiver), re-probes the
    /// proxy with exponential backoff, and fails back once the proxy
    /// answers again.
    pub fn with_failover(mut self, direct: HostId, cfg: FailoverConfig) -> Self {
        assert!(cfg.rto_threshold > 0, "rto_threshold must be at least 1");
        self.failover = Some(Failover {
            cfg,
            direct,
            mode: PathMode::ViaProxy,
            consecutive_rtos: 0,
            last_feedback: SimTime::ZERO,
            probe_backoff: cfg.probe_backoff_max,
        });
        self
    }

    /// True while a failover-capable sender is on the direct path.
    pub fn using_direct_path(&self) -> bool {
        self.failover
            .as_ref()
            .is_some_and(|f| f.mode == PathMode::Direct)
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// Packets acked so far.
    pub fn acked_packets(&self) -> u64 {
        self.acked.len()
    }

    /// True once every packet is acked.
    pub fn is_complete(&self) -> bool {
        self.acked.is_full()
    }

    /// The sender's running estimate of its congestion feedback delay —
    /// microseconds when a proxy signals loss, milliseconds end to end.
    pub fn feedback_delay(&self) -> SimDuration {
        self.feedback_delay
    }

    fn inflight_bytes(&self) -> u64 {
        self.outstanding.len() * DATA_PKT_SIZE
    }

    fn clamp_cwnd(&mut self) {
        let min = self.config.min_cwnd_bytes as f64;
        let max = self
            .config
            .max_cwnd_bytes
            .map(|m| m as f64)
            .unwrap_or(f64::INFINITY);
        self.cwnd = self.cwnd.clamp(min, max);
    }

    /// Applies a multiplicative decrease unless one was already applied
    /// within the current round (one smoothed RTT): standard once-per-window
    /// reduction.
    fn congestion_signal(&mut self, now: SimTime, signal_ts: u64, ctx: &mut Ctx) {
        // Track the feedback-loop delay (signal arrival − send time of the
        // packet that triggered it). This is the quantity the proxy
        // shortens; exposed via [`DctcpSender::feedback_delay`].
        let delay = SimDuration(now.0.saturating_sub(signal_ts));
        // EWMA with gain 1/4: responsive but stable.
        self.feedback_delay = SimDuration((3 * self.feedback_delay.0 + delay.0) / 4);
        let round = self.est.srtt().unwrap_or(self.config.base_feedback_delay);
        if let Some(last) = self.last_decrease {
            if now.0 < last.0 + round.0 {
                return;
            }
            // React once per congestion *event*: a signal carried by a
            // packet sent before the last decrease reports conditions the
            // sender already acted on (e.g. marked ACKs still in flight
            // after an RTO reset) and must not trigger another cut.
            if signal_ts < last.0 {
                return;
            }
        }
        self.cwnd *= self.config.md_factor;
        self.clamp_cwnd();
        self.last_decrease = Some(now);
        ctx.count(Counter::WindowDecreases, 1);
    }

    fn window_increase(&mut self) {
        // §4.1, literally: "increases the window upon receiving unmarked
        // ACK packet" — a fixed increment per unmarked ACK, i.e. the window
        // doubles per fully-unmarked round. Convergence speed is therefore
        // O(log) in *rounds*; the feedback delay sets the round length,
        // which is exactly the quantity the proxy shrinks.
        self.cwnd += self.config.ai_bytes as f64;
        self.clamp_cwnd();
    }

    fn sendable_new(&self) -> bool {
        self.next_new < self.total.min(self.granted)
    }

    fn pop_rtx(&mut self) -> Option<u64> {
        while let Some(seq) = self.rtx_queue.pop_front() {
            self.rtx_pending.remove(seq);
            if !self.acked.contains(seq) {
                return Some(seq);
            }
        }
        None
    }

    fn queue_rtx(&mut self, seq: u64) {
        if !self.acked.contains(seq) && self.rtx_pending.insert(seq) {
            self.rtx_queue.push_back(seq);
        }
    }

    fn try_send(&mut self, ctx: &mut Ctx) {
        while self.inflight_bytes() + DATA_PKT_SIZE <= self.cwnd as u64 {
            let (seq, is_retx) = if let Some(seq) = self.pop_rtx() {
                (seq, true)
            } else if self.sendable_new() {
                let seq = self.next_new;
                self.next_new += 1;
                (seq, false)
            } else {
                break;
            };
            if is_retx {
                self.ever_retx.insert(seq);
                ctx.count(Counter::Retransmits, 1);
            }
            self.outstanding.insert(seq);
            let (dst, direct) = match &self.failover {
                Some(f) if f.mode == PathMode::Direct => (f.direct, true),
                _ => (self.to, false),
            };
            let mut pkt = Packet::data(self.flow, seq, self.src, dst, ctx.now.0);
            pkt.direct = direct;
            ctx.send(self.src, pkt);
        }
    }

    /// Failover bookkeeping on any feedback (ACK or NACK): the path that
    /// carried it is alive. Proxy-path feedback while degraded triggers the
    /// failback.
    fn note_feedback(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        let Some(f) = &mut self.failover else {
            return;
        };
        f.consecutive_rtos = 0;
        f.last_feedback = ctx.now;
        if f.mode == PathMode::Direct && !pkt.direct {
            // The proxy relayed feedback again: recover the fast path.
            f.mode = PathMode::ViaProxy;
            ctx.cancel_timer(PROBE_SLOT);
            f.probe_backoff = f.cfg.probe_backoff_max;
            ctx.count(Counter::Failbacks, 1);
        }
    }

    /// Failover bookkeeping on an RTO fire: silence past the threshold
    /// abandons the proxy path and arms the first re-probe.
    fn note_rto(&mut self, ctx: &mut Ctx) {
        let probe_after = self.est.rto();
        let Some(f) = &mut self.failover else {
            return;
        };
        f.consecutive_rtos += 1;
        if f.mode == PathMode::ViaProxy && f.consecutive_rtos >= f.cfg.rto_threshold {
            f.mode = PathMode::Direct;
            f.probe_backoff = probe_after.min(f.cfg.probe_backoff_max);
            ctx.count(Counter::FailoverActivations, 1);
            ctx.failover_latency(self.flow, ctx.now.since(f.last_feedback));
            ctx.rearm_timer(
                PROBE_SLOT,
                ctx.now + f.probe_backoff,
                TimerKind::Custom { tag: PROBE_TAG },
            );
        }
    }

    /// Probe timer while degraded: re-offer one sequence via the proxy
    /// (flagged `direct: false`) so proxy-path feedback, if any, proves
    /// recovery — then back off and re-arm.
    fn on_probe_timer(&mut self, ctx: &mut Ctx) {
        let Some(f) = &mut self.failover else {
            return;
        };
        if f.mode != PathMode::Direct || self.acked.is_full() {
            return; // Already recovered, or done.
        }
        // Seq 0 always exists; a duplicate delivery is acked like any other,
        // and the ACK's `direct: false` flag is the recovery signal. The
        // probe is deliberately not tracked in `outstanding`: its loss must
        // not perturb the direct-path RTO machinery.
        let pkt = Packet::data(self.flow, 0, self.src, self.to, ctx.now.0);
        ctx.send(self.src, pkt);
        ctx.count(Counter::ProxyProbes, 1);
        f.probe_backoff = (f.probe_backoff + f.probe_backoff).min(f.cfg.probe_backoff_max);
        ctx.rearm_timer(
            PROBE_SLOT,
            ctx.now + f.probe_backoff,
            TimerKind::Custom { tag: PROBE_TAG },
        );
    }

    /// Moves the RTO slot to `now + rto` if anything is outstanding or
    /// waiting; otherwise cancels it.
    fn reset_timer(&mut self, ctx: &mut Ctx) {
        if self.is_complete()
            || (self.outstanding.is_empty() && self.rtx_queue.is_empty() && !self.sendable_new())
        {
            // Done, or idle waiting for grants: nothing can time out.
            ctx.cancel_timer(RTO_SLOT);
            return;
        }
        ctx.rearm_timer(RTO_SLOT, ctx.now + self.est.rto(), TimerKind::Rto);
    }

    fn on_ack(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        if pkt.ece {
            ctx.count(Counter::MarkedAcks, 1);
        }
        if !self.acked.insert(pkt.seq) {
            return; // Duplicate ack.
        }
        self.outstanding.remove(pkt.seq);
        if !self.ever_retx.contains(pkt.seq) {
            self.est
                .sample(SimDuration(ctx.now.0.saturating_sub(pkt.ts_echo)));
        }
        match self.config.ecn_response {
            EcnResponse::DctcpAlpha { g } => {
                self.round_acked += 1;
                if pkt.ece {
                    self.round_marked += 1;
                }
                self.maybe_end_round(g, ctx);
                if !pkt.ece {
                    self.window_increase();
                }
            }
            EcnResponse::HalvePerRound => {
                if pkt.ece {
                    self.congestion_signal(ctx.now, pkt.ts_echo, ctx);
                } else {
                    self.window_increase();
                }
            }
        }
    }

    /// Ends the current DCTCP observation round if one smoothed RTT has
    /// elapsed: update α from the marked fraction and, if the round saw any
    /// marks, cut the window by α/2 (once per round).
    fn maybe_end_round(&mut self, g: f64, ctx: &mut Ctx) {
        let round = self.est.srtt().unwrap_or(self.config.base_feedback_delay);
        if ctx.now.0 < self.round_start.0 + round.0 {
            return;
        }
        if self.round_acked > 0 {
            let frac = self.round_marked as f64 / self.round_acked as f64;
            self.alpha = (1.0 - g) * self.alpha + g * frac;
            if self.round_marked > 0 {
                self.cwnd *= 1.0 - self.alpha / 2.0;
                self.clamp_cwnd();
                self.last_decrease = Some(ctx.now);
                ctx.count(Counter::WindowDecreases, 1);
            }
        }
        self.round_start = ctx.now;
        self.round_acked = 0;
        self.round_marked = 0;
    }

    fn on_nack(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        if self.acked.contains(pkt.seq) {
            return; // Raced with a successful delivery.
        }
        if self.rtx_pending.contains(pkt.seq) {
            // Duplicate NACK for a retransmission we have not sent yet
            // (e.g. a proxy watchdog re-NACK racing the sender's window):
            // no new information, no additional window cut.
            return;
        }
        self.outstanding.remove(pkt.seq);
        self.queue_rtx(pkt.seq);
        self.congestion_signal(ctx.now, pkt.ts_echo, ctx);
    }
}

impl Agent for DctcpSender {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.started = true;
        if let Some(f) = &mut self.failover {
            f.last_feedback = ctx.now;
        }
        self.try_send(ctx);
        self.reset_timer(ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        debug_assert!(pkt.seq < self.total, "feedback for unknown seq");
        self.note_feedback(&pkt, ctx);
        match pkt.kind {
            PacketKind::Ack => self.on_ack(&pkt, ctx),
            PacketKind::Nack => self.on_nack(&pkt, ctx),
            PacketKind::Data => panic!("sender received a data packet"),
        }
        self.try_send(ctx);
        self.reset_timer(ctx);
    }

    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
        match kind {
            TimerKind::Rto => {}
            TimerKind::Custom { tag: PROBE_TAG } => {
                self.on_probe_timer(ctx);
                return;
            }
            TimerKind::Custom { .. } => return,
        }
        // The RTO slot is canceled on completion and on idle, so a firing
        // RTO always has work to do.
        debug_assert!(!self.is_complete(), "RTO fired on a completed flow");
        ctx.count(Counter::RtoFires, 1);
        self.est.on_timeout();
        self.note_rto(ctx);
        // Paper: "resets its congestion window upon timeout". Regrowth is
        // exponential (one increment per unmarked ACK).
        self.cwnd = self.config.min_cwnd_bytes as f64;
        self.last_decrease = Some(ctx.now);
        for seq in self.outstanding.drain_to_vec() {
            self.queue_rtx(seq);
        }
        self.try_send(ctx);
        self.reset_timer(ctx);
    }

    fn on_note(&mut self, note: Note, ctx: &mut Ctx) {
        match note {
            Note::PacketsGranted { count } => {
                self.granted = (self.granted + count).min(self.total);
            }
            Note::GrantWatermark { granted } => {
                // Absolute sync: never lowers the count (a stale watermark
                // must not revoke grants already spent on transmissions).
                self.granted = self.granted.max(granted).min(self.total);
            }
            // Senders never serve sync queries.
            Note::GrantSync => return,
            // A port on this flow's path fell back from analytic to
            // packet-level modeling. Counted for observability; the
            // congestion response rides the usual ECN/trim signals.
            Note::FidelityShift => {
                ctx.count(Counter::FidelityHotSignals, 1);
                return;
            }
        }
        if self.started {
            self.try_send(ctx);
            self.reset_timer(ctx);
        }
    }

    fn on_restore(&mut self, ctx: &mut Ctx) {
        if self.is_complete() {
            return;
        }
        if !self.started {
            // The FlowStart event died while the host was down.
            self.on_start(ctx);
        } else {
            // An RTO that fired during the outage was consumed without a
            // handler, leaving no pending timer. Treat the outage as a
            // timeout: reset the window, offer everything outstanding again
            // and re-arm the RTO clock.
            self.cwnd = self.config.min_cwnd_bytes as f64;
            self.last_decrease = Some(ctx.now);
            if let Some(f) = &mut self.failover {
                f.last_feedback = ctx.now;
            }
            for seq in self.outstanding.drain_to_vec() {
                self.queue_rtx(seq);
            }
            self.try_send(ctx);
            self.reset_timer(ctx);
        }
        // Grants notified while we were down died with the crash and are
        // never replayed. Pull the ingress watermark; the reply (if the
        // ingress is up) re-grants synchronously via `GrantWatermark`, and
        // an ingress that is itself down pushes its watermark on restore.
        if self.granted < self.total {
            if let Some(src) = self.grant_src {
                ctx.notify(src, Note::GrantSync);
            }
        }
    }
}

/// Re-exported for tests and experiment code: one full data packet's
/// payload, so experiment code can convert flow bytes to packets.
pub fn packets_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(MSS).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Effect;
    use crate::packet::AgentId;

    fn cfg() -> CcConfig {
        CcConfig::for_rtt(SimDuration::from_micros(10), 4 * DATA_PKT_SIZE)
    }

    fn ctx_with<'a>(now: SimTime, effects: &'a mut Vec<Effect>) -> Ctx<'a> {
        Ctx {
            now,
            self_id: AgentId(0),
            effects,
        }
    }

    fn sent_seqs(effects: &[Effect]) -> Vec<u64> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { packet, .. } if packet.kind == PacketKind::Data => Some(packet.seq),
                _ => None,
            })
            .collect()
    }

    fn sender(total: u64) -> DctcpSender {
        DctcpSender::new(FlowId(0), HostId(0), HostId(1), total, cfg())
    }

    #[test]
    fn initial_burst_is_one_window() {
        let mut s = sender(100);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        // init cwnd = 4 packets.
        assert_eq!(sent_seqs(&fx), vec![0, 1, 2, 3]);
        // And the RTO slot is armed.
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::RearmTimer {
                slot: RTO_SLOT,
                kind: TimerKind::Rto,
                ..
            }
        )));
    }

    #[test]
    fn unmarked_ack_opens_window() {
        let mut s = sender(100);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        fx.clear();
        let data = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        let ack = Packet::ack_for(&data, HostId(1));
        s.on_packet(ack, &mut ctx_with(SimTime(1000), &mut fx));
        assert!(s.cwnd_bytes() > 4 * DATA_PKT_SIZE);
        // Window opened by ~1 packet worth of credit plus the acked packet:
        // two new sends are possible (slot freed + growth may round down).
        assert!(!sent_seqs(&fx).is_empty());
        assert_eq!(s.acked_packets(), 1);
    }

    #[test]
    fn duplicate_ack_is_ignored() {
        let mut s = sender(100);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        let data = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        let ack = Packet::ack_for(&data, HostId(1));
        s.on_packet(ack, &mut ctx_with(SimTime(1000), &mut fx));
        let cwnd = s.cwnd_bytes();
        s.on_packet(ack, &mut ctx_with(SimTime(2000), &mut fx));
        assert_eq!(s.cwnd_bytes(), cwnd, "dup ack must not change cwnd");
        assert_eq!(s.acked_packets(), 1);
    }

    #[test]
    fn marked_ack_halves_window_once_per_feedback_window() {
        let mut s = sender(100);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        let cwnd0 = s.cwnd_bytes();
        let mk_ack = |seq: u64| {
            let mut d = Packet::data(FlowId(0), seq, HostId(0), HostId(1), 0);
            d.ecn = crate::packet::Ecn::Ce;
            Packet::ack_for(&d, HostId(1))
        };
        let t = SimTime(SimDuration::from_micros(10).0);
        s.on_packet(mk_ack(0), &mut ctx_with(t, &mut fx));
        assert_eq!(s.cwnd_bytes(), cwnd0 / 2);
        // A second marked ack within the feedback window: suppressed.
        s.on_packet(mk_ack(1), &mut ctx_with(SimTime(t.0 + 100), &mut fx));
        assert_eq!(s.cwnd_bytes(), cwnd0 / 2);
        // After the feedback window: another halving.
        let later = SimTime(t.0 + SimDuration::from_micros(50).0);
        s.on_packet(mk_ack(2), &mut ctx_with(later, &mut fx));
        assert_eq!(s.cwnd_bytes(), cwnd0 / 4);
    }

    #[test]
    fn nack_triggers_retransmit_and_decrease() {
        // A 4-packet flow: the initial window covers it all, so acks drain
        // inflight without new sends replacing it.
        let mut s = sender(4);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        let cwnd0 = s.cwnd_bytes();
        // Resolve most of the initial window so the halved window still has
        // room for the retransmission.
        for seq in [0u64, 1, 3] {
            let d = Packet::data(FlowId(0), seq, HostId(0), HostId(1), 0);
            s.on_packet(
                Packet::ack_for(&d, HostId(1)),
                &mut ctx_with(SimTime(1000 + seq), &mut fx),
            );
        }
        fx.clear();
        let mut d = Packet::data(FlowId(0), 2, HostId(0), HostId(1), 0);
        d.trim();
        let nack = Packet::nack_for(&d, HostId(1));
        s.on_packet(
            nack,
            &mut ctx_with(SimTime(SimDuration::from_micros(20).0), &mut fx),
        );
        assert!(s.cwnd_bytes() < cwnd0);
        let seqs = sent_seqs(&fx);
        assert!(
            seqs.contains(&2),
            "nacked seq must be retransmitted: {seqs:?}"
        );
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Count {
                counter: Counter::Retransmits,
                ..
            }
        )));
    }

    #[test]
    fn duplicate_nack_retransmits_once() {
        let mut s = sender(100);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        // Shrink window to zero sendable so retransmits stay queued.
        let mut d = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        d.trim();
        let nack = Packet::nack_for(&d, HostId(1));
        fx.clear();
        s.on_packet(nack, &mut ctx_with(SimTime(1000), &mut fx));
        let first = sent_seqs(&fx).iter().filter(|&&q| q == 0).count();
        fx.clear();
        s.on_packet(nack, &mut ctx_with(SimTime(2000), &mut fx));
        let second = sent_seqs(&fx).iter().filter(|&&q| q == 0).count();
        assert!(first + second <= 1, "seq 0 retransmitted more than once");
    }

    #[test]
    fn rto_resets_window_and_requeues_outstanding() {
        let mut s = sender(100);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        fx.clear();
        let at = SimTime(SimDuration::from_millis(10).0);
        s.on_timer(TimerKind::Rto, &mut ctx_with(at, &mut fx));
        assert_eq!(s.cwnd_bytes(), DATA_PKT_SIZE, "window reset to min");
        // One packet (min window) goes out, carrying a retransmitted seq.
        let seqs = sent_seqs(&fx);
        assert_eq!(seqs.len(), 1);
        assert!(seqs[0] < 4);
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Count {
                counter: Counter::RtoFires,
                ..
            }
        )));
    }

    #[test]
    fn every_handler_rearms_or_cancels_the_rto_slot() {
        // Each mutation path must leave the RTO slot either moved (work
        // pending) or canceled (complete/idle) — the invariant that lets
        // the firing path drop its staleness guard.
        let mut s = sender(100);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        let rto_action = |fx: &[Effect]| {
            fx.iter()
                .filter(|e| {
                    matches!(
                        e,
                        Effect::RearmTimer { slot: RTO_SLOT, .. }
                            | Effect::CancelTimer { slot: RTO_SLOT, .. }
                    )
                })
                .count()
        };
        assert_eq!(rto_action(&fx), 1);
        fx.clear();
        let d = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        s.on_packet(
            Packet::ack_for(&d, HostId(1)),
            &mut ctx_with(SimTime(10), &mut fx),
        );
        assert_eq!(rto_action(&fx), 1);
        fx.clear();
        s.on_timer(TimerKind::Rto, &mut ctx_with(SimTime(20_000), &mut fx));
        assert_eq!(rto_action(&fx), 1);
    }

    #[test]
    fn completion_cancels_the_rto_slot() {
        let total = 4;
        let mut s = sender(total);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        for seq in 0..total {
            fx.clear();
            let d = Packet::data(FlowId(0), seq, HostId(0), HostId(1), 0);
            s.on_packet(
                Packet::ack_for(&d, HostId(1)),
                &mut ctx_with(SimTime(1000 + seq), &mut fx),
            );
        }
        assert!(s.is_complete());
        assert!(
            fx.iter()
                .any(|e| matches!(e, Effect::CancelTimer { slot: RTO_SLOT, .. })),
            "final ack must cancel the RTO slot: {fx:?}"
        );
    }

    #[test]
    fn relay_sender_waits_for_grants() {
        let mut s = DctcpSender::relay(FlowId(0), HostId(0), HostId(1), 10, cfg());
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        assert!(sent_seqs(&fx).is_empty(), "nothing granted yet");
        fx.clear();
        s.on_note(
            Note::PacketsGranted { count: 2 },
            &mut ctx_with(SimTime(10), &mut fx),
        );
        assert_eq!(sent_seqs(&fx), vec![0, 1]);
        fx.clear();
        s.on_note(
            Note::PacketsGranted { count: 100 },
            &mut ctx_with(SimTime(20), &mut fx),
        );
        // Grants clamp at total; window permits the rest (cwnd=4 pkts, 2 outstanding).
        assert_eq!(sent_seqs(&fx), vec![2, 3]);
    }

    #[test]
    fn grant_watermark_is_absolute_and_never_lowers() {
        let mut s = DctcpSender::relay(FlowId(0), HostId(0), HostId(1), 10, cfg());
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        fx.clear();
        s.on_note(
            Note::GrantWatermark { granted: 3 },
            &mut ctx_with(SimTime(10), &mut fx),
        );
        assert_eq!(sent_seqs(&fx), vec![0, 1, 2]);
        fx.clear();
        // A stale (lower) watermark must not revoke grants...
        s.on_note(
            Note::GrantWatermark { granted: 1 },
            &mut ctx_with(SimTime(20), &mut fx),
        );
        assert!(sent_seqs(&fx).is_empty());
        // ...while duplicate PacketsGranted on top of a watermark still add.
        s.on_note(
            Note::PacketsGranted { count: 1 },
            &mut ctx_with(SimTime(30), &mut fx),
        );
        assert_eq!(sent_seqs(&fx), vec![3]);
    }

    #[test]
    fn restored_relay_pulls_the_grant_watermark() {
        let ingress = AgentId(7);
        let mut s = DctcpSender::relay(FlowId(0), HostId(0), HostId(1), 10, cfg())
            .with_grant_source(ingress);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        s.on_note(
            Note::PacketsGranted { count: 2 },
            &mut ctx_with(SimTime(10), &mut fx),
        );
        // Crash window: grants notified while down died with the crash.
        fx.clear();
        s.on_restore(&mut ctx_with(SimTime(1_000_000), &mut fx));
        assert!(
            fx.iter().any(|e| matches!(
                e,
                Effect::Notify {
                    agent,
                    note: Note::GrantSync
                } if *agent == ingress
            )),
            "restore must query the ingress for the watermark: {fx:?}"
        );
    }

    #[test]
    fn fully_granted_relay_skips_the_sync_query() {
        let ingress = AgentId(7);
        let mut s = DctcpSender::relay(FlowId(0), HostId(0), HostId(1), 4, cfg())
            .with_grant_source(ingress);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        s.on_note(
            Note::PacketsGranted { count: 4 },
            &mut ctx_with(SimTime(10), &mut fx),
        );
        fx.clear();
        s.on_restore(&mut ctx_with(SimTime(1_000_000), &mut fx));
        assert!(
            !fx.iter().any(|e| matches!(
                e,
                Effect::Notify {
                    note: Note::GrantSync,
                    ..
                }
            )),
            "nothing left to re-grant, no query needed: {fx:?}"
        );
    }

    #[test]
    fn completes_when_all_acked() {
        let total = 4;
        let mut s = sender(total);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        for seq in 0..total {
            let d = Packet::data(FlowId(0), seq, HostId(0), HostId(1), 0);
            s.on_packet(
                Packet::ack_for(&d, HostId(1)),
                &mut ctx_with(SimTime(1000 + seq), &mut fx),
            );
        }
        assert!(s.is_complete());
    }

    #[test]
    fn karn_skips_retransmitted_samples() {
        let mut s = sender(4);
        let mut fx = Vec::new();
        s.on_start(&mut ctx_with(SimTime(0), &mut fx));
        // Ack seqs 1..4 so the halved window still fits the retransmission.
        for seq in 1u64..4 {
            let d = Packet::data(FlowId(0), seq, HostId(0), HostId(1), 0);
            s.on_packet(
                Packet::ack_for(&d, HostId(1)),
                &mut ctx_with(SimTime(1000 + seq), &mut fx),
            );
        }
        // NACK seq 0 -> retransmitted (window has room now).
        let mut d0 = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        d0.trim();
        fx.clear();
        s.on_packet(
            Packet::nack_for(&d0, HostId(1)),
            &mut ctx_with(SimTime(2000), &mut fx),
        );
        assert!(sent_seqs(&fx).contains(&0), "precondition: seq 0 resent");
        let srtt_before = s.est.srtt();
        // Ack for the retransmitted seq 0 with a bogus huge echo delay: the
        // sample is ambiguous (Karn) and must be skipped.
        let d0b = Packet::data(FlowId(0), 0, HostId(0), HostId(1), 0);
        s.on_packet(
            Packet::ack_for(&d0b, HostId(1)),
            &mut ctx_with(SimTime(SimDuration::from_secs(1).0), &mut fx),
        );
        assert_eq!(s.est.srtt(), srtt_before);
    }

    #[test]
    fn packets_for_bytes_rounding() {
        assert_eq!(packets_for_bytes(1), 1);
        assert_eq!(packets_for_bytes(MSS), 1);
        assert_eq!(packets_for_bytes(MSS + 1), 2);
        assert_eq!(packets_for_bytes(100_000_000), 100_000_000u64.div_ceil(MSS));
    }

    #[test]
    #[should_panic(expected = "empty flow")]
    fn zero_packets_panics() {
        sender(0);
    }
}
