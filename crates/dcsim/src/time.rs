//! Simulated time, durations, and bandwidth math.
//!
//! The simulator uses integer **picoseconds**: at 100 Gbps one bit lasts
//! 10 ps, so picosecond resolution keeps serialization times exact for every
//! packet size and link rate used in the paper. A `u64` of picoseconds
//! covers ~213 days of simulated time — far beyond any experiment here.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulated timestamp (picoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (picoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }

    /// Duration from fractional seconds (rounded to the nearest picosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * PS_PER_SEC as f64).round() as u64)
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// This duration in fractional microseconds.
    pub fn as_micros_f64(&self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Saturating multiply by an integer factor (used for RTO backoff).
    pub fn saturating_mul(&self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// This timestamp in fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps < PS_PER_NS {
            write!(f, "{ps}ps")
        } else if ps < PS_PER_US {
            write!(f, "{:.2}ns", ps as f64 / PS_PER_NS as f64)
        } else if ps < PS_PER_MS {
            write!(f, "{:.2}us", ps as f64 / PS_PER_US as f64)
        } else if ps < PS_PER_SEC {
            write!(f, "{:.2}ms", ps as f64 / PS_PER_MS as f64)
        } else {
            write!(f, "{:.3}s", ps as f64 / PS_PER_SEC as f64)
        }
    }
}

/// A link bandwidth in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Bandwidth from gigabits per second.
    pub const fn gbps(g: u64) -> Self {
        Bandwidth(g * 1_000_000_000)
    }

    /// Bandwidth from megabits per second.
    pub const fn mbps(m: u64) -> Self {
        Bandwidth(m * 1_000_000)
    }

    /// Bits per second.
    pub const fn bps(&self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` onto a link of this bandwidth, exact in
    /// picoseconds (rounded up so back-to-back packets never overlap).
    ///
    /// # Panics
    /// Panics if the bandwidth is zero.
    pub fn serialize_time(&self, bytes: u64) -> SimDuration {
        assert!(self.0 > 0, "zero bandwidth");
        let bits = bytes as u128 * 8;
        let ps = (bits * PS_PER_SEC as u128).div_ceil(self.0 as u128);
        SimDuration(ps as u64)
    }

    /// Bandwidth-delay product in bytes for a given round-trip time,
    /// rounded up to whole bytes.
    pub fn bdp_bytes(&self, rtt: SimDuration) -> u64 {
        let bits = self.0 as u128 * rtt.0 as u128 / PS_PER_SEC as u128;
        (bits.div_ceil(8)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_time_100g_1500b() {
        // 1500 B = 12000 bits at 100 Gbps = 120 ns exactly.
        let d = Bandwidth::gbps(100).serialize_time(1500);
        assert_eq!(d, SimDuration::from_nanos(120));
    }

    #[test]
    fn serialize_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> ceil in ps.
        let d = Bandwidth(3).serialize_time(1);
        assert_eq!(d.0, (8u128 * PS_PER_SEC as u128).div_ceil(3) as u64);
    }

    #[test]
    fn bdp_matches_paper_scale() {
        // 100 Gbps x 2 ms RTT = 25 MB.
        let bdp = Bandwidth::gbps(100).bdp_bytes(SimDuration::from_millis(2));
        assert_eq!(bdp, 25_000_000);
    }

    #[test]
    fn bdp_small_rtt() {
        // 100 Gbps x 8 us = 100 KB.
        let bdp = Bandwidth::gbps(100).bdp_bytes(SimDuration::from_micros(8));
        assert_eq!(bdp, 100_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_micros(5));
        let mut t2 = t;
        t2 += SimDuration::from_micros(5);
        assert_eq!(t2.since(t), SimDuration::from_micros(5));
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(format!("{}", SimDuration(500)), "500ps");
        assert_eq!(format!("{}", SimDuration::from_nanos(120)), "120.00ns");
        assert_eq!(format!("{}", SimDuration::from_micros(359)), "359.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn secs_f64_roundtrip() {
        let d = SimDuration::from_secs_f64(0.001234);
        assert!((d.as_secs_f64() - 0.001234).abs() < 1e-15);
    }

    #[test]
    fn duration_sub_saturates() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(10);
        assert_eq!(a - b, SimDuration::ZERO);
    }
}
