//! Integration acceptance for the sharded control plane: **any single
//! shard crash mid-incast completes every in-flight incast** — via sibling
//! takeover, owner restore, or decentralized fallback — with the lease
//! ledger balanced and zero active leases at quiescence.

use dcsim::packet::HostId;
use dcsim::time::{SimDuration, SimTime};
use incast_core::orchestrator::{
    IncastRequest, ProxySelector, RenewOutcome, ShardedConfig, ShardedOrchestrator,
};

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

fn plane() -> ShardedOrchestrator {
    ShardedOrchestrator::new((32..64).map(HostId).collect(), ShardedConfig::default(), 17)
}

fn request(id: u64, receiver: u32) -> IncastRequest {
    IncastRequest {
        id,
        senders: (0..8).map(HostId).collect(),
        receiver: HostId(receiver),
        expected_bytes: 1 << 20,
    }
}

/// Issues 16 incasts spread over all 4 shards, crashes `victim` mid-flight,
/// and keeps renewing on a 1 ms epoch cadence until every incast completes
/// (10 epochs), optionally restoring the victim halfway.
fn run_incasts_through_crash(victim: u32, restore: bool) {
    let mut orch = plane();
    let mut in_flight = Vec::new();
    for id in 0..16u64 {
        // Receivers 64..80: home shards cycle 0,1,2,3.
        let a = orch
            .select(&request(id, 64 + id as u32))
            .expect("grant must succeed on a healthy plane");
        in_flight.push((id, a.proxy));
    }
    assert_eq!(orch.ledger().active, 16);
    orch.crash_shard(victim);

    for epoch in 1..=10u64 {
        let now = t(epoch * 1_000);
        orch.advance_to(now);
        if restore && epoch == 5 {
            orch.restore_shard(victim, now);
        }
        for &(id, _) in &in_flight {
            match orch.renew(id, now) {
                RenewOutcome::Renewed | RenewOutcome::Reclaimed | RenewOutcome::Pending => {}
                bad @ (RenewOutcome::Expired | RenewOutcome::Unknown) => {
                    panic!("incast {id} lost its lease mid-flight: {bad:?}")
                }
            }
        }
    }

    // Every incast completes; every release must find its lease.
    for &(id, _) in &in_flight {
        orch.release(id);
    }
    assert_eq!(
        orch.release_unknown(),
        0,
        "every completion found its lease"
    );
    assert!(orch.ledger().balanced(), "{:?}", orch.ledger());
    assert_eq!(orch.ledger().active, 0, "{:?}", orch.ledger());
    assert_eq!(orch.draining_leases(), 0);
    // The 4 incasts homed on the victim were all adopted (or re-adopted by
    // the restored owner) rather than silently dropped.
    assert_eq!(orch.stats().reclaims, 4, "{:?}", orch.stats());
    assert!(orch.health_converged() || restore);
}

#[test]
fn any_single_shard_crash_completes_all_in_flight_incasts() {
    for victim in 0..4 {
        run_incasts_through_crash(victim, false);
    }
}

#[test]
fn crash_then_restore_also_completes_everything() {
    for victim in 0..4 {
        run_incasts_through_crash(victim, true);
    }
}

#[test]
fn new_incasts_keep_flowing_during_the_outage() {
    let mut orch = plane();
    orch.crash_shard(2);
    // Before gossip converges: fallback. After: takeover. Either way every
    // request gets a proxy.
    let mut granted = 0;
    for id in 0..12u64 {
        let now = t(id * 1_000);
        orch.advance_to(now);
        if orch.select(&request(id, 66)).is_some() {
            granted += 1;
        }
    }
    assert_eq!(granted, 12, "no request goes unserved during the outage");
    let stats = orch.stats();
    assert!(stats.fallback_selections > 0, "early requests degrade");
    assert!(stats.takeovers > 0, "late requests take over: {stats:?}");
    for id in 0..12u64 {
        orch.release(id);
    }
    assert_eq!(orch.ledger().active, 0);
    assert!(orch.ledger().balanced());
}
