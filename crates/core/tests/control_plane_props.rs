//! Property tests for the sharded control plane.
//!
//! Two families:
//!
//! * **Lease lifecycle vs oracle** — [`LeaseTable`] (and the full
//!   [`ShardedOrchestrator`] under random crash/restore interleavings) is
//!   model-checked against a `BTreeMap` oracle of live leases; the
//!   [`LeaseLedger`] balance `granted == released + expired + reclaimed +
//!   active` must hold after every operation, and `active` must reach
//!   zero once every lease is released or allowed to run out.
//! * **Gossip convergence** — after an arbitrary crash/restore schedule
//!   ends, every live shard's failure detector converges on exactly the
//!   dead set within a bounded number of heartbeat rounds (the extra
//!   gossip partner cycles deterministically, so any live pair exchanges
//!   a direct heartbeat at least once every `shards` periods).

use dcsim::audit::LeaseLedger;
use dcsim::packet::HostId;
use dcsim::time::{SimDuration, SimTime};
use incast_core::orchestrator::lease::{Lease, LeaseTable};
use incast_core::orchestrator::{
    IncastRequest, ProxySelector, RenewOutcome, ShardedConfig, ShardedOrchestrator,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Decodes one fuzzed word into (op, id, tick). Ids live in a small space
/// so grants, renewals, and releases of the *same* lease actually collide.
fn decode(word: u64) -> (u64, u64, u64) {
    (word % 8, (word >> 3) % 24, (word >> 8) % 64)
}

fn t(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

proptest! {
    /// LeaseTable agrees with a BTreeMap oracle of live leases under a
    /// random grant / extend / release / expire interleaving, and the
    /// ledger balances after every operation.
    #[test]
    fn lease_table_matches_oracle(ops in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut table = LeaseTable::new();
        let mut oracle: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut ledger = LeaseLedger::default();
        let mut now_us = 0u64;
        for &word in &ops {
            let (op, id, tick) = decode(word);
            now_us += tick;
            let now = t(now_us);
            match op {
                0..=2 => {
                    if let std::collections::btree_map::Entry::Vacant(slot) = oracle.entry(id) {
                        let expires_at = now + SimDuration::from_micros(40);
                        table.grant(
                            id,
                            Lease {
                                proxy: HostId(1),
                                epoch: 1,
                                granted_at: now,
                                expires_at,
                                bytes: 10,
                            },
                            &mut ledger,
                        );
                        slot.insert(expires_at);
                    }
                }
                3 | 4 => {
                    let expires_at = now + SimDuration::from_micros(40);
                    let extended = table.extend(id, expires_at);
                    prop_assert_eq!(extended, oracle.contains_key(&id));
                    if extended {
                        oracle.insert(id, expires_at);
                    }
                }
                5 | 6 => {
                    let released = table.release(id, &mut ledger);
                    prop_assert_eq!(released.is_some(), oracle.remove(&id).is_some());
                }
                _ => {
                    let due = table.expire_due(now, &mut ledger);
                    let mut want: Vec<u64> = oracle
                        .iter()
                        .filter(|(_, &exp)| exp <= now)
                        .map(|(&id, _)| id)
                        .collect();
                    want.sort_unstable();
                    let mut got: Vec<u64> = due.iter().map(|(id, _)| *id).collect();
                    got.sort_unstable();
                    prop_assert_eq!(got, want.clone());
                    for id in want {
                        oracle.remove(&id);
                    }
                }
            }
            prop_assert!(ledger.balanced(), "unbalanced: {:?}", ledger);
            prop_assert_eq!(ledger.active as usize, oracle.len());
            prop_assert_eq!(table.len(), oracle.len());
        }
        // Drain to quiescence: release everything still live.
        let live: Vec<u64> = oracle.keys().copied().collect();
        for id in live {
            prop_assert!(table.release(id, &mut ledger).is_some());
        }
        prop_assert!(ledger.balanced());
        prop_assert_eq!(ledger.active, 0);
    }

    /// The full sharded orchestrator keeps its ledger balanced under a
    /// random select / renew / release / crash / restore interleaving, and
    /// drains to zero active leases once the dust settles.
    #[test]
    fn sharded_ledger_balances_under_chaos(ops in prop::collection::vec(any::<u64>(), 1..200)) {
        let candidates: Vec<HostId> = (0..8).map(HostId).collect();
        let config = ShardedConfig {
            shards: 4,
            lease_ttl: SimDuration::from_micros(400),
            heartbeat_every: SimDuration::from_micros(50),
            suspect_after: SimDuration::from_micros(150),
            gossip_delay: SimDuration::from_micros(10),
            fallback_probes: 2,
        };
        let mut orch = ShardedOrchestrator::new(candidates, config, 9);
        let mut next_id = 0u64;
        let mut issued: Vec<u64> = Vec::new();
        let mut now_us = 0u64;
        for &word in &ops {
            let (op, pick, tick) = decode(word);
            now_us += tick;
            orch.advance_to(t(now_us));
            match op {
                0 | 1 => {
                    let id = next_id;
                    next_id += 1;
                    let selected = orch.select(&IncastRequest {
                        id,
                        senders: vec![HostId(100)],
                        receiver: HostId(64 + (pick as u32 % 7)),
                        expected_bytes: 50,
                    });
                    if selected.is_some() {
                        issued.push(id);
                    }
                }
                2 | 3 => {
                    if !issued.is_empty() {
                        let id = issued[pick as usize % issued.len()];
                        let _ = orch.renew(id, t(now_us));
                    }
                }
                4 | 5 => {
                    if !issued.is_empty() {
                        let id = issued[pick as usize % issued.len()];
                        orch.release(id); // Repeats audit as release_unknown.
                    }
                }
                6 => orch.crash_shard(pick as u32 % 4),
                _ => orch.restore_shard(pick as u32 % 4, t(now_us)),
            }
            prop_assert!(
                orch.ledger().balanced(),
                "unbalanced after op {}: {:?}",
                word,
                orch.ledger()
            );
        }
        // Quiescence: release every id ever issued (repeats and already-
        // expired ones are audited, not lost), then run the clock far past
        // the TTL so stragglers expire.
        for &id in &issued {
            orch.release(id);
        }
        now_us += 2_000;
        orch.advance_to(t(now_us));
        prop_assert!(orch.ledger().balanced(), "{:?}", orch.ledger());
        prop_assert_eq!(orch.ledger().active, 0, "{:?}", orch.ledger());
        prop_assert_eq!(orch.draining_leases(), 0);
    }

    /// After the last crash/restore event, every live shard's suspect set
    /// converges on exactly the dead set within a bounded number of
    /// heartbeat rounds.
    #[test]
    fn gossip_converges_within_bounded_rounds(
        shards in 2u32..10,
        events in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let heartbeat_us = 50u64;
        let config = ShardedConfig {
            shards,
            lease_ttl: SimDuration::from_millis(100),
            heartbeat_every: SimDuration::from_micros(heartbeat_us),
            // A live pair exchanges a direct heartbeat at least once every
            // `shards` periods, so this horizon never flags a live shard.
            suspect_after: SimDuration::from_micros(heartbeat_us * (shards as u64 + 2) + 20),
            gossip_delay: SimDuration::from_micros(10),
            fallback_probes: 2,
        };
        let mut orch = ShardedOrchestrator::new(vec![HostId(0)], config, 3);
        // Random crash/restore schedule, one event per heartbeat period.
        let mut now_us = 0;
        for &word in &events {
            now_us += heartbeat_us;
            orch.advance_to(t(now_us));
            let shard = (word >> 1) as u32 % shards;
            if word % 2 == 0 {
                orch.crash_shard(shard);
            } else {
                orch.restore_shard(shard, t(now_us));
            }
        }
        prop_assume!(orch.alive_shards() > 0);
        // Bounded convergence: enough rounds for a full partner cycle plus
        // the suspicion horizon, stepped at heartbeat granularity.
        let rounds = 2 * (shards as u64 + 2) + 4;
        for _ in 0..rounds {
            now_us += heartbeat_us;
            orch.advance_to(t(now_us));
        }
        prop_assert!(
            orch.health_converged(),
            "live shards disagree after {} rounds (alive={})",
            rounds,
            orch.alive_shards()
        );
    }

    /// Renewing within the term always succeeds on a healthy plane, and
    /// the outcome ladder never invents a lease: an id that was never
    /// granted renews as Unknown.
    #[test]
    fn renewal_ladder_is_sound(id in 0u64..1000, ticks in 1u64..10) {
        let mut orch = ShardedOrchestrator::new(
            (0..4).map(HostId).collect(),
            ShardedConfig::default(),
            5,
        );
        prop_assert_eq!(orch.renew(id, t(0)), RenewOutcome::Unknown);
        orch.select(&IncastRequest {
            id,
            senders: vec![HostId(100)],
            receiver: HostId(200),
            expected_bytes: 10,
        }).unwrap();
        let mut now_us = 0;
        for _ in 0..ticks {
            now_us += 2_000; // Well within the 5 ms TTL.
            orch.advance_to(t(now_us));
            prop_assert_eq!(orch.renew(id, t(now_us)), RenewOutcome::Renewed);
        }
        orch.release(id);
        prop_assert_eq!(orch.ledger().active, 0);
        prop_assert!(orch.ledger().balanced());
    }
}
