//! Which incasts benefit from a proxy? (§5 FW#3, §4.2)
//!
//! "As shown in Figure 2 (Right), not all incasts benefit from using a
//! proxy and future work needs to understand how to identify incasts that
//! should be routed through a proxy."
//!
//! The predictor applies the mechanism the paper identifies: the proxy
//! helps exactly when the incast's **first-RTT traffic overwhelms the
//! bottleneck** — i.e. when the aggregate initial windows exceed what the
//! receiver down-ToR can absorb (its buffer plus what it drains in one
//! round-trip). Below that point there is no loss, feedback delay is
//! irrelevant, and the extra hop is pure overhead (the paper's 20 MB
//! case); above it, completion time is governed by the feedback loop and
//! the proxy wins, increasingly so as the loss multiple and the
//! inter/intra latency gap grow.

use dcsim::time::{Bandwidth, SimDuration};
use serde::Serialize;

/// Inputs to the benefit prediction — all obtainable by a cloud operator
/// from topology knowledge plus the incast declaration.
#[derive(Debug, Clone, Copy)]
pub struct IncastProfile {
    /// Total incast bytes.
    pub total_bytes: u64,
    /// Number of senders.
    pub degree: usize,
    /// End-to-end (inter-datacenter) base RTT.
    pub inter_rtt: SimDuration,
    /// Intra-datacenter base RTT (sender to a local proxy).
    pub intra_rtt: SimDuration,
    /// Bottleneck link bandwidth (receiver down-ToR).
    pub bottleneck: Bandwidth,
    /// Buffer of the bottleneck queue in bytes.
    pub bottleneck_buffer: u64,
}

/// The prediction.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BenefitPrediction {
    /// Whether the first-RTT burst overflows the bottleneck (the paper's
    /// criterion for the proxy to matter at all).
    pub first_rtt_loss: bool,
    /// Bytes the first RTT can absorb without loss.
    pub absorbable_bytes: u64,
    /// Bytes the senders emit in the first RTT.
    pub first_rtt_bytes: u64,
    /// Crude estimated completion-time reduction (0.0 when no loss is
    /// expected; otherwise grows with the latency gap and overload factor,
    /// saturating below 1).
    pub estimated_reduction: f64,
    /// The recommendation.
    pub use_proxy: bool,
}

/// Predicts whether routing this incast through a local proxy will reduce
/// its completion time.
pub fn predict(profile: &IncastProfile) -> BenefitPrediction {
    assert!(profile.degree > 0, "degree must be positive");
    // Each sender's initial window is 1 BDP of the end-to-end path (§4.1),
    // capped by its share of the flow.
    let bdp = profile.bottleneck.bdp_bytes(profile.inter_rtt);
    let per_sender = profile.total_bytes / profile.degree as u64;
    let first_rtt_bytes = (profile.degree as u64).saturating_mul(per_sender.min(bdp));
    // The burst arrives at up to `degree` line rates while the bottleneck
    // drains one: of B burst bytes, the queue must hold B·(1 − 1/degree)
    // beyond its drainage. Loss occurs when that exceeds the buffer.
    let queued = first_rtt_bytes.saturating_sub(first_rtt_bytes / profile.degree as u64);
    let absorbable = profile.bottleneck_buffer + first_rtt_bytes / profile.degree as u64;
    let first_rtt_loss = queued > profile.bottleneck_buffer;

    let estimated_reduction = if !first_rtt_loss {
        0.0
    } else {
        // Completion under loss is dominated by recovery rounds of length
        // `rtt`: baseline pays O(log overload) rounds of the inter-DC RTT,
        // the proxy pays the same rounds of the intra-DC RTT plus the
        // unavoidable serialization. Reduction ≈ 1 − (ideal + proxy rounds)
        // / (ideal + baseline rounds).
        let ideal = profile.total_bytes as f64 * 8.0 / profile.bottleneck.bps() as f64;
        let overload = first_rtt_bytes as f64 / absorbable as f64;
        let rounds = overload.log2().max(1.0) + 2.0;
        let base_time = ideal + rounds * profile.inter_rtt.as_secs_f64() * 4.0;
        let proxy_time = ideal
            + rounds * profile.intra_rtt.as_secs_f64() * 4.0
            + profile.inter_rtt.as_secs_f64();
        ((base_time - proxy_time) / base_time).clamp(0.0, 1.0)
    };

    BenefitPrediction {
        first_rtt_loss,
        absorbable_bytes: absorbable,
        first_rtt_bytes,
        estimated_reduction,
        use_proxy: first_rtt_loss && estimated_reduction > 0.05,
    }
}

/// Builds a profile from the standard §4.1 evaluation topology parameters.
pub fn paper_profile(total_bytes: u64, degree: usize, wan_latency: SimDuration) -> IncastProfile {
    // Base RTTs of the two-DC leaf-spine topology: 4 intra hops of 1 µs
    // plus 2 long-haul hops each way, plus serialization (small).
    let inter_one_way = SimDuration(4 * SimDuration::from_micros(1).0 + 2 * wan_latency.0);
    IncastProfile {
        total_bytes,
        degree,
        inter_rtt: SimDuration(2 * inter_one_way.0),
        intra_rtt: SimDuration::from_micros(10),
        bottleneck: Bandwidth::gbps(100),
        bottleneck_buffer: 17_015_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_1ms(total_mb: u64, degree: usize) -> BenefitPrediction {
        predict(&paper_profile(
            total_mb * 1_000_000,
            degree,
            SimDuration::from_millis(1),
        ))
    }

    #[test]
    fn small_incast_gets_no_proxy() {
        // The paper's 20 MB case: no first-RTT loss, no benefit.
        let p = at_1ms(20, 4);
        assert!(!p.first_rtt_loss, "{p:?}");
        assert!(!p.use_proxy);
        assert_eq!(p.estimated_reduction, 0.0);
    }

    #[test]
    fn large_incast_gets_a_proxy() {
        let p = at_1ms(100, 4);
        assert!(p.first_rtt_loss, "{p:?}");
        assert!(p.use_proxy);
        assert!(p.estimated_reduction > 0.3, "{p:?}");
    }

    #[test]
    fn reduction_grows_with_degree() {
        let lo = at_1ms(100, 4).estimated_reduction;
        let hi = at_1ms(100, 32).estimated_reduction;
        assert!(hi >= lo, "lo={lo} hi={hi}");
    }

    #[test]
    fn reduction_grows_with_latency_gap() {
        let near = predict(&paper_profile(
            100_000_000,
            4,
            SimDuration::from_micros(100),
        ));
        let far = predict(&paper_profile(100_000_000, 4, SimDuration::from_millis(10)));
        assert!(far.estimated_reduction > near.estimated_reduction);
    }

    #[test]
    fn tiny_latency_gap_means_no_proxy() {
        // Long-haul links as fast as intra-DC: nothing to shorten.
        let p = predict(&paper_profile(100_000_000, 4, SimDuration::from_micros(1)));
        assert!(
            !p.use_proxy || p.estimated_reduction < 0.3,
            "no meaningful win without a latency gap: {p:?}"
        );
    }

    #[test]
    fn first_rtt_bytes_capped_by_flow_size() {
        // Degree 1000 of 1 MB total: each sender has ~1 KB, far below BDP.
        let p = at_1ms(1, 1000);
        assert!(p.first_rtt_bytes <= 1_000_000);
    }

    #[test]
    fn predictor_agrees_with_simulation_boundary() {
        // §4.2: "any incast larger than 20MB" benefits at degree 4; 20 MB
        // itself does not. The predictor's boundary must match.
        assert!(!at_1ms(20, 4).use_proxy);
        assert!(at_1ms(40, 4).use_proxy);
        assert!(at_1ms(100, 4).use_proxy);
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_panics() {
        predict(&paper_profile(1, 0, SimDuration::from_millis(1)));
    }
}
