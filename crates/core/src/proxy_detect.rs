//! A trimming-free Streamlined proxy: Future Work #1, implemented.
//!
//! §5: "A generalizable proxy design needs to keep track of packet loss
//! without special router support, e.g., packet trimming."
//!
//! [`DetectingProxy`] is a drop-in replacement for the trim/NACK proxy on
//! networks whose switches simply drop: it watches each flow's sequence
//! numbers with the bounded-memory [`LossDetector`] and converts inferred
//! gaps into early NACKs. The trade-offs the paper anticipates are real
//! and measurable here:
//!
//! * **False positives** — packet-sprayed paths reorder; a gap that is
//!   merely late triggers a spurious NACK (a wasted retransmission and an
//!   unnecessary window cut at the sender).
//! * **False negatives** — a *retransmission* that is dropped again
//!   creates no new gap at the proxy, so only the sender's RTO recovers
//!   it; likewise gaps evicted by the memory bound.
//! * **Detection latency** — a gap is only declared after
//!   `reorder_threshold` later packets, so the signal lags the loss by a
//!   few packet times (still microseconds, versus the long-haul RTT).
//!
//! The `ablation_detector_proxy` binary quantifies all three against the
//! trimming-based proxy and the no-proxy baseline.

use crate::lossdetect::{LossDetector, LossDetectorConfig};
use dcsim::agent::{Agent, Counter, Ctx};
use dcsim::det::DetMap;
use dcsim::events::TimerKind;
use dcsim::packet::{FlowId, HostId, Packet, PacketKind};
use dcsim::time::{SimDuration, SimTime};

/// Cancelable timer slot holding the quiescence sweep timer.
const SWEEP_SLOT: u32 = 0;

/// Address pair of a proxied flow (sender side and receiver side).
#[derive(Debug, Clone, Copy)]
struct FlowDirs {
    sender: HostId,
    receiver: HostId,
}

/// The detector-based proxy agent: forwards everything, NACKs inferred
/// losses. Works on drop-tail networks (no trimming support needed).
pub struct DetectingProxy {
    host: HostId,
    flows: DetMap<FlowId, FlowDirs>,
    detector: LossDetector,
    processing_delay: SimDuration,
    /// Quiescence sweep period (the eBPF-timer analogue): a flow with
    /// unresolved gaps that has been silent this long gets its gaps
    /// declared and its outstanding NACKs re-sent. Covers tail losses,
    /// which pure gap counting cannot see.
    sweep_interval: SimDuration,
    /// Last data observation per flow.
    last_seen: DetMap<FlowId, SimTime>,
    /// True while the sweep slot holds a pending timer.
    timer_armed: bool,
}

impl DetectingProxy {
    /// Creates a detecting proxy on `host`.
    pub fn new(host: HostId, processing_delay: SimDuration, config: LossDetectorConfig) -> Self {
        DetectingProxy {
            host,
            flows: DetMap::new(),
            detector: LossDetector::new(config),
            processing_delay,
            sweep_interval: SimDuration::from_micros(50),
            last_seen: DetMap::new(),
            timer_armed: false,
        }
    }

    /// Overrides the quiescence sweep period (default 50 µs — a few
    /// intra-datacenter RTTs).
    pub fn with_sweep_interval(mut self, interval: SimDuration) -> Self {
        self.sweep_interval = interval;
        self
    }

    fn arm_sweep(&mut self, ctx: &mut Ctx) {
        if self.timer_armed {
            return;
        }
        self.timer_armed = true;
        ctx.rearm_timer(
            SWEEP_SLOT,
            ctx.now + self.sweep_interval,
            TimerKind::Custom { tag: 0 },
        );
    }

    fn emit_nack(&self, flow: FlowId, seq: u64, dirs: FlowDirs, ctx: &mut Ctx) {
        ctx.count(Counter::ProxyNacks, 1);
        let mut nack = Packet::data(flow, seq, dirs.sender, self.host, ctx.now.0);
        nack.trim();
        let nack = Packet::nack_for(&nack, self.host);
        ctx.send_after(self.processing_delay, self.host, nack);
    }

    /// The host this proxy runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Registers a flow to be relayed through this proxy. Rejects double
    /// registration instead of silently rebinding the flow's endpoints.
    pub fn register(
        &mut self,
        flow: FlowId,
        sender: HostId,
        receiver: HostId,
    ) -> Result<(), dcsim::proxy::ProxyError> {
        if self.flows.contains_key(&flow) {
            return Err(dcsim::proxy::ProxyError::AlreadyRegistered { flow });
        }
        self.flows.insert(flow, FlowDirs { sender, receiver });
        Ok(())
    }

    /// Detector statistics (observed / declared / late arrivals / evicted).
    pub fn detector_stats(&self) -> crate::lossdetect::LossDetectorStats {
        self.detector.stats()
    }
}

impl Agent for DetectingProxy {
    fn on_timer(&mut self, kind: TimerKind, ctx: &mut Ctx) {
        let TimerKind::Custom { .. } = kind else {
            return;
        };
        self.timer_armed = false;
        let mut any_state = false;
        // NACK emission order decides event scheduling order; DetMap
        // iterates in flow-id order, so identical runs stay identical.
        let flows: Vec<FlowId> = self.flows.keys().copied().collect();
        for flow in flows {
            if !self.detector.has_state(flow) {
                continue;
            }
            let quiet = self
                .last_seen
                .get(&flow)
                .is_none_or(|&t| ctx.now.0.saturating_sub(t.0) >= self.sweep_interval.0);
            if quiet {
                let dirs = self.flows[&flow];
                for loss in self.detector.sweep(flow) {
                    self.emit_nack(flow, loss.seq, dirs, ctx);
                }
            }
            any_state = any_state || self.detector.has_state(flow);
        }
        if any_state {
            self.arm_sweep(ctx);
        }
    }

    fn on_crash(&mut self, ctx: &mut Ctx) {
        // In-flight soft state dies with the process: gap-tracking and
        // quiescence bookkeeping are rebuilt from live traffic after a
        // restart. Flow registrations are configuration and survive.
        let config = self.detector.config();
        self.detector = LossDetector::new(config);
        self.last_seen.clear();
        self.timer_armed = false;
        ctx.cancel_timer(SWEEP_SLOT);
    }

    fn on_packet(&mut self, mut pkt: Packet, ctx: &mut Ctx) {
        let Some(&dirs) = self.flows.get(&pkt.flow) else {
            // Unknown flow (lost registration, misrouted packet): dropped,
            // not a crash; the sender's RTO recovers end to end.
            ctx.count(Counter::ProxyUnknownFlowDrops, 1);
            return;
        };
        match pkt.kind {
            PacketKind::Data => {
                debug_assert!(!pkt.trimmed, "detecting proxy runs on drop-tail networks");
                self.last_seen.insert(pkt.flow, ctx.now);
                // Infer losses from the sequence stream, then forward.
                for loss in self.detector.observe(pkt.flow, pkt.seq) {
                    ctx.count(Counter::ProxyNacks, 1);
                    let mut nack = Packet::nack_for(&pkt, self.host);
                    nack.seq = loss.seq;
                    // The echo carries this packet's send time — the best
                    // available bound on when the lost packet was sent.
                    ctx.send_after(self.processing_delay, self.host, nack);
                }
                pkt.dst = dirs.receiver;
                ctx.count(Counter::ProxyForwarded, 1);
                ctx.send_after(self.processing_delay, self.host, pkt);
                self.arm_sweep(ctx);
            }
            PacketKind::Ack | PacketKind::Nack => {
                debug_assert_eq!(pkt.src, dirs.receiver);
                pkt.dst = dirs.sender;
                ctx.count(Counter::ProxyForwarded, 1);
                ctx.send_after(self.processing_delay, self.host, pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsim::agent::Effect;
    use dcsim::packet::AgentId;
    use dcsim::time::SimTime;

    const SENDER: HostId = HostId(0);
    const PROXY: HostId = HostId(5);
    const RECEIVER: HostId = HostId(9);

    fn proxy(threshold: u32) -> DetectingProxy {
        let mut p = DetectingProxy::new(
            PROXY,
            SimDuration::ZERO,
            LossDetectorConfig {
                reorder_threshold: threshold,
                max_pending: 128,
                ..Default::default()
            },
        );
        p.register(FlowId(0), SENDER, RECEIVER).expect("fresh flow");
        p
    }

    fn ctx_with<'a>(effects: &'a mut Vec<Effect>) -> Ctx<'a> {
        Ctx::harness(SimTime(0), AgentId(2), effects)
    }

    fn sends(fx: &[Effect]) -> Vec<&Packet> {
        fx.iter()
            .filter_map(|e| match e {
                Effect::Send { packet, .. } => Some(packet),
                _ => None,
            })
            .collect()
    }

    fn data(seq: u64) -> Packet {
        Packet::data(FlowId(0), seq, SENDER, PROXY, 0)
    }

    #[test]
    fn forwards_in_order_data_without_nacks() {
        let mut p = proxy(2);
        let mut fx = Vec::new();
        for seq in 0..10 {
            p.on_packet(data(seq), &mut ctx_with(&mut fx));
        }
        let out = sends(&fx);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|pk| pk.kind == PacketKind::Data));
        assert!(out.iter().all(|pk| pk.dst == RECEIVER));
    }

    #[test]
    fn nacks_inferred_gap() {
        let mut p = proxy(2);
        let mut fx = Vec::new();
        p.on_packet(data(0), &mut ctx_with(&mut fx));
        // Seq 1 lost in the network: 2 and 3 reveal and confirm the gap.
        p.on_packet(data(2), &mut ctx_with(&mut fx));
        fx.clear();
        p.on_packet(data(3), &mut ctx_with(&mut fx));
        let out = sends(&fx);
        let nacks: Vec<_> = out
            .iter()
            .filter(|pk| pk.kind == PacketKind::Nack)
            .collect();
        assert_eq!(nacks.len(), 1);
        assert_eq!(nacks[0].seq, 1);
        assert_eq!(nacks[0].dst, SENDER);
    }

    #[test]
    fn tolerates_mild_reordering() {
        let mut p = proxy(3);
        let mut fx = Vec::new();
        for &seq in &[0u64, 2, 1, 3, 5, 4, 6] {
            p.on_packet(data(seq), &mut ctx_with(&mut fx));
        }
        assert!(
            sends(&fx).iter().all(|pk| pk.kind == PacketKind::Data),
            "reordering below the threshold must not NACK"
        );
        assert_eq!(p.detector_stats().declared, 0);
    }

    #[test]
    fn forwards_reverse_path() {
        let mut p = proxy(2);
        let mut fx = Vec::new();
        let d = Packet::data(FlowId(0), 0, SENDER, RECEIVER, 0);
        let mut ack = Packet::ack_for(&d, RECEIVER);
        ack.dst = PROXY;
        p.on_packet(ack, &mut ctx_with(&mut fx));
        let out = sends(&fx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, PacketKind::Ack);
        assert_eq!(out[0].dst, SENDER);
    }

    #[test]
    fn retransmission_resolves_the_gap_cleanly() {
        let mut p = proxy(2);
        let mut fx = Vec::new();
        p.on_packet(data(0), &mut ctx_with(&mut fx));
        p.on_packet(data(2), &mut ctx_with(&mut fx));
        p.on_packet(data(3), &mut ctx_with(&mut fx)); // NACK for 1 emitted
        fx.clear();
        // The retransmitted seq 1 arrives: forwarded, no further NACKs.
        p.on_packet(data(1), &mut ctx_with(&mut fx));
        let out = sends(&fx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, PacketKind::Data);
        assert_eq!(out[0].seq, 1);
        assert_eq!(
            p.detector_stats().late_arrivals,
            1,
            "counted as FP in hindsight"
        );
    }

    #[test]
    fn double_registration_rejected() {
        let mut p = proxy(2);
        assert!(p.register(FlowId(0), SENDER, RECEIVER).is_err());
    }

    #[test]
    fn unknown_flow_dropped_and_counted() {
        let mut p = proxy(2);
        let mut fx = Vec::new();
        let stray = Packet::data(FlowId(9), 0, SENDER, PROXY, 0);
        p.on_packet(stray, &mut ctx_with(&mut fx));
        assert!(sends(&fx).is_empty(), "unknown flows must not be forwarded");
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Count {
                counter: Counter::ProxyUnknownFlowDrops,
                amount: 1
            }
        )));
    }

    #[test]
    fn crash_drops_soft_state_but_keeps_registrations() {
        let mut p = proxy(2);
        let mut fx = Vec::new();
        p.on_packet(data(0), &mut ctx_with(&mut fx));
        p.on_packet(data(2), &mut ctx_with(&mut fx)); // open gap for seq 1
        p.on_crash(&mut ctx_with(&mut fx));
        fx.clear();
        // Post-restart traffic is forwarded (registration survived) and the
        // pre-crash gap is forgotten (fresh detector state).
        p.on_packet(data(5), &mut ctx_with(&mut fx));
        let out = sends(&fx);
        assert!(out
            .iter()
            .any(|pk| pk.kind == PacketKind::Data && pk.seq == 5));
        assert!(
            out.iter().all(|pk| pk.kind != PacketKind::Nack),
            "pre-crash gaps must not be declared after a restart"
        );
    }
}
