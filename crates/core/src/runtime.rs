//! The operator control loop of §6 ("pattern-aware rerouting"),
//! assembled: watch per-destination traffic, detect incast signatures,
//! decide benefit, allocate proxies, pre-arm before predicted bursts,
//! and release when traffic subsides.
//!
//! "The cloud operator can proactively detect incast and route traffic
//! through a local proxy, naturally throttling it before it traverses
//! long-haul links. However, this is extremely challenging, as it demands
//! highly accurate, low-latency detection and near-instantaneous
//! intervention."
//!
//! [`OperatorRuntime`] is epoch-driven: traffic counters stream in via
//! [`OperatorRuntime::observe`]; [`OperatorRuntime::end_epoch`] closes
//! the observation bin and returns the actions the operator should apply
//! (install a reroute, pre-arm one for a predicted burst, or tear one
//! down). All policy pieces are the library's own: the signature detector
//! and periodicity detector from [`crate::detect`], the benefit model
//! from [`crate::predict`], and any [`crate::orchestrator::ProxySelector`].

use crate::detect::{IncastSignatureDetector, PeriodicityDetector, SignatureConfig};
use crate::orchestrator::{IncastRequest, ProxySelector, RenewOutcome};
use crate::predict::{predict, IncastProfile};
use dcsim::det::DetMap;
use dcsim::packet::HostId;
use dcsim::time::{Bandwidth, SimDuration, SimTime};
use serde::Serialize;

/// Static context the runtime needs about the deployment.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Inter-datacenter base RTT (for the benefit model).
    pub inter_rtt: SimDuration,
    /// Intra-datacenter base RTT.
    pub intra_rtt: SimDuration,
    /// Bottleneck (down-ToR) bandwidth.
    pub bottleneck: Bandwidth,
    /// Bottleneck buffer in bytes.
    pub bottleneck_buffer: u64,
    /// Tear a reroute down after this many epochs without the signature.
    pub release_after_quiet_epochs: u32,
    /// Epochs of history for periodicity analysis.
    pub history_epochs: usize,
    /// Minimum autocorrelation to trust a predicted period.
    pub min_confidence: f64,
    /// Sim-time length of one observation epoch; positions the epoch
    /// boundary on the selector's clock so leases expire and health
    /// gossip flows in step with the control loop.
    pub epoch_duration: SimDuration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            inter_rtt: SimDuration::from_millis(4),
            intra_rtt: SimDuration::from_micros(10),
            bottleneck: Bandwidth::gbps(100),
            bottleneck_buffer: 17_015_000,
            release_after_quiet_epochs: 3,
            history_epochs: 64,
            min_confidence: 0.5,
            epoch_duration: SimDuration::from_millis(1),
        }
    }
}

/// An action the operator should apply at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum RuntimeAction {
    /// Route traffic toward `destination` through `proxy` from now on.
    Reroute {
        /// The incast destination.
        destination: HostId,
        /// The allocated proxy (in the senders' datacenter).
        proxy: HostId,
        /// The benefit model's estimated completion-time reduction.
        estimated_reduction: f64,
    },
    /// A periodic incast toward `destination` is predicted to fire in
    /// `epochs` epochs; keep its reroute armed.
    PreArm {
        /// The incast destination.
        destination: HostId,
        /// Epochs until the predicted burst.
        epochs: usize,
    },
    /// Tear down the reroute for `destination` (traffic subsided).
    Release {
        /// The incast destination.
        destination: HostId,
    },
}

#[derive(Debug)]
struct ActiveReroute {
    proxy: HostId,
    quiet_epochs: u32,
    request_id: u64,
}

/// The epoch-driven operator control loop.
pub struct OperatorRuntime<S: ProxySelector> {
    config: RuntimeConfig,
    signature: IncastSignatureDetector,
    /// Per-destination byte history for periodicity analysis.
    periodicity: DetMap<HostId, PeriodicityDetector>,
    /// Per-destination bytes in the current epoch (kept alongside the
    /// signature detector, which consumes its bins).
    epoch_bytes: DetMap<HostId, u64>,
    /// Sources seen per destination this epoch (for the reroute request).
    epoch_sources: DetMap<HostId, Vec<HostId>>,
    /// Datacenter lookup for hosts.
    dc_of: fn(HostId) -> u32,
    selector: S,
    active: DetMap<HostId, ActiveReroute>,
    next_request_id: u64,
    epoch: u64,
}

impl<S: ProxySelector> OperatorRuntime<S> {
    /// Creates a runtime. `dc_of` maps hosts to datacenter ids (the
    /// operator knows its placement); `selector` owns the proxy pool.
    pub fn new(
        config: RuntimeConfig,
        signature: SignatureConfig,
        dc_of: fn(HostId) -> u32,
        selector: S,
    ) -> Self {
        OperatorRuntime {
            config,
            signature: IncastSignatureDetector::new(signature),
            periodicity: DetMap::new(),
            epoch_bytes: DetMap::new(),
            epoch_sources: DetMap::new(),
            dc_of,
            selector,
            active: DetMap::new(),
            next_request_id: 0,
            epoch: 0,
        }
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The proxy selector (for inspecting ledgers and stats).
    pub fn selector(&self) -> &S {
        &self.selector
    }

    /// Mutable selector access — how a harness injects control-plane
    /// faults (shard crashes) between epochs.
    pub fn selector_mut(&mut self) -> &mut S {
        &mut self.selector
    }

    /// The proxy currently serving `destination`, if rerouted.
    pub fn reroute_of(&self, destination: HostId) -> Option<HostId> {
        self.active.get(&destination).map(|a| a.proxy)
    }

    /// Feeds one traffic observation (src sent `bytes` toward `dst`).
    pub fn observe(&mut self, src: HostId, dst: HostId, bytes: u64) {
        self.signature.record(src, dst, bytes);
        *self.epoch_bytes.entry(dst).or_insert(0) += bytes;
        let sources = self.epoch_sources.entry(dst).or_default();
        if !sources.contains(&src) {
            sources.push(src);
        }
    }

    /// Closes the epoch: returns the actions to apply.
    pub fn end_epoch(&mut self) -> Vec<RuntimeAction> {
        self.epoch += 1;
        let now = SimTime::ZERO + SimDuration(self.config.epoch_duration.0 * self.epoch);
        let mut actions = Vec::new();

        // Lease upkeep first: advance the selector's clock (expiry, health
        // gossip), then renew every active reroute. A selector that leases
        // its assignments (the sharded control plane) may have lost one to
        // a crash or expiry while we slept; a lapsed reroute is torn down
        // here and — if its signature still fires — re-granted below under
        // a fresh request id. Placements reclaimed by a sibling shard keep
        // the same proxy, so the data plane sees nothing.
        self.selector.advance_to(now);
        let mut lapsed = Vec::new();
        for (&dst, reroute) in &self.active {
            match self.selector.renew(reroute.request_id, now) {
                RenewOutcome::Renewed | RenewOutcome::Reclaimed | RenewOutcome::Pending => {}
                RenewOutcome::Expired | RenewOutcome::Unknown => lapsed.push(dst),
            }
        }
        for dst in lapsed {
            self.active.remove(&dst).expect("collected above");
            actions.push(RuntimeAction::Release { destination: dst });
        }

        let incasts = self.signature.end_bin();
        let flagged: DetMap<HostId, usize> =
            incasts.iter().map(|s| (s.destination, s.degree)).collect();

        // Periodicity bookkeeping for every destination we ever saw:
        // active destinations push their epoch bytes, quiet ones a zero
        // (their series must still age for autocorrelation).
        let history = self.config.history_epochs;
        for (&dst, &bytes) in &self.epoch_bytes {
            self.periodicity
                .entry(dst)
                .or_insert_with(|| PeriodicityDetector::new(history))
                .push(bytes);
        }
        for (dst, detector) in self.periodicity.iter_mut() {
            if !self.epoch_bytes.contains_key(dst) {
                detector.push(0);
            }
        }

        // New incasts: decide and allocate.
        for sig in &incasts {
            if self.active.contains_key(&sig.destination) {
                continue;
            }
            let sources = self
                .epoch_sources
                .get(&sig.destination)
                .cloned()
                .unwrap_or_default();
            let Some(&first) = sources.first() else {
                continue;
            };
            let cross_dc = (self.dc_of)(first) != (self.dc_of)(sig.destination);
            if !cross_dc {
                continue;
            }
            let profile = IncastProfile {
                total_bytes: sig.bytes,
                degree: sig.degree,
                inter_rtt: self.config.inter_rtt,
                intra_rtt: self.config.intra_rtt,
                bottleneck: self.config.bottleneck,
                bottleneck_buffer: self.config.bottleneck_buffer,
            };
            let prediction = predict(&profile);
            if !prediction.use_proxy {
                continue;
            }
            let request_id = self.next_request_id;
            self.next_request_id += 1;
            let request = IncastRequest {
                id: request_id,
                senders: sources,
                receiver: sig.destination,
                expected_bytes: sig.bytes,
            };
            if let Some(assignment) = self.selector.select(&request) {
                self.active.insert(
                    sig.destination,
                    ActiveReroute {
                        proxy: assignment.proxy,
                        quiet_epochs: 0,
                        request_id,
                    },
                );
                actions.push(RuntimeAction::Reroute {
                    destination: sig.destination,
                    proxy: assignment.proxy,
                    estimated_reduction: prediction.estimated_reduction,
                });
            }
        }

        // Active reroutes: pre-arm on predictions, release when quiet.
        let mut to_release = Vec::new();
        for (&dst, reroute) in &mut self.active {
            if flagged.contains_key(&dst) {
                reroute.quiet_epochs = 0;
                continue;
            }
            reroute.quiet_epochs += 1;
            // Predicted to fire again soon? Keep it armed.
            if let Some(detector) = self.periodicity.get(&dst) {
                if let Some(period) = detector.dominant_period(self.config.min_confidence) {
                    let next = detector.next_burst_in(&period, reroute.quiet_epochs as usize);
                    if next <= self.config.release_after_quiet_epochs as usize {
                        actions.push(RuntimeAction::PreArm {
                            destination: dst,
                            epochs: next,
                        });
                        continue;
                    }
                }
            }
            if reroute.quiet_epochs >= self.config.release_after_quiet_epochs {
                to_release.push(dst);
            }
        }
        for dst in to_release {
            let reroute = self.active.remove(&dst).expect("present");
            self.selector.release(reroute.request_id);
            actions.push(RuntimeAction::Release { destination: dst });
        }

        self.epoch_bytes.clear();
        self.epoch_sources.clear();
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::{GlobalOrchestrator, ShardedConfig, ShardedOrchestrator};

    /// Hosts 0..63 are DC 0, 64.. are DC 1 (the standard layout).
    fn dc_of(h: HostId) -> u32 {
        u32::from(h.0 >= 64)
    }

    fn runtime() -> OperatorRuntime<GlobalOrchestrator> {
        let candidates: Vec<HostId> = (32..64).map(HostId).collect();
        OperatorRuntime::new(
            RuntimeConfig {
                release_after_quiet_epochs: 2,
                history_epochs: 64,
                ..Default::default()
            },
            SignatureConfig {
                min_degree: 4,
                min_bytes: 10_000_000,
            },
            dc_of,
            GlobalOrchestrator::new(candidates),
        )
    }

    const EXPERT: HostId = HostId(64);

    fn burst(rt: &mut OperatorRuntime<GlobalOrchestrator>, bytes_per_sender: u64) {
        for w in 0..8u32 {
            rt.observe(HostId(w), EXPERT, bytes_per_sender);
        }
    }

    #[test]
    fn reroutes_large_cross_dc_incast() {
        let mut rt = runtime();
        burst(&mut rt, 15_000_000); // 120 MB total
        let actions = rt.end_epoch();
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            RuntimeAction::Reroute {
                destination,
                proxy,
                estimated_reduction,
            } => {
                assert_eq!(*destination, EXPERT);
                assert_eq!(dc_of(*proxy), 0, "proxy in the senders' DC");
                assert!(*estimated_reduction > 0.0);
            }
            other => panic!("expected reroute, got {other:?}"),
        }
        assert!(rt.reroute_of(EXPERT).is_some());
    }

    #[test]
    fn ignores_small_incasts() {
        let mut rt = runtime();
        burst(&mut rt, 1_500_000); // 12 MB total: signature fires, no benefit
        let actions = rt.end_epoch();
        assert!(actions.is_empty(), "{actions:?}");
        assert!(rt.reroute_of(EXPERT).is_none());
    }

    #[test]
    fn ignores_same_dc_incasts() {
        let mut rt = runtime();
        let local_dst = HostId(20);
        for w in 0..8u32 {
            rt.observe(HostId(w), local_dst, 20_000_000);
        }
        let actions = rt.end_epoch();
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn releases_after_quiet_epochs() {
        let mut rt = runtime();
        burst(&mut rt, 15_000_000);
        rt.end_epoch();
        // Two quiet epochs -> release (no periodicity seen yet).
        assert!(rt.end_epoch().is_empty());
        let actions = rt.end_epoch();
        assert_eq!(
            actions,
            vec![RuntimeAction::Release {
                destination: EXPERT
            }]
        );
        assert!(rt.reroute_of(EXPERT).is_none());
    }

    #[test]
    fn reroute_again_after_release_reuses_pool() {
        let mut rt = runtime();
        burst(&mut rt, 15_000_000);
        rt.end_epoch();
        rt.end_epoch();
        rt.end_epoch(); // released
        burst(&mut rt, 15_000_000);
        let actions = rt.end_epoch();
        assert!(matches!(actions[0], RuntimeAction::Reroute { .. }));
    }

    #[test]
    fn periodic_incast_stays_armed() {
        let mut rt = runtime();
        // Period 4: burst every 4th epoch, for 8 cycles to build history.
        let mut rerouted = false;
        let mut prearms = 0;
        let mut releases = 0;
        for epoch in 0..32 {
            if epoch % 4 == 0 {
                burst(&mut rt, 15_000_000);
            }
            for action in rt.end_epoch() {
                match action {
                    RuntimeAction::Reroute { .. } => rerouted = true,
                    RuntimeAction::PreArm { .. } => prearms += 1,
                    RuntimeAction::Release { .. } => releases += 1,
                }
            }
        }
        assert!(rerouted);
        assert!(
            prearms > 0,
            "periodicity must keep the reroute pre-armed between bursts"
        );
        // Once the period is learned, the reroute should stay armed (the
        // release budget of 2 quiet epochs never trips because the next
        // burst is always predicted within it).
        assert!(
            rt.reroute_of(EXPERT).is_some() || releases <= 2,
            "late-phase releases should stop: {releases}"
        );
    }

    fn sharded_runtime() -> OperatorRuntime<ShardedOrchestrator> {
        let candidates: Vec<HostId> = (32..64).map(HostId).collect();
        OperatorRuntime::new(
            RuntimeConfig {
                // Keep quiet-release out of the picture: these tests watch
                // the lease lifecycle, not the traffic lifecycle.
                release_after_quiet_epochs: 100,
                ..Default::default()
            },
            SignatureConfig {
                min_degree: 4,
                min_bytes: 10_000_000,
            },
            dc_of,
            ShardedOrchestrator::new(candidates, ShardedConfig::default(), 11),
        )
    }

    fn burst_sharded(rt: &mut OperatorRuntime<ShardedOrchestrator>) {
        for w in 0..8u32 {
            rt.observe(HostId(w), EXPERT, 15_000_000);
        }
    }

    #[test]
    fn shard_crash_mid_reroute_heals_by_reclaim() {
        let mut rt = sharded_runtime();
        burst_sharded(&mut rt);
        let actions = rt.end_epoch();
        assert!(matches!(actions[0], RuntimeAction::Reroute { .. }));
        let proxy = rt.reroute_of(EXPERT).unwrap();
        // EXPERT (host 64) is homed on shard 64 % 4 == 0; kill it.
        rt.selector_mut().crash_shard(0);
        for _ in 0..5 {
            burst_sharded(&mut rt);
            let actions = rt.end_epoch();
            assert!(
                !actions
                    .iter()
                    .any(|a| matches!(a, RuntimeAction::Release { .. })),
                "the reroute must survive the crash: {actions:?}"
            );
        }
        assert_eq!(rt.reroute_of(EXPERT), Some(proxy), "placement unchanged");
        assert_eq!(rt.selector().stats().reclaims, 1, "sibling adopted it");
        assert!(rt.selector().ledger().balanced());
    }

    #[test]
    fn total_control_plane_loss_lapses_then_regrants_via_fallback() {
        let mut rt = sharded_runtime();
        burst_sharded(&mut rt);
        rt.end_epoch();
        for shard in 0..4 {
            rt.selector_mut().crash_shard(shard);
        }
        // Renewals park (nobody can adopt), so the 5 ms lease runs out
        // around epoch 6; the runtime tears the lapsed reroute down and —
        // because the incast is still firing — re-grants it in the same
        // epoch through the decentralized fallback (majority dead).
        let mut lapse_epoch = None;
        for _ in 0..8 {
            burst_sharded(&mut rt);
            let actions = rt.end_epoch();
            if actions
                .iter()
                .any(|a| matches!(a, RuntimeAction::Release { .. }))
            {
                assert!(
                    actions
                        .iter()
                        .any(|a| matches!(a, RuntimeAction::Reroute { .. })),
                    "a still-firing incast must be re-granted immediately: {actions:?}"
                );
                lapse_epoch = Some(rt.epoch());
                break;
            }
        }
        assert!(
            lapse_epoch.is_some(),
            "an unrenewable lease must eventually lapse"
        );
        assert!(rt.reroute_of(EXPERT).is_some(), "re-granted via fallback");
        assert!(rt.selector().stats().fallback_selections >= 1);
        assert_eq!(rt.selector().ledger().expired, 1);
        assert!(rt.selector().ledger().balanced());
    }

    #[test]
    fn concurrent_destinations_get_distinct_proxies() {
        let mut rt = runtime();
        for w in 0..8u32 {
            rt.observe(HostId(w), HostId(64), 15_000_000);
            rt.observe(HostId(w + 8), HostId(65), 15_000_000);
        }
        let actions = rt.end_epoch();
        let proxies: Vec<HostId> = actions
            .iter()
            .filter_map(|a| match a {
                RuntimeAction::Reroute { proxy, .. } => Some(*proxy),
                _ => None,
            })
            .collect();
        assert_eq!(proxies.len(), 2);
        assert_ne!(proxies[0], proxies[1]);
    }
}
