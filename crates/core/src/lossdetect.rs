//! Loss tracking at the proxy **without** switch trimming support
//! (§5, Future work #1).
//!
//! "A generalizable proxy design needs to keep track of packet loss without
//! special router support. The challenge lies in disambiguating reordered
//! packets from lost packets within eBPF's constrained memory and limited
//! primitives."
//!
//! [`LossDetector`] watches the sequence numbers of each flow passing
//! through the proxy and declares a gap *lost* once `reorder_threshold`
//! packets with higher sequence numbers have been seen (a generalized
//! dup-ack / RACK-style count threshold, which is what packet spraying
//! demands — time thresholds misfire under bursty arrivals). Memory is
//! strictly bounded: at most `max_pending` gaps are tracked per flow;
//! overflow evicts the *oldest* gap undetected (a potential false
//! negative), mirroring an eBPF map's fixed size.
//!
//! The `ablation_loss_detector` bench sweeps thresholds against synthetic
//! spraying-induced reordering to answer the paper's question of how many
//! false positives/negatives the constrained detector incurs.

use dcsim::det::DetMap;
use dcsim::packet::FlowId;
use serde::Serialize;

/// Configuration of the reorder-tolerant detector.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LossDetectorConfig {
    /// A missing sequence is declared lost after this many higher-sequence
    /// packets arrive.
    pub reorder_threshold: u32,
    /// Maximum gaps tracked per flow (eBPF-style fixed map size).
    pub max_pending: usize,
    /// Re-declare a declared-but-never-seen sequence after this many
    /// further *observations* of the flow (scaled by the per-sequence
    /// backoff gap). This count-based watchdog fires while the flow is
    /// active; measurements show it is too eager under heavy overload
    /// (it re-NACKs retransmissions that are merely window-delayed), so
    /// the default is `None`: re-NACKing is driven by the quiescence
    /// sweep ([`LossDetector::sweep`]) instead, which only fires when the
    /// flow has gone silent — i.e. when a missing retransmission really is
    /// missing.
    pub renack_after: Option<u32>,
    /// Upper bound on re-declarations per sequence (the watchdog then
    /// defers to the sender's RTO).
    pub max_renacks: u32,
    /// When the pending map overflows, declare the evicted (oldest) gap
    /// immediately instead of forgetting it: an old gap is almost surely a
    /// loss, and a premature NACK costs one spurious retransmission while
    /// a silent eviction costs a full RTO. §5 FW#1's "which packets are
    /// more important to keep track of?" — the newest gaps; old ones can
    /// be declared eagerly.
    pub declare_on_evict: bool,
    /// Bound on declared-but-unseen sequences tracked per flow (watchdog
    /// and false-positive bookkeeping stop beyond it).
    pub max_declared: usize,
}

impl Default for LossDetectorConfig {
    fn default() -> Self {
        LossDetectorConfig {
            // Spraying over 8 equal-length paths reorders within a small
            // window; 3 is the classic dup-ack threshold, 8+ is safer under
            // spraying. The ablation sweeps this.
            reorder_threshold: 8,
            max_pending: 1024,
            renack_after: None,
            max_renacks: 16,
            declare_on_evict: true,
            max_declared: 65_536,
        }
    }
}

/// A loss verdict emitted by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LossEvent {
    /// Flow the loss belongs to.
    pub flow: FlowId,
    /// The sequence declared lost.
    pub seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    /// Higher-sequence packets seen since the gap appeared.
    higher_seen: u32,
}

#[derive(Debug, Default)]
struct FlowState {
    /// Highest sequence observed.
    highest: Option<u64>,
    /// Gaps awaiting resolution, ordered by sequence (oldest first).
    pending: Vec<Pending>,
}

/// Per-flow counters for evaluating detector quality.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LossDetectorStats {
    /// Packets observed.
    pub observed: u64,
    /// Losses declared (first declarations only).
    pub declared: u64,
    /// Watchdog re-declarations of still-missing sequences.
    pub renacks: u64,
    /// Declared losses whose packet later arrived (false positives,
    /// observable only in hindsight).
    pub late_arrivals: u64,
    /// Gaps evicted undetected due to the memory bound (potential false
    /// negatives).
    pub evicted: u64,
}

/// A declared-but-not-yet-rearrived sequence, tracked by the watchdog.
#[derive(Debug, Clone, Copy)]
struct Declared {
    seq: u64,
    /// Observations (or sweeps) of this flow since (re-)declaration.
    since: u32,
    /// Re-declarations so far.
    renacks: u32,
    /// Current re-declaration gap (doubles after every re-NACK —
    /// exponential backoff, so a fixed budget spans the whole recovery
    /// episode instead of burning out in the first millisecond).
    gap: u32,
}

/// Bounded-memory, reorder-tolerant loss detector.
#[derive(Debug)]
pub struct LossDetector {
    config: LossDetectorConfig,
    flows: DetMap<FlowId, FlowState>,
    stats: LossDetectorStats,
    /// Sequences already declared lost, kept (bounded) to recognize false
    /// positives when the "lost" packet shows up after all, and to drive
    /// the retransmission watchdog.
    declared: DetMap<FlowId, Vec<Declared>>,
}

impl LossDetector {
    /// Creates a detector.
    ///
    /// # Panics
    /// Panics if `reorder_threshold` is 0 or `max_pending` is 0.
    pub fn new(config: LossDetectorConfig) -> Self {
        assert!(config.reorder_threshold > 0, "zero reorder threshold");
        assert!(config.max_pending > 0, "zero pending capacity");
        LossDetector {
            config,
            flows: DetMap::new(),
            stats: LossDetectorStats::default(),
            declared: DetMap::new(),
        }
    }

    /// The configuration this detector was built with.
    pub fn config(&self) -> LossDetectorConfig {
        self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LossDetectorStats {
        self.stats
    }

    /// Number of gaps currently tracked for a flow.
    pub fn pending_of(&self, flow: FlowId) -> usize {
        self.flows.get(&flow).map_or(0, |f| f.pending.len())
    }

    /// Feeds one observed data packet; returns any sequences newly declared
    /// lost.
    pub fn observe(&mut self, flow: FlowId, seq: u64) -> Vec<LossEvent> {
        self.stats.observed += 1;
        let state = self.flows.entry(flow).or_default();
        let mut losses = Vec::new();

        let mut evicted = Vec::new();
        match state.highest {
            None => {
                // First packet: everything below it is a gap.
                evicted = Self::push_gaps(state, 0, seq, self.config.max_pending, &mut self.stats);
                state.highest = Some(seq);
            }
            Some(h) if seq > h => {
                // New in-order frontier: gap for skipped sequences, and one
                // more "higher" observation for every pending gap.
                evicted =
                    Self::push_gaps(state, h + 1, seq, self.config.max_pending, &mut self.stats);
                for p in &mut state.pending {
                    p.higher_seen += 1;
                }
                state.highest = Some(seq);
            }
            Some(_) => {
                // Reordered (or retransmitted) packet: resolve its gap if
                // tracked; it still counts as "higher" for older gaps.
                if let Some(pos) = state.pending.iter().position(|p| p.seq == seq) {
                    state.pending.remove(pos);
                } else if let Some(decl) = self.declared.get_mut(&flow) {
                    if let Some(pos) = decl.iter().position(|d| d.seq == seq) {
                        let entry = decl.swap_remove(pos);
                        // An arrival after a *first* declaration means the
                        // declaration was premature (reordering); after a
                        // re-NACK it is the expected retransmission.
                        if entry.renacks == 0 {
                            self.stats.late_arrivals += 1;
                        }
                    }
                }
                for p in &mut state.pending {
                    if p.seq < seq {
                        p.higher_seen += 1;
                    }
                }
            }
        }

        // Declare gaps past the threshold.
        let threshold = self.config.reorder_threshold;
        let declared_list = self.declared.entry(flow).or_default();
        if self.config.declare_on_evict {
            for seq in evicted {
                losses.push(LossEvent { flow, seq });
                self.stats.declared += 1;
                if declared_list.len() < self.config.max_declared {
                    declared_list.push(Declared {
                        seq,
                        since: 0,
                        renacks: 0,
                        gap: 1,
                    });
                }
            }
        }
        state.pending.retain(|p| {
            if p.higher_seen >= threshold {
                losses.push(LossEvent { flow, seq: p.seq });
                self.stats.declared += 1;
                if declared_list.len() < self.config.max_declared {
                    declared_list.push(Declared {
                        seq: p.seq,
                        since: 0,
                        renacks: 0,
                        gap: 1,
                    });
                }
                false
            } else {
                true
            }
        });
        // Retransmission watchdog: a declared sequence still missing after
        // `renack_after` further observations is re-declared (its
        // retransmission was likely lost too).
        if let Some(interval) = self.config.renack_after {
            let max = self.config.max_renacks;
            for d in declared_list.iter_mut() {
                d.since += 1;
                if d.since >= interval.saturating_mul(d.gap) && d.renacks < max {
                    d.since = 0;
                    d.renacks += 1;
                    d.gap = d.gap.saturating_mul(2);
                    self.stats.renacks += 1;
                    losses.push(LossEvent { flow, seq: d.seq });
                }
            }
        }
        losses
    }

    /// True while the flow has unresolved gaps or declared-but-unseen
    /// sequences (i.e. a sweep could still produce NACKs).
    pub fn has_state(&self, flow: FlowId) -> bool {
        self.flows.get(&flow).is_some_and(|f| !f.pending.is_empty())
            || self.declared.get(&flow).is_some_and(|d| !d.is_empty())
    }

    /// Quiescence sweep: declares every pending gap immediately (bypassing
    /// the count threshold) and re-declares every declared-but-unseen
    /// sequence (respecting `max_renacks`). Called by a timer when a flow
    /// goes quiet — the count-based machinery is blind to *tail* losses
    /// (the flow's last packets have no successors to reveal the gap), and
    /// to retransmissions lost while no new data flows.
    pub fn sweep(&mut self, flow: FlowId) -> Vec<LossEvent> {
        let mut losses = Vec::new();
        let declared_list = self.declared.entry(flow).or_default();
        if let Some(state) = self.flows.get_mut(&flow) {
            for p in state.pending.drain(..) {
                losses.push(LossEvent { flow, seq: p.seq });
                self.stats.declared += 1;
                if declared_list.len() < self.config.max_declared {
                    declared_list.push(Declared {
                        seq: p.seq,
                        since: 0,
                        renacks: 0,
                        gap: 1,
                    });
                }
            }
        }
        let max = self.config.max_renacks;
        for d in declared_list.iter_mut() {
            d.since += 1;
            if d.since > d.gap && d.renacks < max {
                d.since = 0;
                d.renacks += 1;
                d.gap = d.gap.saturating_mul(2);
                self.stats.renacks += 1;
                losses.push(LossEvent { flow, seq: d.seq });
            }
        }
        losses
    }

    /// Drops all state of a finished flow.
    pub fn forget(&mut self, flow: FlowId) {
        self.flows.remove(&flow);
        self.declared.remove(&flow);
    }

    /// Adds gaps `from..to` to the pending list, returning the sequences
    /// evicted by the memory bound (oldest first).
    fn push_gaps(
        state: &mut FlowState,
        from: u64,
        to: u64,
        max_pending: usize,
        stats: &mut LossDetectorStats,
    ) -> Vec<u64> {
        let mut evicted = Vec::new();
        for seq in from..to {
            if state.pending.len() >= max_pending {
                // eBPF-style fixed map: evict the oldest gap.
                evicted.push(state.pending.remove(0).seq);
                stats.evicted += 1;
            }
            state.pending.push(Pending {
                seq,
                higher_seen: 0,
            });
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(threshold: u32) -> LossDetector {
        LossDetector::new(LossDetectorConfig {
            reorder_threshold: threshold,
            max_pending: 64,
            ..Default::default()
        })
    }

    const F: FlowId = FlowId(0);

    #[test]
    fn in_order_stream_declares_nothing() {
        let mut d = detector(3);
        for seq in 0..100 {
            assert!(d.observe(F, seq).is_empty());
        }
        assert_eq!(d.stats().declared, 0);
        assert_eq!(d.pending_of(F), 0);
    }

    #[test]
    fn gap_declared_after_threshold_higher() {
        let mut d = detector(3);
        d.observe(F, 0);
        // Seq 1 missing; 2, 3 are two "higher" observations.
        assert!(d.observe(F, 2).is_empty());
        assert!(d.observe(F, 3).is_empty());
        // Third higher observation crosses the threshold.
        let losses = d.observe(F, 4);
        assert_eq!(losses, vec![LossEvent { flow: F, seq: 1 }]);
    }

    #[test]
    fn mild_reordering_not_declared() {
        let mut d = detector(3);
        // 0, 2, 1: one-packet reorder resolves before the threshold.
        d.observe(F, 0);
        d.observe(F, 2);
        let l = d.observe(F, 1);
        assert!(l.is_empty());
        assert_eq!(d.pending_of(F), 0);
        assert_eq!(d.stats().declared, 0);
    }

    #[test]
    fn deep_reordering_is_a_false_positive() {
        let mut d = detector(2);
        d.observe(F, 0);
        d.observe(F, 2);
        let losses = d.observe(F, 3); // threshold 2 reached for seq 1
        assert_eq!(losses.len(), 1);
        // Seq 1 arrives late after being declared: counted as FP.
        d.observe(F, 1);
        assert_eq!(d.stats().late_arrivals, 1);
    }

    #[test]
    fn multiple_gaps_declared_in_order() {
        let mut d = detector(2);
        d.observe(F, 0);
        // The revealing packet itself counts as one "higher" observation.
        d.observe(F, 5); // gaps 1..=4, each at higher_seen = 1
        assert_eq!(d.pending_of(F), 4);
        let losses = d.observe(F, 6); // higher_seen = 2 = threshold
        assert_eq!(losses.len(), 4);
        assert_eq!(losses[0].seq, 1);
        assert_eq!(losses[3].seq, 4);
    }

    #[test]
    fn memory_bound_evicts_oldest() {
        let mut d = LossDetector::new(LossDetectorConfig {
            reorder_threshold: 100,
            max_pending: 4,
            ..Default::default()
        });
        d.observe(F, 0);
        d.observe(F, 10); // 9 gaps; only 4 tracked
        assert_eq!(d.pending_of(F), 4);
        assert_eq!(d.stats().evicted, 5);
    }

    #[test]
    fn flows_are_independent() {
        let mut d = detector(2);
        let f1 = FlowId(1);
        d.observe(F, 0);
        d.observe(f1, 0);
        d.observe(F, 2); // gap 1 at higher_seen = 1
        let losses = d.observe(F, 3); // higher_seen = 2 = threshold
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].seq, 1);
        assert_eq!(d.pending_of(f1), 0, "flow 1 unaffected");
    }

    #[test]
    fn forget_clears_state() {
        let mut d = detector(2);
        d.observe(F, 0);
        d.observe(F, 5);
        d.forget(F);
        assert_eq!(d.pending_of(F), 0);
        // A fresh start does not resurrect old gaps.
        assert!(d.observe(F, 6).is_empty());
    }

    #[test]
    fn first_packet_not_zero_creates_leading_gaps() {
        let mut d = detector(1);
        let losses = d.observe(F, 2); // gaps 0, 1 pending, no higher yet
        assert!(losses.is_empty());
        let losses = d.observe(F, 3);
        assert_eq!(losses.len(), 2, "both leading gaps cross threshold 1");
    }

    #[test]
    fn no_false_negatives_without_reordering() {
        // Property-style check: random loss pattern, in-order otherwise.
        let mut rng = trace::SplitMix64::new(42);
        let mut d = detector(3);
        let mut lost = Vec::new();
        for seq in 0..1000u64 {
            if rng.next_f64() < 0.1 && seq < 990 {
                lost.push(seq);
            } else {
                d.observe(F, seq);
            }
        }
        let declared = d.stats().declared;
        assert_eq!(
            declared as usize,
            lost.len(),
            "every dropped packet must be declared"
        );
        assert_eq!(d.stats().late_arrivals, 0, "no false positives in-order");
    }
}
